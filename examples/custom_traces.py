#!/usr/bin/env python
"""Working with custom traces: build, persist, characterize, replay.

Shows the full workload API: composing traces, CSV/NPZ round-trips, the
complexity fingerprint used throughout the evaluation, and the shuffle
control experiment from the trace-complexity methodology — served through
online sessions (``open_session`` + ``serve_stream``).

Run:  python examples/custom_traces.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Trace,
    bursty_trace,
    load_trace_csv,
    load_trace_npz,
    open_session,
    save_trace_csv,
    save_trace_npz,
    summarize_trace,
    uniform_trace,
)


def main() -> None:
    n = 50

    # 1. Hand-built trace: an all-to-one incast followed by a ring shift.
    incast = Trace(
        n,
        sources=np.arange(2, n + 1),
        targets=np.full(n - 1, 1),
        name="incast",
    )
    ring = Trace(
        n,
        sources=np.arange(1, n + 1),
        targets=np.roll(np.arange(1, n + 1), -1),
        name="ring",
    )
    combined = incast.concat(ring).concat(bursty_trace(n, 500, 6.0, seed=1))
    print(f"combined trace: {summarize_trace(combined)}")

    # 2. Persist and reload in both formats.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "trace.csv"
        npz_path = Path(tmp) / "trace.npz"
        save_trace_csv(combined, csv_path)
        save_trace_npz(combined, npz_path)
        from_csv = load_trace_csv(csv_path, n=n)
        from_npz = load_trace_npz(npz_path)
        assert list(from_csv.pairs()) == list(from_npz.pairs())
        print(f"round-tripped {from_csv.m} requests via CSV and NPZ")

    # 3. The shuffle control: same demand, no temporal structure.  Each
    # run is one session streaming the trace through the batched path.
    original = open_session("kary-splaynet", n=n, k=3)
    original.serve_stream(combined)
    shuffled = open_session("kary-splaynet", n=n, k=3)
    shuffled.serve_stream(combined.shuffled(seed=2))
    gap = shuffled.metrics.total_routing - original.metrics.total_routing
    print(
        f"\nself-adjusting cost, original order : {original.metrics.total_routing}"
        f"\nself-adjusting cost, shuffled order : {shuffled.metrics.total_routing}"
        f"\n→ temporal structure was worth {gap} hops"
    )

    # 4. A baseline that cannot exploit order shows no such gap.
    uniform = uniform_trace(n, combined.m, seed=3)
    print(f"\nuniform control: {summarize_trace(uniform)}")


if __name__ == "__main__":
    main()
