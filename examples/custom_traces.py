#!/usr/bin/env python
"""Working with custom traces: build, persist, characterize, replay.

Shows the full workload API: composing traces, CSV/NPZ round-trips, the
complexity fingerprint used throughout the evaluation, and the shuffle
control experiment from the trace-complexity methodology.

Run:  python examples/custom_traces.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    KArySplayNet,
    Trace,
    bursty_trace,
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
    simulate,
    summarize_trace,
    uniform_trace,
)


def main() -> None:
    n = 50

    # 1. Hand-built trace: an all-to-one incast followed by a ring shift.
    incast = Trace(
        n,
        sources=np.arange(2, n + 1),
        targets=np.full(n - 1, 1),
        name="incast",
    )
    ring = Trace(
        n,
        sources=np.arange(1, n + 1),
        targets=np.roll(np.arange(1, n + 1), -1),
        name="ring",
    )
    combined = incast.concat(ring).concat(bursty_trace(n, 500, 6.0, seed=1))
    print(f"combined trace: {summarize_trace(combined)}")

    # 2. Persist and reload in both formats.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "trace.csv"
        npz_path = Path(tmp) / "trace.npz"
        save_trace_csv(combined, csv_path)
        save_trace_npz(combined, npz_path)
        from_csv = load_trace_csv(csv_path, n=n)
        from_npz = load_trace_npz(npz_path)
        assert list(from_csv.pairs()) == list(from_npz.pairs())
        print(f"round-tripped {from_csv.m} requests via CSV and NPZ")

    # 3. The shuffle control: same demand, no temporal structure.
    original = simulate(KArySplayNet(n, 3), combined)
    shuffled = simulate(KArySplayNet(n, 3), combined.shuffled(seed=2))
    print(
        f"\nself-adjusting cost, original order : {original.total_routing}"
        f"\nself-adjusting cost, shuffled order : {shuffled.total_routing}"
        f"\n→ temporal structure was worth "
        f"{shuffled.total_routing - original.total_routing} hops"
    )

    # 4. A baseline that cannot exploit order shows no such gap.
    uniform = uniform_trace(n, combined.m, seed=3)
    print(f"\nuniform control: {summarize_trace(uniform)}")


if __name__ == "__main__":
    main()
