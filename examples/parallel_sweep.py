#!/usr/bin/env python
"""Parallel parameter sweep: arity × workload over worker processes.

Sweeps the k-ary SplayNet's routing cost over a (k, workload) grid using
the deterministic sweep engine — every cell regenerates its trace from a
derived seed inside the worker, so results are bit-identical for any job
count.  Prints the paper's central finding: routing cost falls as k grows,
on every workload.

Run:  python examples/parallel_sweep.py [jobs]     (default: cores - 1)
"""

import sys

from repro import bar_chart
from repro.parallel import SweepSpec, cpu_jobs, run_sweep
from repro.parallel.sweep import SweepCell
from repro.parallel.tasks import SimulationTask, run_simulation_task

N = 128
M = 8_000


def simulate_cell(cell: SweepCell) -> float:
    """One grid point: average routing cost of k-ary SplayNet (module-level
    so it pickles into worker processes)."""
    task = SimulationTask(
        workload=cell["workload"],
        n=N,
        m=M,
        seed=cell.seed,
        algorithm="kary-splaynet",
        k=cell["k"],
    )
    return run_simulation_task(task).average_routing


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else cpu_jobs()
    spec = SweepSpec(
        axes={
            "workload": ("uniform", "temporal-0.5", "temporal-0.9", "hpc"),
            "k": (2, 3, 4, 6, 8),
        },
        root_seed=2024,
    )
    print(f"sweeping {spec.size()} cells over {jobs} worker process(es)...")
    result = run_sweep(simulate_cell, spec, jobs=jobs)

    for workload in result.axis_values("workload"):
        sub = result.select(workload=workload)
        rows = [
            (f"k={cell['k']}", round(value, 3))
            for cell, value in zip(sub.cells, sub.values)
        ]
        print(f"\n{workload}: average routing cost by arity")
        print(bar_chart(rows))
        ks = [cell["k"] for cell in sub.cells]
        costs = dict(zip(ks, sub.values))
        trend = "falls" if costs[max(ks)] < costs[2] else "does NOT fall"
        print(f"  → cost {trend} with k "
              f"({costs[2]:.2f} at k=2 → {costs[max(ks)]:.2f} at k={max(ks)})")


if __name__ == "__main__":
    main()
