#!/usr/bin/env python
"""Compare every network design on simulated datacenter traffic.

Reproduces a miniature of the paper's Table 8 experiment: the centroid
3-SplayNet vs classic SplayNet vs the static full/optimal binary trees, on
HPC-like, ProjecToR-like and Facebook-like traces.

Run:  python examples/datacenter_comparison.py
"""

from repro import (
    CentroidSplayNet,
    SplayNet,
    StaticTreeNetwork,
    build_complete_tree,
    DemandMatrix,
    facebook_trace,
    hpc_trace,
    optimal_static_bst,
    projector_trace,
    simulate,
    summarize_trace,
    UNIT_ROTATIONS,
)

N, M, SEED = 100, 20_000, 11


def main() -> None:
    workloads = [
        ("hpc", hpc_trace(N, M, SEED)),
        ("projector", projector_trace(N, M, SEED)),
        ("facebook", facebook_trace(128, M, SEED)),
    ]

    print(f"{'workload':12} {'fingerprint'}")
    for name, trace in workloads:
        print(f"{name:12} {summarize_trace(trace)}")

    print(
        f"\n{'workload':12} {'3-SplayNet':>11} {'SplayNet':>9} "
        f"{'full tree':>10} {'optimal':>9}   (avg cost, routing + rotations)"
    )
    for name, trace in workloads:
        n = trace.n
        centroid = simulate(CentroidSplayNet(n, 2), trace)
        splaynet = simulate(SplayNet(n), trace)
        full = simulate(StaticTreeNetwork(build_complete_tree(n, 2)), trace)
        demand = DemandMatrix.from_trace(trace)
        optimal = simulate(
            StaticTreeNetwork(optimal_static_bst(demand).network), trace
        )
        cells = [
            sim.total_cost(UNIT_ROTATIONS) / trace.m
            for sim in (centroid, splaynet, full, optimal)
        ]
        print(
            f"{name:12} {cells[0]:>11.2f} {cells[1]:>9.2f}"
            f" {cells[2]:>10.2f} {cells[3]:>9.2f}"
        )

    print(
        "\nReading: self-adjusting structures win when traffic repeats"
        " (hpc); demand-aware static trees win when it is skewed but"
        " non-repeating (projector); the centroid heuristic hedges between"
        " the two."
    )


if __name__ == "__main__":
    main()
