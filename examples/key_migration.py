#!/usr/bin/env python
"""Why k-ary search *trees* cannot be k-ary search tree *networks*.

The paper's Section 1 argument, demonstrated live: in a Sherk-style k-ary
splay tree (the [23] data structure), restructuring merges and re-splits
key blocks, so keys migrate between physical nodes — a key cannot serve as
a rack's address.  The paper's k-ary SplayNet solves this with rotations
that reshuffle *routing arrays* while every identifier stays on its node.

Run:  python examples/key_migration.py
"""

import random

from repro import KArySplayNet
from repro.datastructures.sherk import SherkKarySplayTree
from repro.viz.ascii import render_multiway_tree

N, K, ACCESSES, SEED = 40, 3, 30, 7


def main() -> None:
    rng = random.Random(SEED)

    # --- the data structure: keys migrate -----------------------------
    tree = SherkKarySplayTree(range(1, N + 1), K)
    before = tree.key_locations()
    print(f"Sherk k-ary splay tree (k={K}, n={N}), initial layout:")
    print(render_multiway_tree(tree))

    keys = [rng.randint(1, N) for _ in range(ACCESSES)]
    for key in keys:
        tree.access(key)
    after = tree.key_locations()
    moved = sorted(key for key in before if before[key] != after[key])
    print(f"\nafter {ACCESSES} accesses: {len(moved)}/{N} keys now live on a"
          " different physical node:")
    print(f"  moved keys: {moved}")
    print("\nfinal layout (note keys regrouped into new nodes):")
    print(render_multiway_tree(tree))

    # --- the network: identifiers never move --------------------------
    net = KArySplayNet(N, K)
    ids_before = {node.nid for node in net.tree.root.iter_subtree()}
    for key in keys:
        u, v = key, (key % N) + 1
        if u != v:
            net.serve(u, v)
    ids_after = {node.nid for node in net.tree.root.iter_subtree()}
    net.validate()
    print(f"\nk-ary SplayNet served {ACCESSES} requests with the same key"
          " pressure:")
    print(f"  identifiers before == after: {ids_before == ids_after}")
    print("  (rotations reshuffled only the routing arrays — the paper's"
          " central design)")


if __name__ == "__main__":
    main()
