#!/usr/bin/env python
"""Rotation gallery: the paper's schematic Figures 1-8, rendered live.

Every diagram in the paper (node layout, k-semi-splay, the two k-splay
cases, the centroid topologies) is regenerated here from the actual
implementation — run it to see before/after states of real rotations on
real trees, with the search property re-validated after each.

Run:  python examples/rotation_gallery.py [k]
"""

import sys

from repro.viz.figures import (
    figure1_node_layout,
    figure2_centroid_tree,
    figure3_semi_splay_states,
    figure4_chain_state,
    figure5_k_splay_states,
    figure6_k_splay_close_states,
    figure7_centroid_splaynet,
    figure8_kplus1_splaynet,
)


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    sections = [
        ("Figure 1 — a node's key and routing array", figure1_node_layout(k=max(k, 3))),
        ("Figure 2 — the centroid k-ary search tree", figure2_centroid_tree(n=30, k=2)),
        ("Figure 3 — k-semi-splay (zig analogue)", figure3_semi_splay_states(k=k)),
        ("Figure 4 — chain state before k-splay", figure4_chain_state(k=k)),
        ("Figure 5 — k-splay case 1 (zig-zag analogue)", figure5_k_splay_states(k=k)),
        ("Figure 6 — k-splay case 2 (zig-zig analogue)", figure6_k_splay_close_states(k=k)),
        ("Figure 7 — 3-SplayNet layout", figure7_centroid_splaynet(n=30)),
        ("Figure 8 — (k+1)-SplayNet layout", figure8_kplus1_splaynet(n=50, k=max(k, 3))),
    ]
    for title, art in sections:
        print("=" * 72)
        print(title)
        print("=" * 72)
        print(art)
        print()


if __name__ == "__main__":
    main()
