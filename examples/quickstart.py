#!/usr/bin/env python
"""Quickstart: open an online session on a self-adjusting k-ary search
tree network, serve traffic, and watch it adapt.

Everything goes through the unified network API: ``build_network`` /
``open_session`` construct any registered algorithm from a declarative
spec, and the session serves requests online — one at a time or as a
chunked stream through the batched engine hot path.

Run:  python examples/quickstart.py
"""

from repro import (
    NetworkSpec,
    best_available_engine,
    open_session,
    summarize_trace,
    uniform_trace,
)


def main() -> None:
    n, k = 64, 4

    # A self-adjusting network of 64 nodes as a 4-ary search tree on the
    # fastest tree engine this process can use (the compiled "native"
    # kernel where a C toolchain exists, the pure-Python "flat" engine
    # otherwise), starting from the complete (balanced) topology.  The
    # spec is data: it round-trips through JSON.
    spec = NetworkSpec("kary-splaynet", n=n, k=k, engine=best_available_engine())
    print(f"spec: {spec.to_json()}")
    session = open_session(spec)
    print(f"network: {session.network}")
    print(f"initial height: {session.network.tree.height()}  (complete {k}-ary tree)")

    # One online request: routed over the current tree, then the endpoints
    # are splayed together, so repeating it becomes cheap.
    first = session.serve(3, 60)
    print(f"\nserve(3, 60): routed over {first.routing_cost} hops, "
          f"{first.rotations} rotations, {first.links_changed} links changed")
    print(f"serve(3, 60) again: {session.serve(3, 60).routing_cost} hop(s)")

    # A full request stream, fed chunkwise through the batched fast path.
    trace = uniform_trace(n, 5_000, seed=7)
    print(f"\ntrace: {summarize_trace(trace)}")
    batch = session.serve_stream(trace, chunk=1024)
    print(f"streamed {batch.m} requests: routing={batch.total_routing}"
          f" rotations={batch.total_rotations}")
    metrics = session.metrics
    print(f"session totals: {metrics.requests} requests,"
          f" average request cost {metrics.average_routing:.2f} hops")

    # Checkpoint, perturb, rewind: the snapshot captures the exact
    # topology (and metrics), on either engine.
    checkpoint = session.snapshot()
    session.serve(1, 64)
    session.restore(checkpoint)
    print(f"\nsnapshot/restore: rewound to {session.metrics.requests} requests")

    # The tree is still a valid k-ary search tree network after 5000+
    # reconfigurations — identifiers never moved, only routing arrays did.
    session.validate()
    print("topology re-validated: search property intact, "
          "all identifiers in place")


if __name__ == "__main__":
    main()
