#!/usr/bin/env python
"""Quickstart: build a self-adjusting k-ary search tree network, serve
traffic, and watch it adapt.

Run:  python examples/quickstart.py
"""

from repro import KArySplayNet, simulate, summarize_trace, uniform_trace


def main() -> None:
    n, k = 64, 4

    # A self-adjusting network of 64 nodes as a 4-ary search tree, starting
    # from the complete (balanced) topology.
    net = KArySplayNet(n=n, k=k)
    print(f"network: {net}")
    print(f"initial height: {net.tree.height()}  (complete {k}-ary tree)")

    # One request: routed over the current tree, then the endpoints are
    # splayed together, so repeating it becomes cheap.
    first = net.serve(3, 60)
    print(f"\nserve(3, 60): routed over {first.routing_cost} hops, "
          f"{first.rotations} rotations, {first.links_changed} links changed")
    print(f"serve(3, 60) again: {net.serve(3, 60).routing_cost} hop(s)")

    # A full trace through the simulator.
    trace = uniform_trace(n, 5_000, seed=7)
    print(f"\ntrace: {summarize_trace(trace)}")
    result = simulate(net, trace)
    print(f"simulated: {result}")
    print(f"average request cost: {result.average_routing:.2f} hops")

    # The tree is still a valid k-ary search tree network after 5000
    # reconfigurations — identifiers never moved, only routing arrays did.
    net.validate()
    print("\ntopology re-validated: search property intact, "
          "all identifiers in place")


if __name__ == "__main__":
    main()
