#!/usr/bin/env python
"""Offline demand-aware topology design (Section 3 of the paper).

Given a (known) demand matrix, compute:
  * the optimal static routing-based k-ary search tree (Theorem 2 DP),
  * the O(n)-time centroid tree (Theorem 8),
  * the demand-oblivious full k-ary tree,
and compare their total service cost.

Run:  python examples/offline_design.py
"""

import numpy as np

from repro import (
    DemandMatrix,
    build_centroid_tree,
    build_complete_tree,
    optimal_static_tree,
    total_demand_distance,
    zipf_trace,
)

N, K = 40, 3


def main() -> None:
    # A skewed demand: few node pairs carry most of the traffic.
    trace = zipf_trace(N, 30_000, alpha=1.4, seed=5)
    demand = DemandMatrix.from_trace(trace)
    print(f"demand: {demand} (density {demand.density():.2%})")

    optimal = optimal_static_tree(demand, K)
    centroid = build_centroid_tree(N, K)
    full = build_complete_tree(N, K)

    print(f"\n{'design':28} {'total cost':>12} {'vs optimal':>11}")
    for name, cost in [
        ("optimal static tree (Thm 2)", optimal.cost),
        ("centroid tree (Thm 8)", total_demand_distance(centroid, demand)),
        ("full k-ary tree", total_demand_distance(full, demand)),
    ]:
        print(f"{name:28} {cost:>12} {cost / optimal.cost:>10.2f}x")

    # The optimal tree pulls the heavy hitters together; show the heaviest
    # pair and its distance in each design.
    us, vs, w = demand.nonzero_arrays()
    top = int(np.argmax(w))
    u, v = int(us[top]), int(vs[top])
    print(f"\nheaviest pair ({u} -> {v}, {int(w[top])} requests):")
    print(f"  optimal tree distance : {optimal.tree.distance(u, v)}")
    print(f"  centroid tree distance: {centroid.distance(u, v)}")
    print(f"  full tree distance    : {full.distance(u, v)}")

    print("\noptimal tree (routing-based: node ids double as separators):")
    print(optimal.tree.render(max_nodes=50))


if __name__ == "__main__":
    main()
