#!/usr/bin/env python
"""Place workloads on the trace-complexity map of Avin et al. [2].

The paper characterizes its inputs by temporal locality (the p knob of the
synthetic traces) and spatial skew.  This example measures both coordinates
for every built-in generator — including the datacenter stand-ins — and
prints the map plus a bar chart of temporal locality, showing how the
workloads span the regimes where SplayNet-style SANs win versus where
static demand-aware trees win.

Run:  python examples/complexity_map.py
"""

from repro import bar_chart
from repro.analysis.complexity import complexity_report
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.mixtures import (
    elephant_mice_trace,
    markov_modulated_trace,
    shuffle_phase_trace,
)
from repro.workloads.synthetic import temporal_trace, uniform_trace, zipf_trace

M = 20_000
SEED = 2024


def main() -> None:
    traces = [
        ("uniform", uniform_trace(100, M, SEED)),
        ("temporal-0.25", temporal_trace(255, M, 0.25, SEED)),
        ("temporal-0.5", temporal_trace(255, M, 0.5, SEED)),
        ("temporal-0.75", temporal_trace(255, M, 0.75, SEED)),
        ("temporal-0.9", temporal_trace(255, M, 0.9, SEED)),
        ("zipf-1.4", zipf_trace(100, M, alpha=1.4, seed=SEED)),
        ("hpc", hpc_trace(216, M, SEED)),
        ("projector", projector_trace(100, M, SEED)),
        ("facebook", facebook_trace(512, M, SEED)),
        ("elephant-mice", elephant_mice_trace(100, M, seed=SEED)),
        ("markov-mod", markov_modulated_trace(100, M, seed=SEED)),
        ("shuffle", shuffle_phase_trace(64, M, seed=SEED)),
    ]

    print(f"{'workload':14} {'spatial':>8} {'temporal':>9} {'recur':>7}"
          f" {'lz':>6}  quadrant")
    print("-" * 66)
    reports = []
    for name, trace in traces:
        report = complexity_report(trace)
        reports.append((name, report))
        print(f"{name:14} {report.spatial:>8.3f} {report.temporal:>9.3f}"
              f" {report.recurrence:>7.3f} {report.lz:>6.3f}  {report.quadrant}")

    print("\ntemporal locality (higher = SANs win; the paper's p knob):")
    print(bar_chart([(name, round(r.locality, 3)) for name, r in reports]))

    print("\nspatial skew (lower spatial complexity = demand-aware trees win):")
    print(bar_chart([(name, round(1 - r.spatial, 3)) for name, r in reports]))

    print("\ndemand heatmaps (sources × destinations, log shade):")
    from repro.viz.heatmap import render_demand_heatmap
    from repro.workloads.demand import DemandMatrix

    for name, trace in traces:
        if name in ("uniform", "projector", "elephant-mice"):
            print(f"\n{name}:")
            print(render_demand_heatmap(DemandMatrix.from_trace(trace), cells=32))


if __name__ == "__main__":
    main()
