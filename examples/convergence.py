#!/usr/bin/env python
"""Convergence view: how fast each design adapts to a locality shift.

Runs a two-phase workload (uniform mixing, then high temporal locality)
through four designs with per-request recording, and renders the
convergence panel — watch the self-adjusting networks' cost collapse at
the phase boundary while the static tree stays flat.

Run:  python examples/convergence.py
"""

from repro import (
    CentroidSplayNet,
    KArySplayNet,
    Simulator,
    StaticTreeNetwork,
    build_complete_tree,
    phased_trace,
    temporal_trace,
    uniform_trace,
)
from repro.viz.series import convergence_panel, render_series

N, SEED = 96, 5


def main() -> None:
    trace = phased_trace(
        [
            uniform_trace(N, 6_000, SEED),            # phase 1: mixing
            temporal_trace(N, 6_000, 0.9, SEED + 1),  # phase 2: hot pairs
        ],
        name="mixing→local",
    )
    sim = Simulator(record_series=True)
    runs = {
        "kary-splaynet k=4": sim.run(KArySplayNet(N, 4), trace, name="kary4"),
        "3-splaynet": sim.run(CentroidSplayNet(N, 2), trace, name="centroid"),
        "static full k=4": sim.run(
            StaticTreeNetwork(build_complete_tree(N, 4)), trace, name="static"
        ),
    }

    print(f"two-phase workload on n={N}: 6k uniform requests, then 6k at"
          " temporal locality p=0.9\n")
    print(convergence_panel(runs, buckets=60))
    print()
    for result in runs.values():
        print(render_series(result))
        print()
    print("note the SAN sparklines dropping in the second half — the"
          " static tree cannot follow the shift")


if __name__ == "__main__":
    main()
