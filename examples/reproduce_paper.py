#!/usr/bin/env python
"""One-command reproduction of the paper's evaluation section.

Regenerates Tables 1-8 and the Remark 10 experiment at the selected scale,
verifies every qualitative claim from DESIGN.md's "expected shapes" list,
and writes the rendered reports next to this script.

Run:  python examples/reproduce_paper.py            # quick scale (~minutes)
      REPRO_SCALE=smoke python examples/reproduce_paper.py   # seconds
      REPRO_SCALE=paper python examples/reproduce_paper.py   # paper sizes (hours)
      python examples/reproduce_paper.py --jobs 4   # parallel table cells
"""

import sys
from pathlib import Path

from repro.experiments.runner import run_all
from repro.experiments.verify import verify_reproduction


def main() -> None:
    jobs = 1
    if "--jobs" in sys.argv:
        jobs = int(sys.argv[sys.argv.index("--jobs") + 1])
    output = Path(__file__).parent / "output"
    report = run_all(output_dir=output, jobs=jobs)
    print()
    print(report.render())
    print()
    print("=== claim verification (DESIGN.md expected shapes) ===")
    summary = verify_reproduction(report)
    print(summary.render())
    print(f"\nreports written under {output}/")
    if not summary.passed:
        sys.exit(1)


if __name__ == "__main__":
    main()
