#!/usr/bin/env python
"""When should a self-adjusting network adjust?

The paper's cost model charges routing *and* reconfiguration (Section 2),
and notes that physically rewiring a high-degree optical port plausibly
costs more than a binary one (Section 5.1).  This example sweeps the
reactive spectrum — always splay, splay only long routes, splay a coin-flip
fraction, never splay — on a high-locality trace, and shows how the winner
flips as the price of one rotation rises.

Run:  python examples/adjustment_policies.py
"""

from repro import CostModel, KArySplayNet, bar_chart, simulate, temporal_trace
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)

N, M, SEED = 128, 15_000, 7


def main() -> None:
    trace = temporal_trace(N, M, 0.9, SEED)
    policies = {
        "reactive (always)": KArySplayNet(N, 3),
        "threshold > 2 hops": ThresholdedNetwork(KArySplayNet(N, 3), 2),
        "threshold > 4 hops": ThresholdedNetwork(KArySplayNet(N, 3), 4),
        "probabilistic 50%": ProbabilisticNetwork(KArySplayNet(N, 3), 0.5, seed=SEED),
        "frozen (never)": FrozenNetwork(KArySplayNet(N, 3)),
    }
    results = {name: simulate(net, trace) for name, net in policies.items()}

    print(f"workload: temporal-0.9, n={N}, m={M}\n")
    print(f"{'policy':20} {'routing':>10} {'rotations':>10}")
    for name, result in results.items():
        print(f"{name:20} {result.total_routing:>10d} {result.total_rotations:>10d}")

    for price in (0.0, 1.0, 5.0, 20.0):
        model = CostModel(rotation_cost=price)
        rows = [
            (name, round(result.total_cost(model)))
            for name, result in results.items()
        ]
        winner = min(rows, key=lambda r: r[1])[0]
        print(f"\ntotal cost at rotation price {price:g} (winner: {winner})")
        print(bar_chart(rows))


if __name__ == "__main__":
    main()
