#!/usr/bin/env python
"""When should a self-adjusting network adjust?

The paper's cost model charges routing *and* reconfiguration (Section 2),
and notes that physically rewiring a high-degree optical port plausibly
costs more than a binary one (Section 5.1).  This example sweeps the
reactive spectrum — always splay, splay only long routes, splay a coin-flip
fraction, never splay — on a high-locality trace, and shows how the winner
flips as the price of one rotation rises.

Each policy is one declarative ``NetworkSpec``: the wrapper chain lives in
the spec's ``policies`` field, so a wrapped network is built, served (on
the batched fast path) and serialized exactly like a bare one.

Run:  python examples/adjustment_policies.py
"""

from repro import CostModel, NetworkSpec, bar_chart, open_session, temporal_trace

N, M, SEED = 128, 15_000, 7


def main() -> None:
    trace = temporal_trace(N, M, 0.9, SEED)
    base = NetworkSpec("kary-splaynet", n=N, k=3, engine="flat")
    specs = {
        "reactive (always)": base,
        "threshold > 2 hops": base.replace(
            policies=[{"policy": "thresholded", "params": {"threshold": 2}}]
        ),
        "threshold > 4 hops": base.replace(
            policies=[{"policy": "thresholded", "params": {"threshold": 4}}]
        ),
        "probabilistic 50%": base.replace(
            policies=[{"policy": "probabilistic", "params": {"q": 0.5, "seed": SEED}}]
        ),
        "frozen (never)": base.replace(policies=["frozen"]),
    }

    results = {}
    for name, spec in specs.items():
        session = open_session(spec)
        session.serve_stream(trace)
        results[name] = session.metrics

    print(f"workload: temporal-0.9, n={N}, m={M}\n")
    print(f"{'policy':20} {'routing':>10} {'rotations':>10}")
    for name, metrics in results.items():
        print(f"{name:20} {metrics.total_routing:>10d} {metrics.total_rotations:>10d}")

    for price in (0.0, 1.0, 5.0, 20.0):
        model = CostModel(rotation_cost=price)
        rows = [
            (name, round(metrics.total_cost(model)))
            for name, metrics in results.items()
        ]
        winner = min(rows, key=lambda r: r[1])[0]
        print(f"\ntotal cost at rotation price {price:g} (winner: {winner})")
        print(bar_chart(rows))


if __name__ == "__main__":
    main()
