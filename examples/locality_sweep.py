#!/usr/bin/env python
"""Sweep the temporal-locality parameter and find the crossover points.

Reproduces the mechanism behind the paper's Tables 4-7: as the probability
``p`` of repeating the previous request grows, self-adjusting networks
overtake static trees — first the full tree, eventually even the
demand-aware optimum.

Run:  python examples/locality_sweep.py
"""

from repro import (
    DemandMatrix,
    KArySplayNet,
    StaticTreeNetwork,
    build_complete_tree,
    optimal_static_tree,
    simulate,
    temporal_trace,
)

N, K, M, SEED = 100, 4, 15_000, 3


def main() -> None:
    print(f"n={N}, k={K}, m={M}  (total routing cost)")
    print(
        f"{'p':>5} {'k-ary SplayNet':>15} {'full tree':>11} {'optimal':>9} "
        f"{'vs full':>8} {'vs opt':>7}"
    )
    for p in (0.0, 0.25, 0.5, 0.75, 0.9, 0.95):
        trace = temporal_trace(N, M, p, seed=SEED)
        dynamic = simulate(KArySplayNet(N, K), trace).total_routing
        full = simulate(
            StaticTreeNetwork(build_complete_tree(N, K)), trace
        ).total_routing
        demand = DemandMatrix.from_trace(trace)
        optimal = simulate(
            StaticTreeNetwork(optimal_static_tree(demand, K).tree), trace
        ).total_routing
        print(
            f"{p:>5.2f} {dynamic:>15} {full:>11} {optimal:>9} "
            f"{dynamic / full:>7.2f}x {dynamic / optimal:>6.2f}x"
        )

    print(
        "\nReading: ratios < 1 mean the self-adjusting network wins; the"
        " crossover against the full tree happens at moderate locality, and"
        " against the optimal demand-aware tree only at high locality —"
        " the same shape as the paper's Tables 4-7."
    )


if __name__ == "__main__":
    main()
