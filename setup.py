"""Legacy shim: this environment's setuptools lacks the `wheel` package, so
PEP 517 editable installs fail; `pip install -e .` falls back to this."""
from setuptools import setup

setup()
