"""Legacy shim: this environment's setuptools lacks the `wheel` package, so
PEP 517 editable installs fail; `pip install -e .` falls back to this.

The package is pure Python plus one optional C source
(``src/repro/core/_native/kernel.c``) that is *not* compiled at install
time: :mod:`repro.core._native` builds it on first use with whatever C
toolchain the host has, and the engine layer falls back to the pure-Python
flat backend when none exists.  The source must therefore ship as package
data (see also MANIFEST.in for sdists).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    package_data={"repro.core._native": ["*.c", "*.h"]},
    include_package_data=True,
)
