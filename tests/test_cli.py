"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.workloads.io import load_trace_csv, save_trace_csv
from repro.workloads.synthetic import zipf_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.csv"
    save_trace_csv(zipf_trace(30, 800, 1.3, seed=1), path)
    return str(path)


class TestGen:
    @pytest.mark.parametrize(
        "kind",
        ["uniform", "temporal", "zipf", "hpc", "elephant-mice", "markov", "shuffle"],
    )
    def test_generates_loadable_csv(self, kind, tmp_path, capsys):
        out = tmp_path / "t.csv"
        rc = main(
            ["gen", kind, str(out), "-n", "40", "-m", "500", "-p", "0.5"]
        )
        assert rc == 0
        assert "wrote 500 requests" in capsys.readouterr().out
        assert load_trace_csv(out).m == 500

    def test_generates_npz(self, tmp_path):
        out = tmp_path / "t.npz"
        assert main(["gen", "uniform", str(out), "-n", "20", "-m", "100"]) == 0
        from repro.workloads.io import load_trace_npz

        assert load_trace_npz(out).m == 100


class TestStats:
    def test_prints_fingerprint(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "repeat=" in out and "n=30" in out


class TestSimulate:
    @pytest.mark.parametrize(
        "network",
        ["ksplaynet", "centroid-splaynet", "splaynet", "full-tree",
         "centroid-tree", "optimal-tree", "lazy"],
    )
    def test_every_network_runs(self, network, trace_file, capsys):
        rc = main(["simulate", trace_file, network, "-k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "routing-only cost" in out

    def test_loads_npz_traces(self, tmp_path, capsys):
        from repro.workloads.io import save_trace_npz

        path = tmp_path / "t.npz"
        save_trace_npz(zipf_trace(20, 300, 1.2, seed=2), path)
        assert main(["simulate", str(path), "ksplaynet"]) == 0


class TestOptimal:
    def test_prints_cost_and_tree(self, trace_file, capsys):
        rc = main(["optimal", trace_file, "-k", "2", "--show"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total distance" in out
        assert "r=[" in out  # rendered tree


class TestComplexity:
    def test_prints_map_coordinates(self, trace_file, capsys):
        assert main(["complexity", trace_file]) == 0
        out = capsys.readouterr().out
        assert "spatial=" in out and "temporal=" in out

    def test_window_flag(self, trace_file, capsys):
        assert main(["complexity", trace_file, "--window", "32"]) == 0
        assert "recurrence=" in capsys.readouterr().out


class TestFigures:
    def test_renders_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 9):
            assert f"figure{i}" in out

    def test_renders_subset(self, capsys):
        assert main(["figures", "figure1", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "figure7" in out
        assert "figure5" not in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "figure99"]) == 2
        assert "error:" in capsys.readouterr().err


class TestReproduceJobs:
    def test_jobs_flag_accepted(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        rc = main(["reproduce", "--scale", "smoke", "--quiet", "--jobs", "1"])
        assert rc == 0
        assert "Table" in capsys.readouterr().out

    def test_engine_flag_accepted(self, capsys):
        rc = main(
            ["reproduce", "--scale", "smoke", "--quiet", "--engine", "object"]
        )
        assert rc == 0
        assert "Table" in capsys.readouterr().out


class TestScenarios:
    def test_list_names_every_table(self, capsys):
        assert main(["scenarios", "list", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table7", "table8", "remark10", "all"):
            assert name in out

    def test_run_prints_cells(self, capsys):
        rc = main(["scenarios", "run", "table4", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kary-splaynet" in out and "optimal-tree" in out
        assert "9 cells" in out

    def test_run_streams_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "cells.jsonl"
        rc = main(
            ["scenarios", "run", "remark10", "--scale", "smoke",
             "--output", str(out_path)]
        )
        assert rc == 0
        from repro.scenarios import read_results_jsonl

        results = read_results_jsonl(out_path)
        assert len(results) == 144
        assert all(r.spec.kind == "analytic" for r in results)

    def test_export_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "new" / "dir" / "specs.json"
        rc = main(
            ["scenarios", "export", "table8", "--scale", "smoke",
             "-o", str(out_path)]
        )
        assert rc == 0
        from repro.scenarios import expand, specs_from_json
        from repro.experiments.presets import SMOKE

        assert specs_from_json(out_path.read_text()) == expand("table8", SMOKE)

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenarios", "run", "table99", "--scale", "smoke"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeValidation:
    """Bad `repro serve` flags must be one clear error line and exit 2 —
    never a traceback from inside multiprocessing or asyncio."""

    @pytest.mark.parametrize(
        "argv, needle",
        [
            (["serve", "--shards", "0"], "--shards must be >= 1"),
            (["serve", "--shards", "-3"], "--shards must be >= 1"),
            (["serve", "--port", "70000"], "--port must be in 0..65535"),
            (["serve", "--port", "-1"], "--port must be in 0..65535"),
            (["serve", "-n", "1"], "--nodes must be >= 2"),
            (["serve", "--batch-window", "-0.5"], "--batch-window"),
            (["serve", "--batch-max", "0"], "--batch-max must be >= 1"),
        ],
    )
    def test_bad_flag_is_one_clear_error_line(self, argv, needle, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert needle in err
        assert "Traceback" not in err

    def test_non_integer_flag_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--shards", "two"])
        assert excinfo.value.code == 2


class TestErrors:
    def test_repro_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("# empty\n")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
