"""The public API surface: ``repro.__all__`` is importable and documented.

Every ``__all__`` entry must (1) resolve to a real attribute — a stale
name breaks ``from repro import *`` and any tutorial using it — and
(2) appear in README.md's "Public API" section, so the documented surface
and the exported surface cannot drift apart silently.  The new unified
network API must be part of that surface.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro

README = Path(__file__).resolve().parent.parent / "README.md"


def _api_section() -> str:
    text = README.read_text()
    match = re.search(r"## Public API\n(.*?)\n## ", text, flags=re.S)
    assert match, "README.md must contain a '## Public API' section"
    return match.group(1)


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_all_entry_imports(name):
    assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is missing"


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_every_export_documented_in_readme():
    section = _api_section()
    missing = [
        name
        for name in repro.__all__
        if f"`{name}`" not in section
    ]
    assert not missing, (
        f"README.md 'Public API' section is missing {missing}; keep the"
        " documented surface in sync with repro.__all__"
    )


def test_readme_documents_no_phantom_names():
    """Backticked identifiers in the API section must actually be exported
    (catches documentation of since-removed names)."""
    section = _api_section()
    documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", section))
    # Words that are prose markup, not exports.
    documented -= {"repro", "tests"}
    phantom = documented - set(repro.__all__)
    assert not phantom, f"README documents non-exported names: {sorted(phantom)}"


def test_net_api_exported():
    for name in (
        "NetworkSpec",
        "PolicySpec",
        "build_network",
        "register_network",
        "register_policy",
        "network_algorithms",
        "open_session",
        "Session",
        "SessionMetrics",
        "SessionSnapshot",
    ):
        assert name in repro.__all__, f"net API name {name!r} not exported"


def test_star_import_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    missing = [name for name in repro.__all__ if name not in namespace]
    assert not missing
