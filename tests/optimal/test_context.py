"""The DP subsystem's shared demand context and cross-arity reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimal import (
    DemandContext,
    clear_context_cache,
    context_cache_stats,
    demand_context,
    optimal_static_cost_table,
    optimal_static_tree,
)
from repro.optimal.legacy import legacy_optimal_cost_table
from repro.optimal.wmatrix import boundary_crossing_matrix
from repro.workloads.demand import DemandMatrix


def random_demand(rng, n, hi=6):
    d = rng.integers(0, hi, (n, n))
    np.fill_diagonal(d, 0)
    return d


class TestDemandContext:
    def test_holds_int64_inputs(self, rng):
        d = random_demand(rng, 10)
        ctx = DemandContext.from_demand(d)
        assert ctx.dense.dtype == np.int64
        assert ctx.w.dtype == np.int64
        assert np.array_equal(ctx.w, boundary_crossing_matrix(d))

    def test_accepts_demand_matrix(self, rng):
        d = random_demand(rng, 8)
        ctx = DemandContext.from_demand(DemandMatrix(8, dense=d))
        assert ctx.n == 8 and ctx.total == int(d.sum())

    def test_rejects_non_integral_floats(self):
        d = np.zeros((4, 4))
        d[0, 1] = 1.5
        with pytest.raises(OptimizationError):
            DemandContext.from_demand(d)

    def test_rejects_negative_counts(self):
        d = np.zeros((4, 4), dtype=np.int64)
        d[0, 1] = -3
        with pytest.raises(OptimizationError):
            DemandContext.from_demand(d)

    def test_rejects_overflow_scale_demands(self):
        # 2 * n * total must stay below 2^60 for exact int64 tables.
        d = np.zeros((4, 4), dtype=np.int64)
        d[0, 1] = 1 << 58
        with pytest.raises(OptimizationError):
            DemandContext.from_demand(d)

    def test_guard_survives_int64_wraparound_of_the_total(self):
        # Entries whose int64 sum wraps negative must still be rejected,
        # not sneak past the guard on a wrapped (negative) total.
        d = np.zeros((2, 2), dtype=np.int64)
        d[0, 1] = d[1, 0] = 1 << 62
        with pytest.raises(OptimizationError):
            DemandContext.from_demand(d)

    def test_mismatched_context_is_rejected(self, rng):
        ctx = DemandContext.from_demand(random_demand(rng, 8))
        with pytest.raises(OptimizationError):
            optimal_static_cost_table(random_demand(rng, 9), 2, context=ctx)


class TestCrossArityReuse:
    """One context across an arity sweep must equal fresh per-k runs."""

    @pytest.mark.parametrize("ks", [(2, 3, 5, 9), (9, 5, 3, 2), (4, 4, 7, 2)])
    def test_shared_context_matches_fresh_runs(self, rng, ks):
        d = random_demand(rng, 26)
        ctx = DemandContext.from_demand(d)
        for k in ks:
            shared = optimal_static_cost_table(d, k, context=ctx)
            fresh = optimal_static_cost_table(
                d, k, context=DemandContext.from_demand(d)
            )
            assert shared == fresh == int(round(legacy_optimal_cost_table(d, k)))

    def test_reuse_prefix_grows_to_widest_arity(self, rng):
        ctx = DemandContext.from_demand(random_demand(rng, 12))
        assert ctx.reuse_for(5) == (0, None)
        optimal_static_cost_table(ctx.dense, 3, context=ctx)
        length, prefix = ctx.reuse_for(5)
        assert length == 3 and prefix is not None
        optimal_static_cost_table(ctx.dense, 6, context=ctx)
        length, _ = ctx.reuse_for(5)
        assert length == 5  # min(stored arity 6, requested 5)
        optimal_static_cost_table(ctx.dense, 2, context=ctx)
        length, _ = ctx.reuse_for(9)
        assert length == 6  # narrower runs never shrink the prefix

    def test_reconstruction_agrees_with_seeded_tables(self, rng):
        d = random_demand(rng, 18)
        ctx = DemandContext.from_demand(d)
        optimal_static_cost_table(d, 8, context=ctx)  # widest first: max seeding
        for k in (2, 3, 5):
            seeded = optimal_static_tree(d, k, context=ctx)
            fresh = optimal_static_tree(
                d, k, context=DemandContext.from_demand(d)
            )
            seeded.tree.validate()
            assert seeded.cost == fresh.cost


class TestContextMemo:
    def test_same_content_shares_one_context(self, rng):
        clear_context_cache()
        d = random_demand(rng, 9)
        try:
            first = demand_context(d)
            again = demand_context(d.copy())  # equal content, new object
            assert again is first
            stats = context_cache_stats()
            assert stats == {"hits": 1, "misses": 1, "size": 1}
        finally:
            clear_context_cache()

    def test_distinct_content_distinct_contexts(self, rng):
        clear_context_cache()
        try:
            a = demand_context(random_demand(rng, 9))
            b = demand_context(random_demand(rng, 9))
            assert a is not b
            assert context_cache_stats()["misses"] == 2
        finally:
            clear_context_cache()

    def test_default_calls_share_the_memoized_context(self, rng):
        clear_context_cache()
        d = random_demand(rng, 14)
        try:
            costs = [optimal_static_cost_table(d, k) for k in (2, 4, 6)]
            assert context_cache_stats()["misses"] == 1
            assert costs == sorted(costs, reverse=True)
        finally:
            clear_context_cache()
