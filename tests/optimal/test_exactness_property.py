"""Property test: the int64 DP is exact on arbitrary-magnitude demands.

Compares the vectorized forward pass against the pure-Python reference
transcription on random small instances whose weights reach far past
float64's 2^53 exact-integer range.  Needs hypothesis (installed in CI);
skipped gracefully when absent.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimal.general import optimal_static_cost_table
from repro.optimal.reference import reference_optimal_cost


@given(
    n=st.integers(min_value=1, max_value=6),
    k=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_matches_reference_including_large_magnitudes(n, k, data):
    # Entries mix zeros, small counts and near-2^47 weights: far past
    # float64's 2^53 exact-integer range once a few of them add up.
    entry = st.one_of(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=(1 << 46), max_value=(1 << 47)),
    )
    d = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(n):
            if i != j:
                d[i, j] = data.draw(entry)
    assert optimal_static_cost_table(d, k) == reference_optimal_cost(d, k)
