"""Tests for the O(n²k) uniform-workload DP (Theorem 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance import total_distance_via_potentials
from repro.errors import OptimizationError
from repro.optimal.general import optimal_static_cost_table
from repro.optimal.uniform import (
    optimal_uniform_cost,
    optimal_uniform_table,
    optimal_uniform_tree,
)


class TestAgainstGeneralDP:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 16, 25])
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_matches_general_dp_on_uniform_demand(self, n, k):
        demand = np.triu(np.ones((n, n), dtype=np.int64), 1)
        assert optimal_uniform_cost(n, k) == optimal_static_cost_table(demand, k)


class TestReconstruction:
    @pytest.mark.parametrize("n", [1, 2, 7, 20, 63, 100])
    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_tree_cost_matches_dp(self, n, k):
        result = optimal_uniform_tree(n, k)
        result.tree.validate()
        measured = total_distance_via_potentials(result.tree) // 2
        assert measured == result.cost

    def test_tree_respects_arity(self):
        result = optimal_uniform_tree(50, 3)
        for node in result.tree.iter_nodes():
            assert node.degree <= 3


class TestStructure:
    def test_cost_non_increasing_in_k(self):
        costs = [optimal_uniform_cost(60, k) for k in (2, 3, 4, 8)]
        assert costs == sorted(costs, reverse=True)

    def test_cost_increasing_in_n(self):
        costs = [optimal_uniform_cost(n, 3) for n in (5, 10, 20, 40)]
        assert costs == sorted(costs)

    def test_table_shapes(self):
        t_cost, b = optimal_uniform_table(10, 3)
        assert t_cost.shape == (11,)
        assert b.shape == (4, 11)
        # forests of at most t trees only improve with t
        assert np.all(b[3, 1:] <= b[2, 1:])

    def test_known_small_values(self):
        # two nodes: one edge, one unordered pair at distance 1
        assert optimal_uniform_cost(2, 2) == 1
        # three nodes in a path: distances 1+1+2 = 4
        assert optimal_uniform_cost(3, 2) == 4
        # three nodes with k=3... still a path or star: star gives 1+1+2=4
        assert optimal_uniform_cost(3, 3) == 4

    def test_invalid_inputs(self):
        with pytest.raises(OptimizationError):
            optimal_uniform_cost(0, 2)
        with pytest.raises(OptimizationError):
            optimal_uniform_cost(5, 1)
