"""Tests for the boundary-crossing matrix W (Claim 16 / Lemma 18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimal.wmatrix import boundary_crossing_matrix, uniform_boundary_crossing


def slow_w(demand: np.ndarray, i: int, j: int) -> int:
    """Direct transcription of the paper's definition of W[i, j]."""
    n = demand.shape[0]
    inside = set(range(i, j + 1))
    total = 0
    for u in range(n):
        for v in range(n):
            if (u in inside) != (v in inside):
                total += int(demand[u, v])
    return total


class TestBoundaryCrossing:
    @pytest.mark.parametrize("n", [1, 2, 3, 6, 10])
    def test_matches_direct_definition(self, n, rng):
        demand = rng.integers(0, 7, (n, n))
        np.fill_diagonal(demand, 0)
        w = boundary_crossing_matrix(demand)
        for i in range(n):
            for length in range(1, n - i + 1):
                assert w[i, length] == slow_w(demand, i, i + length - 1)

    def test_whole_segment_crosses_nothing(self, rng):
        demand = rng.integers(0, 5, (8, 8))
        np.fill_diagonal(demand, 0)
        w = boundary_crossing_matrix(demand)
        assert w[0, 8] == 0

    def test_single_node_segment(self):
        demand = np.zeros((3, 3), dtype=np.int64)
        demand[0, 2] = 4
        demand[2, 0] = 1
        w = boundary_crossing_matrix(demand)
        assert w[0, 1] == 5  # all traffic of node 0 crosses
        assert w[1, 1] == 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            boundary_crossing_matrix(np.zeros((2, 3)))


class TestUniformW:
    def test_lemma18_formula(self):
        w = uniform_boundary_crossing(10)
        for length in range(11):
            assert w[length] == length * (10 - length)

    def test_agrees_with_general_matrix_on_unordered_uniform(self):
        n = 7
        demand = np.triu(np.ones((n, n), dtype=np.int64), 1)
        general = boundary_crossing_matrix(demand)
        uniform = uniform_boundary_crossing(n)
        for i in range(n):
            for length in range(1, n - i + 1):
                assert general[i, length] == uniform[length]
