"""Tests for the O(n³k) optimal static tree DP (Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance import total_demand_distance, trace_static_cost
from repro.core.builders import build_balanced_tree, build_complete_tree
from repro.errors import OptimizationError
from repro.optimal.general import optimal_static_cost_table, optimal_static_tree
from repro.optimal.reference import brute_force_optimal_cost, reference_optimal_cost
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import uniform_trace, zipf_trace


def random_demand(rng, n, hi=6):
    d = rng.integers(0, hi, (n, n))
    np.fill_diagonal(d, 0)
    return d


class TestAgainstReferences:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_pure_python_reference(self, n, k, rng):
        d = random_demand(rng, n)
        assert optimal_static_cost_table(d, k) == reference_optimal_cost(d, k)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_exhaustive_enumeration(self, n, k, rng):
        d = random_demand(rng, n)
        assert optimal_static_cost_table(d, k) == brute_force_optimal_cost(d, k)

    def test_larger_instance_against_reference(self, rng):
        d = random_demand(rng, 12)
        assert optimal_static_cost_table(d, 3) == reference_optimal_cost(d, 3)

    @pytest.mark.parametrize("k", [2, 3, 7])
    def test_matches_legacy_forward_pass(self, k, rng):
        # The historical float64 implementation, at sizes where the pure
        # Python reference is too slow.
        from repro.optimal.legacy import legacy_optimal_cost_table

        d = random_demand(rng, 40)
        assert optimal_static_cost_table(d, k) == int(
            round(legacy_optimal_cost_table(d, k))
        )


class TestExactness:
    """The int64 DP must stay exact where float64 accumulation drifts.

    (The randomized property-test variant lives in
    ``test_exactness_property.py`` — it needs hypothesis, which is
    optional.)
    """

    def test_huge_weights_exceed_float64_precision_but_stay_exact(self):
        # One hot pair of weight 2^53 + 1 (not representable in float64):
        # the optimum places it adjacent, so the exact cost is the weight
        # itself — a float64 pipeline would round it down to 2^53.
        n = 5
        big = (1 << 53) + 1
        d = np.zeros((n, n), dtype=np.int64)
        d[0, 4] = big
        cost = optimal_static_cost_table(d, 2)
        assert cost == reference_optimal_cost(d, 2) == big

    def test_cost_attribute_is_a_python_int(self, rng):
        result = optimal_static_tree(DemandMatrix(8, dense=random_demand(rng, 8)), 3)
        assert type(result.cost) is int
        assert type(optimal_static_cost_table(random_demand(rng, 6), 2)) is int


class TestReconstruction:
    @pytest.mark.parametrize("n,k", [(5, 2), (10, 3), (25, 2), (25, 5), (40, 4)])
    def test_tree_cost_equals_dp_value(self, n, k, rng):
        demand = DemandMatrix(n, dense=random_demand(rng, n))
        result = optimal_static_tree(demand, k)
        result.tree.validate()
        assert total_demand_distance(result.tree, demand) == result.cost

    def test_tree_is_routing_based(self, rng):
        demand = DemandMatrix(12, dense=random_demand(rng, 12))
        result = optimal_static_tree(demand, 3)
        assert result.tree.routing_based
        for node in result.tree.iter_nodes():
            assert float(node.nid) in node.routing

    def test_respects_arity(self, rng):
        demand = DemandMatrix(30, dense=random_demand(rng, 30))
        result = optimal_static_tree(demand, 3)
        for node in result.tree.iter_nodes():
            assert node.degree <= 3


class TestOptimality:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_beats_every_static_baseline(self, k, rng):
        trace = zipf_trace(30, 3000, 1.4, seed=8)
        demand = DemandMatrix.from_trace(trace)
        optimal = optimal_static_tree(demand, k)
        for baseline in (build_complete_tree(30, k), build_balanced_tree(30, k)):
            assert optimal.cost <= total_demand_distance(baseline, demand)

    def test_cost_non_increasing_in_k(self, rng):
        d = random_demand(rng, 20)
        costs = [optimal_static_cost_table(d, k) for k in (2, 3, 4, 6)]
        assert costs == sorted(costs, reverse=True)

    def test_hot_pair_placed_adjacent(self):
        d = np.zeros((12, 12), dtype=np.int64)
        d[1, 9] = 500
        d[3, 4] = 1
        result = optimal_static_tree(DemandMatrix(12, dense=d), 3)
        assert result.tree.distance(2, 10) == 1  # ids are 1-based

    def test_uniform_demand_cost_matches_uniform_dp(self):
        from repro.optimal.uniform import optimal_uniform_cost

        n = 18
        d = np.triu(np.ones((n, n), dtype=np.int64), 1)
        for k in (2, 3, 4):
            general = optimal_static_cost_table(d, k)
            assert general == optimal_uniform_cost(n, k)


class TestEdgeCases:
    def test_single_node(self):
        result = optimal_static_tree(DemandMatrix(1, dense=np.zeros((1, 1), dtype=np.int64)), 2)
        assert result.cost == 0 and result.tree.n == 1

    def test_zero_demand(self):
        result = optimal_static_tree(
            DemandMatrix(6, dense=np.zeros((6, 6), dtype=np.int64)), 2
        )
        result.tree.validate()
        assert result.cost == 0

    def test_k_larger_than_n(self, rng):
        d = random_demand(rng, 4)
        result = optimal_static_tree(DemandMatrix(4, dense=d), 8)
        result.tree.validate()
        assert result.cost == optimal_static_cost_table(d, 8)

    def test_invalid_arity(self):
        with pytest.raises(OptimizationError):
            optimal_static_cost_table(np.zeros((3, 3)), 1)

    def test_non_square_demand(self):
        with pytest.raises(OptimizationError):
            optimal_static_cost_table(np.zeros((2, 3)), 2)

    def test_accepts_raw_arrays_and_demand_matrices(self, rng):
        d = random_demand(rng, 8)
        a = optimal_static_cost_table(d, 3)
        b = optimal_static_tree(DemandMatrix(8, dense=d), 3).cost
        assert a == b
