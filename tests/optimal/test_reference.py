"""Tests for the slow reference implementations themselves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimal.reference import (
    brute_force_optimal_cost,
    enumerate_trees,
    reference_optimal_cost,
)
from repro.errors import OptimizationError


class TestEnumeration:
    def test_bst_count_is_catalan(self):
        """Routing-based 2-ary search trees on n nodes are plain BSTs."""
        catalan = {1: 1, 2: 2, 3: 5, 4: 14}
        for n, expected in catalan.items():
            assert len(list(enumerate_trees(0, n - 1, 2))) == expected

    def test_higher_arity_count_grows(self):
        n = 4
        binary = len(list(enumerate_trees(0, n - 1, 2)))
        ternary = len(list(enumerate_trees(0, n - 1, 3)))
        assert ternary > binary

    def test_trees_are_valid_parent_maps(self):
        for tree in enumerate_trees(0, 3, 3):
            roots = [v for v in range(4) if v not in tree]
            assert len(roots) == 1
            # every parent pointer stays in range
            assert all(0 <= p <= 3 for p in tree.values())

    def test_search_property_holds(self):
        """In a routing-based k-ary search tree, each subtree is a segment."""
        for tree in enumerate_trees(0, 4, 3):
            children: dict[int, list[int]] = {}
            for c, p in tree.items():
                children.setdefault(p, []).append(c)

            def subtree(v):
                out = {v}
                for c in children.get(v, []):
                    out |= subtree(c)
                return out

            for v in range(5):
                ids = sorted(subtree(v))
                assert ids == list(range(ids[0], ids[-1] + 1))


class TestReferenceDP:
    def test_zero_demand_zero_cost(self):
        d = np.zeros((5, 5), dtype=np.int64)
        assert reference_optimal_cost(d, 2) == 0

    def test_two_nodes(self):
        d = np.array([[0, 3], [2, 0]])
        assert reference_optimal_cost(d, 2) == 5  # adjacent: 5 requests × 1

    def test_agreement_between_references(self, rng):
        for n in (2, 3, 4):
            d = rng.integers(0, 5, (n, n))
            np.fill_diagonal(d, 0)
            assert reference_optimal_cost(d, 2) == brute_force_optimal_cost(d, 2)

    def test_brute_force_size_guard(self):
        with pytest.raises(OptimizationError):
            brute_force_optimal_cost(np.zeros((9, 9)), 2)
