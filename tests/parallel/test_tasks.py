"""Simulation tasks: registry coverage, worker-side regeneration, equality
with direct (in-process) simulation."""

from __future__ import annotations

import pytest

from repro.analysis.distance import trace_static_cost
from repro.core.builders import build_complete_tree
from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.net import online_algorithms, static_algorithms
from repro.network.simulator import Simulator
from repro.parallel.pool import parallel_map
from repro.parallel.tasks import (
    SimulationTask,
    SimulationTaskResult,
    materialize_trace,
    run_simulation_task,
    static_cost_task,
)
from repro.workloads.synthetic import temporal_trace, uniform_trace


class TestMaterializeTrace:
    @pytest.mark.parametrize(
        "workload", ["uniform", "hpc", "projector", "facebook", "temporal-0.5", "zipf-1.2"]
    )
    def test_known_workloads(self, workload):
        trace = materialize_trace(workload, 32, 200, seed=3)
        assert trace.n == 32
        assert trace.m == 200

    def test_deterministic(self):
        a = materialize_trace("temporal-0.75", 20, 100, seed=9)
        b = materialize_trace("temporal-0.75", 20, 100, seed=9)
        assert (a.sources == b.sources).all()
        assert (a.targets == b.targets).all()

    def test_matches_direct_generator(self):
        via_task = materialize_trace("uniform", 16, 50, seed=4)
        direct = uniform_trace(16, 50, 4)
        assert (via_task.sources == direct.sources).all()

    def test_unknown_workload(self):
        with pytest.raises(ExperimentError):
            materialize_trace("quantum", 16, 50, seed=4)


class TestTaskValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ExperimentError):
            SimulationTask("uniform", 16, 50, 1, "teleport", 2)

    def test_bad_k(self):
        with pytest.raises(ExperimentError):
            SimulationTask("uniform", 16, 50, 1, "kary-splaynet", 1)

    def test_registries_disjoint(self):
        assert not online_algorithms() & static_algorithms()


class TestRunSimulationTask:
    @pytest.mark.parametrize("algorithm", sorted(online_algorithms()))
    def test_online_algorithms_run(self, algorithm):
        task = SimulationTask("temporal-0.5", 24, 300, 7, algorithm, 3)
        result = run_simulation_task(task)
        assert isinstance(result, SimulationTaskResult)
        assert result.total_routing > 0
        assert result.task == task

    @pytest.mark.parametrize("algorithm", sorted(static_algorithms()))
    def test_static_algorithms_run(self, algorithm):
        task = SimulationTask("temporal-0.5", 20, 200, 7, algorithm, 3)
        result = run_simulation_task(task)
        assert result.total_routing > 0
        assert result.total_rotations == 0
        assert result.total_links_changed == 0

    def test_online_matches_direct_simulation(self):
        n, m, seed, k = 20, 400, 11, 3
        task = SimulationTask("temporal-0.75", n, m, seed, "kary-splaynet", k)
        via_task = run_simulation_task(task)
        trace = temporal_trace(n, m, 0.75, seed)
        direct = Simulator().run(KArySplayNet(n, k, initial="complete"), trace)
        assert via_task.total_routing == direct.total_routing
        assert via_task.total_rotations == direct.total_rotations

    def test_static_matches_direct_cost(self):
        n, m, seed, k = 20, 400, 11, 4
        task = SimulationTask("uniform", n, m, seed, "full-tree", k)
        via_task = run_simulation_task(task)
        trace = uniform_trace(n, m, seed)
        assert via_task.total_routing == trace_static_cost(
            build_complete_tree(n, k), trace
        )

    def test_average_routing(self):
        task = SimulationTask("uniform", 16, 100, 2, "full-tree", 2)
        result = run_simulation_task(task)
        assert result.average_routing == result.total_routing / 100

    def test_tasks_through_process_pool(self):
        tasks = [
            SimulationTask("uniform", 16, 120, 5, "kary-splaynet", k)
            for k in (2, 3, 4)
        ]
        parallel = parallel_map(run_simulation_task, tasks, jobs=2)
        serial = [run_simulation_task(t) for t in tasks]
        assert [r.total_routing for r in parallel] == [
            r.total_routing for r in serial
        ]


class TestStaticCostTask:
    def test_value(self):
        task = SimulationTask("uniform", 16, 100, 2, "full-tree", 2)
        assert static_cost_task(task) == run_simulation_task(task).total_routing

    def test_rejects_online_algorithm(self):
        with pytest.raises(ExperimentError):
            static_cost_task(SimulationTask("uniform", 16, 100, 2, "splaynet", 2))
