"""Property-based checks: parallel_map semantics are invariant to chunking,
job counts and backpressure settings."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.pool import ParallelConfig, parallel_map


def triple(x: int) -> int:
    return 3 * x


@given(
    items=st.lists(st.integers(min_value=-10**6, max_value=10**6), max_size=50),
    chunk=st.integers(min_value=1, max_value=17),
)
@settings(max_examples=30, deadline=None)
def test_property_serial_chunking_invariant(items, chunk):
    config = ParallelConfig(jobs=1, chunk_size=chunk)
    assert parallel_map(triple, items, config=config) == [3 * x for x in items]


@given(
    items=st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=24),
    chunk=st.integers(min_value=1, max_value=7),
    pending=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=8, deadline=None)  # process pools are slow to spin up
def test_property_parallel_chunking_invariant(items, chunk, pending):
    config = ParallelConfig(jobs=2, chunk_size=chunk, max_pending=pending)
    assert parallel_map(triple, items, config=config) == [3 * x for x in items]


@given(items=st.lists(st.integers(), max_size=30))
@settings(max_examples=30, deadline=None)
def test_property_output_length_matches_input(items):
    assert len(parallel_map(triple, items)) == len(items)
