"""Seed-derivation determinism, independence and label discipline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.seeds import (
    MAX_SEED,
    derive_seed,
    interleave_check,
    seed_for_cell,
    spawn_seeds,
)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct_children(self):
        seeds = spawn_seeds(2024, 100)
        assert len(set(seeds)) == 100

    def test_different_roots_differ(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_count_zero(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_range(self):
        assert all(0 <= s <= MAX_SEED for s in spawn_seeds(3, 50))

    def test_prefix_stability(self):
        # spawning more children never changes the earlier ones
        assert spawn_seeds(9, 10)[:4] == spawn_seeds(9, 4)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2024, "hpc", 3) == derive_seed(2024, "hpc", 3)

    def test_label_sensitivity(self):
        assert derive_seed(2024, "hpc", 3) != derive_seed(2024, "hpc", 4)
        assert derive_seed(2024, "hpc") != derive_seed(2024, "fb")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_type_tagged_labels(self):
        # int 1, float 1.0, string "1" and True must all hash differently
        seeds = {
            derive_seed(0, 1),
            derive_seed(0, 1.0),
            derive_seed(0, "1"),
            derive_seed(0, True),
        }
        assert len(seeds) == 4

    def test_none_label(self):
        assert derive_seed(0, None) == derive_seed(0, None)
        assert derive_seed(0, None) != derive_seed(0, "none")

    def test_label_boundaries_do_not_merge(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_unsupported_label_type(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())  # type: ignore[arg-type]

    def test_range(self):
        assert 0 <= derive_seed(123, "x", 5, 2.5) <= MAX_SEED

    @given(
        root=st.integers(min_value=0, max_value=2**32),
        a=st.text(max_size=20),
        b=st.integers(min_value=-(10**6), max_value=10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_pure_function(self, root, a, b):
        assert derive_seed(root, a, b) == derive_seed(root, a, b)


class TestSeedForCell:
    def test_axis_order_insensitive(self):
        assert seed_for_cell(7, {"k": 3, "w": "hpc"}) == seed_for_cell(
            7, {"w": "hpc", "k": 3}
        )

    def test_value_sensitive(self):
        assert seed_for_cell(7, {"k": 3}) != seed_for_cell(7, {"k": 4})

    def test_axis_name_sensitive(self):
        assert seed_for_cell(7, {"k": 3}) != seed_for_cell(7, {"q": 3})

    def test_grid_of_cells_mostly_unique(self):
        seeds = [
            seed_for_cell(11, {"k": k, "n": n, "rep": r})
            for k in range(2, 11)
            for n in (50, 100, 200)
            for r in range(5)
        ]
        assert interleave_check(seeds)
        assert len(set(seeds)) == len(seeds)
