"""Run the executable examples embedded in the parallel package's docs."""

from __future__ import annotations

import doctest

import repro.parallel.seeds
import repro.parallel.sweep


def test_seeds_doctests():
    results = doctest.testmod(repro.parallel.seeds)
    assert results.failed == 0
    assert results.attempted >= 3


def test_sweep_doctests():
    results = doctest.testmod(repro.parallel.sweep)
    assert results.failed == 0
    assert results.attempted >= 1
