"""Sweep engine: enumeration order, seeding, selection, parallel equality."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.parallel.seeds import seed_for_cell
from repro.parallel.sweep import SweepCell, SweepResult, SweepSpec, run_sweep


def cell_product(cell: SweepCell) -> int:
    return cell.coords["a"] * cell.coords["b"]


def cell_seed(cell: SweepCell) -> int:
    return cell.seed


class TestSweepSpec:
    def test_size(self):
        spec = SweepSpec(axes={"a": (1, 2, 3), "b": (10, 20)})
        assert spec.size() == 6

    def test_size_with_repeats(self):
        spec = SweepSpec(axes={"a": (1, 2)}, repeats=3)
        assert spec.size() == 6

    def test_row_major_order(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": ("x", "y")})
        coords = [dict(c.coords) for c in spec.cells()]
        assert coords == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_indices_sequential(self):
        spec = SweepSpec(axes={"a": (1, 2, 3)})
        assert [c.index for c in spec.cells()] == [0, 1, 2]

    def test_seeds_match_seed_for_cell(self):
        spec = SweepSpec(axes={"a": (1, 2)}, root_seed=99)
        for cell in spec.cells():
            assert cell.seed == seed_for_cell(99, cell.coords)

    def test_seed_independent_of_grid_shape(self):
        # the same coordinates get the same seed in a larger grid
        small = SweepSpec(axes={"a": (1,)}, root_seed=5)
        large = SweepSpec(axes={"a": (1, 2, 3)}, root_seed=5)
        seed_small = next(iter(small.cells())).seed
        seed_large = next(iter(large.cells())).seed
        assert seed_small == seed_large

    def test_repeats_get_distinct_seeds(self):
        spec = SweepSpec(axes={"a": (1,)}, repeats=4)
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == 4

    def test_axis_names_property(self):
        assert SweepSpec(axes={"a": (1,), "b": (2,)}).axis_names == ("a", "b")
        assert SweepSpec(axes={"a": (1,)}, repeats=2).axis_names == ("a", "rep")

    def test_empty_axes_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axes={})

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axes={"a": ()})

    def test_bad_repeats(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axes={"a": (1,)}, repeats=0)

    def test_reserved_rep_axis(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axes={"rep": (1,)}, repeats=2)

    def test_cell_getitem(self):
        cell = next(iter(SweepSpec(axes={"a": (7,)}).cells()))
        assert cell["a"] == 7


class TestRunSweep:
    def test_serial_values(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": (3, 4)})
        result = run_sweep(cell_product, spec)
        assert result.values == [3, 4, 6, 8]

    def test_parallel_matches_serial(self):
        spec = SweepSpec(axes={"a": tuple(range(1, 7)), "b": (2, 5)})
        serial = run_sweep(cell_product, spec)
        parallel = run_sweep(cell_product, spec, jobs=2)
        assert serial.values == parallel.values
        assert [c.seed for c in serial.cells] == [c.seed for c in parallel.cells]

    def test_value_lookup(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": (3, 4)})
        result = run_sweep(cell_product, spec)
        assert result.value(a=2, b=3) == 6

    def test_value_lookup_ambiguous(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": (3, 4)})
        result = run_sweep(cell_product, spec)
        with pytest.raises(ExperimentError):
            result.value(a=1)

    def test_select(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": (3, 4)})
        result = run_sweep(cell_product, spec)
        sub = result.select(a=2)
        assert len(sub) == 2
        assert sub.values == [6, 8]

    def test_rows_export(self):
        spec = SweepSpec(axes={"a": (1,), "b": (3,)})
        rows = run_sweep(cell_product, spec).rows()
        assert rows[0]["a"] == 1 and rows[0]["b"] == 3 and rows[0]["value"] == 3
        assert "seed" in rows[0]

    def test_axis_values(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": (3, 4)})
        result = run_sweep(cell_product, spec)
        assert result.axis_values("a") == [1, 2]

    def test_group_mean(self):
        spec = SweepSpec(axes={"a": (1, 2)}, repeats=2)
        result = run_sweep(cell_seed, spec)
        means = result.group_mean(float, "a")
        assert set(means) == {1, 2}

    def test_deterministic_across_runs(self):
        spec = SweepSpec(axes={"a": (1, 2, 3)}, root_seed=42)
        r1 = run_sweep(cell_seed, spec)
        r2 = run_sweep(cell_seed, spec)
        assert r1.values == r2.values
