"""parallel_map semantics: ordering, fallback, chunking, error policies.

Worker functions live at module level so the multi-process paths genuinely
pickle them; the serial path (jobs=1) must behave identically.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ExperimentError
from repro.parallel.pool import (
    ParallelConfig,
    cpu_jobs,
    parallel_map,
    parallel_map_outcomes,
    parallel_starmap,
)


def square(x: int) -> int:
    return x * x


def fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x


def add(a: int, b: int) -> int:
    return a + b


def pid_of(_: int) -> int:
    return os.getpid()


class TestCpuJobs:
    def test_at_least_one(self):
        assert cpu_jobs(reserve=10**6) == 1

    def test_cap(self):
        assert cpu_jobs(reserve=0, cap=2) <= 2

    def test_default_leaves_headroom(self):
        count = os.cpu_count() or 1
        assert cpu_jobs() == max(1, count - 1)


class TestSerialPath:
    def test_order_preserved(self):
        assert parallel_map(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_single_item(self):
        assert parallel_map(square, [5]) == [25]

    def test_error_raises_with_context(self):
        with pytest.raises(ExperimentError, match="item 3"):
            parallel_map(fail_on_three, [1, 2, 3, 4])

    def test_error_collect_keeps_going(self):
        config = ParallelConfig(on_error="collect")
        outcomes = parallel_map_outcomes(fail_on_three, [1, 3, 4], config=config)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 1
        assert isinstance(outcomes[1].error, ValueError)
        # parallel_map drops the failed slot
        assert parallel_map(fail_on_three, [1, 3, 4], config=config) == [1, 4]

    def test_lambda_allowed_serially(self):
        # serial path never pickles, so lambdas are fine with jobs=1
        assert parallel_map(lambda x: x + 1, [1, 2]) == [2, 3]


class TestParallelPath:
    def test_order_preserved(self):
        items = list(range(40))
        assert parallel_map(square, items, jobs=3) == [x * x for x in items]

    def test_uses_multiple_processes(self):
        pids = set(parallel_map(pid_of, range(16), jobs=2))
        # with two workers over 16 tasks we should see >1 worker pid,
        # and never the parent's
        assert os.getpid() not in pids
        assert len(pids) >= 1

    def test_chunked(self):
        config = ParallelConfig(jobs=2, chunk_size=5)
        items = list(range(23))
        assert parallel_map(square, items, config=config) == [x * x for x in items]

    def test_error_raises(self):
        with pytest.raises(ExperimentError):
            parallel_map(fail_on_three, [1, 2, 3, 4], jobs=2)

    def test_error_collect(self):
        config = ParallelConfig(jobs=2, on_error="collect")
        outcomes = parallel_map_outcomes(
            fail_on_three, [1, 3, 4, 5], config=config
        )
        oks = [o.ok for o in outcomes]
        assert oks == [True, False, True, True]

    def test_error_collect_chunk_marks_whole_chunk(self):
        # with chunk_size > 1 the failing chunk is marked failed wholesale
        config = ParallelConfig(jobs=2, chunk_size=2, on_error="collect")
        outcomes = parallel_map_outcomes(
            fail_on_three, [1, 3, 4, 5], config=config
        )
        assert [o.ok for o in outcomes] == [False, False, True, True]

    def test_backpressure_bound_respected(self):
        config = ParallelConfig(jobs=2, max_pending=2)
        items = list(range(30))
        assert parallel_map(square, items, config=config) == [x * x for x in items]

    def test_matches_serial(self):
        items = list(range(25))
        assert parallel_map(square, items, jobs=2) == parallel_map(square, items)


class TestStarmap:
    def test_serial(self):
        assert parallel_starmap(add, [(1, 2), (3, 4)]) == [3, 7]

    def test_parallel(self):
        pairs = [(i, i + 1) for i in range(12)]
        assert parallel_starmap(add, pairs, jobs=2) == [a + b for a, b in pairs]


def flaky_until_marker(item) -> int:
    """Fail until a marker file exists (created on the first attempt).

    File-backed state survives process boundaries, so the pooled retry
    path genuinely re-dispatches and succeeds on the second attempt.
    """
    marker, value = item
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value
    os.close(fd)
    raise ValueError(f"first attempt on {value} always fails")


class TestCollectOutcomes:
    """on_error='collect' contracts: ordering, payloads, streaming."""

    def test_outcomes_come_back_in_submission_order(self):
        config = ParallelConfig(jobs=2, on_error="collect")
        items = list(range(20, 0, -1))
        outcomes = parallel_map_outcomes(fail_on_three, items, config=config)
        assert [o.index for o in outcomes] == list(range(len(items)))
        assert [o.value for o in outcomes if o.ok] == [
            x for x in items if x != 3
        ]

    def test_error_payload_carries_the_original_exception(self):
        config = ParallelConfig(jobs=2, on_error="collect")
        outcomes = parallel_map_outcomes(
            fail_on_three, [3, 1, 2], config=config
        )
        failed = outcomes[0]
        assert not failed.ok
        assert failed.index == 0
        assert failed.value is None
        assert isinstance(failed.error, ValueError)
        assert "three is right out" in str(failed.error)
        assert failed.attempts == 1

    def test_serial_and_pooled_collect_agree(self):
        items = [1, 3, 4, 3, 5]
        serial = parallel_map_outcomes(
            fail_on_three, items, config=ParallelConfig(on_error="collect")
        )
        pooled = parallel_map_outcomes(
            fail_on_three,
            items,
            config=ParallelConfig(jobs=2, on_error="collect"),
        )
        assert [(o.index, o.ok, o.value) for o in serial] == [
            (o.index, o.ok, o.value) for o in pooled
        ]

    def test_on_outcome_streams_each_terminal_outcome_once(self):
        streamed = []
        config = ParallelConfig(jobs=2, on_error="collect")
        outcomes = parallel_map_outcomes(
            fail_on_three,
            [1, 3, 4, 5],
            config=config,
            on_outcome=streamed.append,
        )
        # Streaming happens in completion order; same terminal outcomes.
        assert sorted(o.index for o in streamed) == [0, 1, 2, 3]
        assert {(o.index, o.ok) for o in streamed} == {
            (o.index, o.ok) for o in outcomes
        }

    def test_on_outcome_serial_is_submission_ordered(self):
        streamed = []
        parallel_map_outcomes(
            fail_on_three,
            [1, 3, 4],
            config=ParallelConfig(on_error="collect"),
            on_outcome=streamed.append,
        )
        assert [o.index for o in streamed] == [0, 1, 2]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retries_recover_and_count_attempts(self, jobs, tmp_path):
        items = [(str(tmp_path / f"marker-{i}"), i) for i in range(4)]
        config = ParallelConfig(
            jobs=jobs, on_error="collect", retries=1, backoff=0.0
        )
        outcomes = parallel_map_outcomes(
            flaky_until_marker, items, config=config
        )
        assert [o.ok for o in outcomes] == [True] * 4
        assert [o.value for o in outcomes] == [0, 1, 2, 3]
        assert [o.attempts for o in outcomes] == [2, 2, 2, 2]

    def test_retries_exhausted_keeps_the_last_error(self):
        config = ParallelConfig(on_error="collect", retries=2, backoff=0.0)
        outcomes = parallel_map_outcomes(fail_on_three, [3], config=config)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3  # first try + two retries


class TestConfigValidation:
    def test_bad_chunk_size(self):
        with pytest.raises(ExperimentError):
            ParallelConfig(chunk_size=0)

    def test_bad_error_policy(self):
        with pytest.raises(ExperimentError):
            ParallelConfig(on_error="explode")  # type: ignore[arg-type]

    def test_bad_max_pending(self):
        with pytest.raises(ExperimentError):
            ParallelConfig(jobs=2, max_pending=0).resolved_pending()

    def test_conflicting_jobs(self):
        with pytest.raises(ExperimentError):
            parallel_map(square, [1], config=ParallelConfig(jobs=2), jobs=3)

    def test_auto_jobs(self):
        assert ParallelConfig(jobs=0).resolved_jobs() >= 1
        assert ParallelConfig(jobs=-1).resolved_jobs() >= 1

    def test_default_pending(self):
        assert ParallelConfig(jobs=3).resolved_pending() == 12
