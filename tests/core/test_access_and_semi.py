"""Tests for the splay-tree access operation (Theorem 12) and the
partially-reactive serve_semi variant."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.splaynet import KArySplayNet
from repro.workloads.synthetic import (
    bit_reversal_trace,
    stride_trace,
    uniform_trace,
    zipf_trace,
)
from repro.errors import WorkloadError


class TestAccess:
    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_accessed_node_becomes_root(self, k, rng):
        net = KArySplayNet(50, k)
        for _ in range(60):
            x = int(rng.integers(1, 51))
            net.access(x)
            assert net.tree.root_id == x
        net.validate()

    def test_access_cost_is_depth(self):
        net = KArySplayNet(63, 2)
        x = next(n.nid for n in net.tree.iter_nodes() if n.is_leaf)
        depth = net.tree.depth(x)
        assert net.access(x).routing_cost == depth

    def test_repeated_access_is_free(self):
        net = KArySplayNet(63, 2)
        net.access(17)
        assert net.access(17).routing_cost == 0

    def test_static_optimality_bound_theorem12(self):
        """Total access cost obeys O(m + Σ n_x log(m / n_x))."""
        n, m = 128, 6000
        trace = zipf_trace(n, m, 1.3, seed=4)
        accesses = trace.targets  # skewed access sequence
        net = KArySplayNet(n, 3)
        total = sum(net.access(int(x)).routing_cost for x in accesses)
        _, counts = np.unique(accesses, return_counts=True)
        bound = m + float((counts * np.log2(m / counts)).sum())
        assert total <= 3.0 * bound
        net.validate()


class TestServeSemi:
    @pytest.mark.parametrize("n,k", [(20, 2), (50, 3), (64, 8)])
    def test_invariants_preserved(self, n, k, rng):
        net = KArySplayNet(n, k)
        for _ in range(150):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            if u != v:
                net.serve_semi(u, v)
        net.validate()

    def test_at_most_two_transformations(self, rng):
        net = KArySplayNet(60, 3)
        for _ in range(80):
            u = int(rng.integers(1, 61))
            v = int(rng.integers(1, 61))
            if u == v:
                continue
            res = net.serve_semi(u, v)
            assert res.rotations <= 2

    def test_cheaper_reconfiguration_than_full_serve(self):
        trace = uniform_trace(100, 3000, seed=5)
        full = KArySplayNet(100, 3)
        semi = KArySplayNet(100, 3)
        full_rot = sum(full.serve(u, v).rotations for u, v in trace.pairs())
        semi_rot = sum(semi.serve_semi(u, v).rotations for u, v in trace.pairs())
        assert semi_rot < 0.8 * full_rot

    def test_still_adapts_to_locality(self):
        """Repeated pairs drift together even with one step per request."""
        net = KArySplayNet(64, 2)
        start = net.distance(1, 64)
        for _ in range(30):
            net.serve_semi(1, 64)
        assert net.distance(1, 64) < start

    def test_self_request_free(self):
        assert KArySplayNet(10, 2).serve_semi(3, 3).routing_cost == 0


class TestAdversarialTraces:
    def test_bit_reversal_shape(self):
        tr = bit_reversal_trace(4, 100)
        assert tr.n == 16
        assert all(u == 1 or True for u, _ in tr.pairs())
        # every request originates at node 1
        assert set(tr.sources.tolist()) == {1}

    def test_bit_reversal_covers_all_nodes(self):
        tr = bit_reversal_trace(3, 8)
        assert set(tr.targets.tolist()) | {1} >= set(range(2, 9))

    def test_bit_reversal_is_hard_for_splaying(self):
        """Bit-reversal accesses cost Θ(log n) amortized — no better."""
        bits, m = 7, 4000
        n = 1 << bits
        tr = bit_reversal_trace(bits, m)
        net = KArySplayNet(n, 2)
        total = sum(net.access(int(v)).routing_cost for v in tr.targets)
        assert total >= 0.5 * m * math.log2(n) - 2 * n

    def test_bit_reversal_validation(self):
        with pytest.raises(WorkloadError):
            bit_reversal_trace(0, 10)
        with pytest.raises(WorkloadError):
            bit_reversal_trace(21, 10)

    def test_stride_trace(self):
        tr = stride_trace(10, 20, 3)
        pairs = list(tr.pairs())
        assert pairs[0] == (1, 4)
        assert pairs[9] == (10, 3)  # wraps around the ring

    def test_stride_validation(self):
        with pytest.raises(WorkloadError):
            stride_trace(10, 5, 0)
        with pytest.raises(WorkloadError):
            stride_trace(10, 5, 10)

    def test_stride_one_equals_ring(self):
        tr = stride_trace(6, 6, 1)
        assert list(tr.pairs()) == [
            (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1),
        ]
