"""Tests for the splay driver (splay_until)."""

from __future__ import annotations

import pytest

from repro.core.builders import build_complete_tree, build_path_tree, build_random_tree
from repro.core.splay import splay_until


class TestSplayToRoot:
    @pytest.mark.parametrize("n,k", [(15, 2), (40, 3), (63, 4)])
    def test_node_becomes_root(self, n, k):
        tree = build_random_tree(n, k, seed=n)
        node = tree.node(n // 2)
        rotations, links = splay_until(tree, node, None)
        tree.validate()
        assert tree.root is node
        assert rotations >= 0 and links >= 0

    def test_already_root_is_noop(self):
        tree = build_complete_tree(15, 2)
        rotations, links = splay_until(tree, tree.root, None)
        assert rotations == 0 and links == 0

    def test_rotation_count_about_half_depth(self):
        tree = build_path_tree(32, 2)
        deepest = tree.node(32) if tree.depth(32) == 31 else tree.node(1)
        depth = tree.depth(deepest.nid)
        rotations, _ = splay_until(tree, deepest, None)
        tree.validate()
        # k-splay moves two levels per rotation, semi-splay one at the end
        assert rotations == (depth + 1) // 2


class TestSplayWithStop:
    def test_stops_below_stop_node(self):
        tree = build_complete_tree(40, 3)
        # choose a depth-3 node and splay it below the root's child
        node = next(n for n in tree.iter_nodes() if tree.depth(n.nid) == 3)
        stop = tree.root
        splay_until(tree, node, stop)
        tree.validate()
        assert node.parent is stop
        assert tree.root is stop

    def test_outside_subtree_untouched(self):
        tree = build_complete_tree(40, 3)
        stop = tree.root
        target_child = next(stop.child_iter())
        outside = {
            nid
            for nid in range(1, 41)
            if not (target_child.smin <= nid <= target_child.smax)
        }
        edges_before = {
            (a, b) for a, b in tree.iter_edges() if a in outside and b in outside
        }
        deep = next(
            n
            for n in target_child.iter_subtree()
            if tree.depth(n.nid) >= 3
        )
        splay_until(tree, deep, stop)
        tree.validate()
        edges_after = {
            (a, b) for a, b in tree.iter_edges() if a in outside and b in outside
        }
        assert edges_before == edges_after
