"""Tests for the centroid static construction (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.analysis.distance import total_distance_via_potentials
from repro.core.builders import build_complete_tree
from repro.core.centroid import (
    build_centroid_tree,
    centroid_shape,
    centroid_subtree_sizes,
)
from repro.errors import InvalidTreeError
from repro.optimal.uniform import optimal_uniform_cost


class TestSubtreeSizes:
    @pytest.mark.parametrize("k", [2, 3, 5, 10])
    @pytest.mark.parametrize("n", [1, 2, 5, 10, 50, 123, 400])
    def test_sizes_partition_n_minus_one(self, n, k):
        sizes = centroid_subtree_sizes(n, k)
        assert len(sizes) == k + 1
        assert sum(sizes) == n - 1
        assert all(s >= 0 for s in sizes)

    def test_sizes_differ_by_at_most_one_last_level(self):
        """Interior levels are identical; only last-level leaves differ."""
        for n, k in ((400, 3), (1000, 2), (77, 5)):
            sizes = centroid_subtree_sizes(n, k)
            depth = 0
            remaining = n - 1
            while remaining >= (k + 1) * k**depth:
                remaining -= (k + 1) * k**depth
                depth += 1
            assert max(sizes) - min(sizes) <= k**depth

    def test_left_packing(self):
        """Leftover leaves fill subtrees left to right."""
        sizes = centroid_subtree_sizes(100, 3)
        deltas = [sizes[i] - sizes[i + 1] for i in range(len(sizes) - 1)]
        assert all(d >= 0 for d in deltas)

    def test_invalid_n(self):
        with pytest.raises(InvalidTreeError):
            centroid_subtree_sizes(0, 3)


class TestShape:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 200])
    def test_rooted_at_leaf(self, n, k):
        shape = centroid_shape(n, k)
        assert shape.compute_sizes() == n
        if n >= 2:
            assert len(shape.children) == 1  # a leaf of the unrooted tree
        stack = [shape]
        while stack:
            node = stack.pop()
            assert len(node.children) <= k
            stack.extend(node.children)

    def test_degree_bound_is_k_plus_one_unrooted(self):
        """Every node of the unrooted tree has degree <= k+1."""
        shape = centroid_shape(150, 3)
        stack = [(shape, None)]
        while stack:
            node, parent = stack.pop()
            degree = len(node.children) + (0 if parent is None else 1)
            assert degree <= 4
            for child in node.children:
                stack.append((child, node))


class TestCentroidTree:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 10])
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 20, 57, 100])
    def test_valid_search_tree(self, n, k):
        build_centroid_tree(n, k).validate()

    @pytest.mark.parametrize("k", [2, 3, 5, 10])
    @pytest.mark.parametrize("n", [5, 12, 33, 100, 250])
    def test_remark10_optimality(self, n, k):
        """Remark 10: the centroid tree is optimal for uniform traffic."""
        tree = build_centroid_tree(n, k)
        measured = total_distance_via_potentials(tree) // 2
        assert measured == optimal_uniform_cost(n, k)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_beats_or_matches_full_tree(self, k):
        """Lemma 9 + Remark 10: centroid <= full tree on uniform traffic."""
        for n in (20, 100, 333):
            centroid = total_distance_via_potentials(build_centroid_tree(n, k))
            full = total_distance_via_potentials(build_complete_tree(n, k))
            assert centroid <= full

    def test_own_index_policies_preserve_distance(self):
        """Labelling freedom: total distance is labelling-invariant."""
        costs = {
            policy: total_distance_via_potentials(
                build_centroid_tree(64, 3, own_index=policy)
            )
            for policy in ("first", "middle", "last")
        }
        assert len(set(costs.values())) == 1
