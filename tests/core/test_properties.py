"""Property-based tests (hypothesis) for the core invariants.

These are the "no input breaks it" guarantees: arbitrary request sequences
keep every k-ary search tree network structurally sound, identifiers
immortal, and the routing-element pool conserved.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builders import build_random_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.core.tree import KAryTreeNetwork
from repro.optimal.uniform import optimal_uniform_cost
from repro.workloads.synthetic import temporal_trace
from repro.workloads.trace import Trace

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def routing_multiset(tree: KAryTreeNetwork) -> Counter:
    counter: Counter = Counter()
    for node in tree.iter_nodes():
        counter.update(node.routing)
    return counter


@st.composite
def network_and_requests(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    k = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n),
                st.integers(min_value=1, max_value=n),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return n, k, seed, pairs


class TestKArySplayNetProperties:
    @given(network_and_requests())
    @settings(**SETTINGS)
    def test_arbitrary_request_sequences_preserve_invariants(self, case):
        n, k, seed, pairs = case
        net = KArySplayNet(n, k, initial="random", seed=seed)
        ids = set(range(1, n + 1))
        pool = routing_multiset(net.tree)
        for u, v in pairs:
            result = net.serve(u, v)
            assert result.routing_cost >= 0
            if u != v:
                assert net.distance(u, v) == 1
        net.validate()
        assert {x.nid for x in net.tree.iter_nodes()} == ids
        assert routing_multiset(net.tree) == pool

    @given(network_and_requests())
    @settings(**SETTINGS)
    def test_routing_cost_equals_distance_before_serving(self, case):
        n, k, seed, pairs = case
        net = KArySplayNet(n, k, initial="random", seed=seed)
        for u, v in pairs:
            expected = net.distance(u, v)
            assert net.serve(u, v).routing_cost == expected

    @given(network_and_requests())
    @settings(**SETTINGS)
    def test_local_routing_always_delivers_under_adjustment(self, case):
        """Greedy routing with backtracking reaches every target.

        Exactness cannot be promised after rotations (ancestor identifiers
        can intrude into subtree range gaps — see ``local_route``'s
        docstring); delivery with a bounded detour can.
        """
        n, k, seed, pairs = case
        net = KArySplayNet(n, k, initial="random", seed=seed)
        for u, v in pairs:
            net.serve(u, v)
            hops = net.tree.local_route(u, v)
            assert hops[0] == u and hops[-1] == v
            assert len(hops) <= 2 * n + 1
            assert len(hops) >= net.distance(u, v) + 1


class TestCentroidSplayNetProperties:
    @given(network_and_requests())
    @settings(**SETTINGS)
    def test_arbitrary_sequences_keep_structure(self, case):
        n, k, seed, pairs = case
        if n < 2:
            return
        net = CentroidSplayNet(n, k)
        for u, v in pairs:
            net.serve(u, v)
        net.validate()
        assert net.distance(net.c1, net.c2) == 1


class TestTraceProperties:
    @given(
        n=st.integers(min_value=2, max_value=50),
        m=st.integers(min_value=1, max_value=500),
        p=st.floats(min_value=0.0, max_value=0.95),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**SETTINGS)
    def test_temporal_process_structure(self, n, m, p, seed):
        """Every request is either a literal repeat or independent of it."""
        trace = temporal_trace(n, m, p, seed)
        assert trace.m == m
        # repeats never chain across a fresh draw boundary incorrectly:
        # the trace equals the forward-fill of its own fresh positions.
        pairs = np.stack([trace.sources, trace.targets], axis=1)
        fresh = np.ones(m, dtype=bool)
        fresh[1:] = (pairs[1:] != pairs[:-1]).any(axis=1)
        rebuilt = pairs[np.maximum.accumulate(np.where(fresh, np.arange(m), 0))]
        assert np.array_equal(rebuilt, pairs)

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**SETTINGS)
    def test_shuffle_preserves_demand(self, n, seed):
        trace = temporal_trace(n, 200, 0.5, seed)
        shuffled = trace.shuffled(seed=seed)
        assert Counter(trace.pairs()) == Counter(shuffled.pairs())


class TestDistanceProperties:
    @given(
        n=st.integers(min_value=2, max_value=60),
        k=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**SETTINGS)
    def test_tree_metric_axioms(self, n, k, seed):
        from repro.analysis.distance import TreeDistanceOracle

        tree = build_random_tree(n, k, seed=seed)
        oracle = TreeDistanceOracle.from_tree(tree)
        rng = np.random.default_rng(seed)
        us = rng.integers(1, n + 1, 30)
        vs = rng.integers(1, n + 1, 30)
        ws = rng.integers(1, n + 1, 30)
        duv = oracle.distances(us, vs)
        dvu = oracle.distances(vs, us)
        duw = oracle.distances(us, ws)
        dwv = oracle.distances(ws, vs)
        assert np.array_equal(duv, dvu)
        assert np.all(duv <= duw + dwv)  # triangle inequality
        assert np.all(oracle.distances(us, us) == 0)


class TestOptimalityProperties:
    @given(
        n=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_uniform_optimum_monotone_in_k(self, n, k):
        assert optimal_uniform_cost(n, k + 1) <= optimal_uniform_cost(n, k)
