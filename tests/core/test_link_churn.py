"""Link-churn accounting: the Section 2 reconfiguration-cost measure.

The paper charges reconfiguration as "the number of links added or
removed".  Two levels of accounting must agree with physical reality:

* per rotation, the reported ``links_changed`` equals the exact symmetric
  difference of the edge sets before/after (verified exhaustively by a
  property test);
* per serve (a *sequence* of rotations), the reported sum can exceed the
  net edge diff — an edge torn down by one rotation and re-created by a
  later one is two physical rewirings — but never undercounts it, and
  parity is preserved (every rewiring changes the edge set by whole links).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import build_random_tree
from repro.core.rotations import k_semi_splay, k_splay
from repro.core.splaynet import KArySplayNet


@given(
    trial=st.integers(min_value=0, max_value=10_000),
    k=st.sampled_from([2, 3, 4, 6]),
    n=st.integers(min_value=5, max_value=40),
    use_splay=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_property_single_rotation_accounting_exact(trial, k, n, use_splay):
    tree = build_random_tree(n, k, seed=trial)
    rng = random.Random(trial)
    candidates = [nd for nd in tree.root.iter_subtree() if nd.parent is not None]
    if not candidates:
        return
    node = rng.choice(candidates)
    before = tree.edge_set()
    if use_splay and node.parent.parent is not None:
        outcome = k_splay(node)
    else:
        outcome = k_semi_splay(node)
    if outcome.new_top.parent is None:
        tree.replace_root(outcome.new_top)
    tree.refresh_ranges()
    after = tree.edge_set()
    assert outcome.links_changed == len(before ^ after)


class TestServeLevelAccounting:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_reported_never_undercounts_net_diff(self, k):
        rng = random.Random(k)
        net = KArySplayNet(40, k)
        for _ in range(150):
            u, v = rng.randint(1, 40), rng.randint(1, 40)
            if u == v:
                continue
            before = net.tree.edge_set()
            result = net.serve(u, v)
            after = net.tree.edge_set()
            net_diff = len(before ^ after)
            assert result.links_changed >= net_diff
            # both sides count whole added+removed links → same parity
            assert (result.links_changed - net_diff) % 2 == 0

    def test_no_rotation_means_no_churn(self):
        net = KArySplayNet(16, 2)
        net.serve(3, 14)
        result = net.serve(3, 14)  # now adjacent: nothing to do
        assert result.rotations == 0
        assert result.links_changed == 0

    def test_edge_count_is_invariant(self):
        # every topology in the family is a tree: exactly n-1 links
        rng = random.Random(9)
        net = KArySplayNet(30, 4)
        for _ in range(100):
            u, v = rng.randint(1, 30), rng.randint(1, 30)
            if u != v:
                net.serve(u, v)
            assert len(net.tree.edge_set()) == 29
