"""Unit tests for KAryTreeNetwork: queries, validation, export."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.builders import (
    build_balanced_tree,
    build_complete_tree,
    build_path_tree,
    build_random_tree,
)
from repro.core.node import KAryNode
from repro.core.tree import KAryTreeNetwork
from repro.errors import InvalidTreeError

GRID = [(1, 2), (2, 2), (5, 2), (17, 3), (40, 4), (64, 8), (100, 2)]


@pytest.fixture(params=GRID, ids=lambda p: f"n{p[0]}k{p[1]}")
def tree(request):
    n, k = request.param
    return build_random_tree(n, k, seed=n * 31 + k)


class TestConstruction:
    def test_builders_produce_valid_trees(self, tree):
        tree.validate()

    def test_duplicate_identifier_rejected(self):
        root = KAryNode(1, 2)
        root.routing = [1.25]
        dup = KAryNode(1, 2)
        dup.routing = [1.125]
        root.children[1] = dup
        dup.parent = root
        dup.pslot = 1
        with pytest.raises(InvalidTreeError, match="duplicate"):
            KAryTreeNetwork(2, root, validate=False)

    def test_non_contiguous_identifiers_rejected(self):
        root = KAryNode(5, 2)
        root.routing = [5.25]
        with pytest.raises(InvalidTreeError, match="contiguous"):
            KAryTreeNetwork(2, root, validate=False)

    def test_missing_node_lookup_raises(self):
        t = build_complete_tree(5, 2)
        with pytest.raises(InvalidTreeError):
            t.node(6)

    def test_contains_and_len(self):
        t = build_complete_tree(9, 3)
        assert len(t) == 9 and 9 in t and 10 not in t


class TestQueries:
    def test_distance_matches_networkx(self, tree, rng):
        g = tree.to_networkx()
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for _ in range(30):
            u = int(rng.integers(1, tree.n + 1))
            v = int(rng.integers(1, tree.n + 1))
            assert tree.distance(u, v) == lengths[u][v]

    def test_path_endpoints_and_length(self, tree, rng):
        for _ in range(20):
            u = int(rng.integers(1, tree.n + 1))
            v = int(rng.integers(1, tree.n + 1))
            path = tree.path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(path) == tree.distance(u, v) + 1

    def test_local_route_equals_tree_path(self, tree, rng):
        for _ in range(30):
            u = int(rng.integers(1, tree.n + 1))
            v = int(rng.integers(1, tree.n + 1))
            assert tree.local_route(u, v) == tree.path(u, v)

    def test_lca_of_node_with_itself(self, tree):
        node, du, dv = tree.lca(1, 1)
        assert node.nid == 1 and du == 0 and dv == 0

    def test_depth_of_root_is_zero(self, tree):
        assert tree.depth(tree.root_id) == 0

    def test_depths_agree_with_depth(self, tree):
        depths = tree.depths()
        for nid in (1, tree.n, (tree.n + 1) // 2):
            assert depths[nid] == tree.depth(nid)

    def test_parents_inverse_of_children(self, tree):
        parents = tree.parents()
        assert len(parents) == tree.n - 1
        for child, parent in parents.items():
            node = tree.node(child)
            assert node.parent is tree.node(parent)

    def test_height_is_max_depth(self, tree):
        assert tree.height() == max(tree.depths().values())

    def test_edge_set_size(self, tree):
        assert len(tree.edge_set()) == tree.n - 1


class TestWindow:
    def test_window_contains_identifier_and_routing(self, tree):
        for node in tree.iter_nodes():
            window = tree.window_of(node.nid)
            assert node.nid in window
            for value in node.routing:
                assert value in window


class TestValidationCatchesCorruption:
    def test_unsorted_routing_detected(self):
        t = build_complete_tree(7, 3)
        t.root.routing = list(reversed(t.root.routing))
        with pytest.raises(InvalidTreeError):
            t.validate()

    def test_stale_range_detected(self):
        t = build_complete_tree(7, 2)
        t.root.smin = 3
        with pytest.raises(InvalidTreeError, match="range"):
            t.validate()

    def test_bad_parent_pointer_detected(self):
        t = build_complete_tree(7, 2)
        child = next(t.root.child_iter())
        child.pslot = 1 - child.pslot
        with pytest.raises(InvalidTreeError):
            t.validate()

    def test_identifier_valued_separator_detected(self):
        t = build_complete_tree(7, 2)
        t.root.routing = [float(t.root.nid)]
        with pytest.raises(InvalidTreeError):
            t.validate()

    def test_routing_based_flag_permits_identifier_separators(self):
        t = build_complete_tree(7, 2)
        t.routing_based = True
        t.root.routing = [float(t.root.nid)]
        t.validate()  # the optimal static trees rely on this


class TestExport:
    def test_to_networkx_shape(self, tree):
        g = tree.to_networkx()
        assert g.number_of_nodes() == tree.n
        assert g.number_of_edges() == tree.n - 1
        assert nx.is_connected(g) if tree.n > 1 else True

    def test_render_small(self):
        text = build_complete_tree(7, 2).render()
        assert text.count("\n") == 6  # one line per node

    def test_render_large_is_summarised(self):
        t = build_complete_tree(50, 2)
        assert "too large" in t.render(max_nodes=10)

    def test_clone_is_deep(self):
        t = build_complete_tree(15, 3)
        twin = t.clone()
        twin.validate()
        assert twin.edge_set() == t.edge_set()
        assert twin.node(1) is not t.node(1)

    def test_clone_independent_after_mutation(self):
        from repro.core.rotations import k_semi_splay

        t = build_complete_tree(15, 3)
        twin = t.clone()
        edges_before = t.edge_set()
        child = next(twin.root.child_iter())
        outcome = k_semi_splay(child)
        twin.replace_root(outcome.new_top)
        twin.validate()
        assert t.edge_set() == edges_before

    def test_replace_root_rejects_non_root(self):
        t = build_complete_tree(7, 2)
        child = next(t.root.child_iter())
        with pytest.raises(InvalidTreeError):
            t.replace_root(child)
