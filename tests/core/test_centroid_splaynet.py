"""Tests for CentroidSplayNet — the (k+1)-SplayNet of Section 4.2."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.centroid_splaynet import CentroidSplayNet, centroid_splaynet_layout
from repro.errors import InvalidTreeError
from repro.network.simulator import Simulator, simulate
from repro.workloads.synthetic import temporal_trace, uniform_trace


def global_graph(net: CentroidSplayNet) -> nx.Graph:
    """Assemble the whole topology: inner trees + centroid glue links."""
    g = nx.Graph()
    g.add_edge(net.c1, net.c2)
    for block, subnet in zip(net._blocks, net.subnets):
        offset = block.lo - 1
        for a, b in subnet.tree.iter_edges():
            g.add_edge(a + offset, b + offset)
        root = subnet.tree.root_id + offset
        g.add_edge(root, net.c1 if block.attach == 1 else net.c2)
    return g


class TestLayout:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("n", [2, 3, 5, 10, 100, 500])
    def test_blocks_partition_identifiers(self, n, k):
        c1, c2, blocks = centroid_splaynet_layout(n, k)
        covered = {c1, c2}
        for block in blocks:
            ids = set(range(block.lo, block.hi + 1))
            assert not ids & covered
            covered |= ids
        assert covered == set(range(1, n + 1))

    def test_shares_follow_the_paper(self):
        """c2's subtrees get ≈ (n-2)/(k+1) nodes each."""
        n, k = 902, 2
        _, _, blocks = centroid_splaynet_layout(n, k)
        big = [b for b in blocks if b.attach == 2]
        assert len(big) == k
        share = (n - 2) / (k + 1)
        for block in big:
            assert abs(block.size - share) <= 1

    def test_block_counts(self):
        _, _, blocks = centroid_splaynet_layout(1000, 4)
        assert len([b for b in blocks if b.attach == 1]) == 3  # k-1
        assert len([b for b in blocks if b.attach == 2]) == 4  # k

    def test_too_small_rejected(self):
        with pytest.raises(InvalidTreeError):
            centroid_splaynet_layout(1, 2)


class TestDistances:
    @pytest.mark.parametrize("n,k", [(20, 2), (50, 3), (100, 2)])
    def test_distance_matches_global_graph(self, n, k, rng):
        net = CentroidSplayNet(n, k)
        g = global_graph(net)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for _ in range(60):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            assert net.distance(u, v) == lengths[u][v], (u, v)

    def test_distance_still_correct_after_serving(self, rng):
        net = CentroidSplayNet(60, 2)
        for _ in range(100):
            u = int(rng.integers(1, 61))
            v = int(rng.integers(1, 61))
            if u != v:
                net.serve(u, v)
        g = global_graph(net)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for _ in range(60):
            u = int(rng.integers(1, 61))
            v = int(rng.integers(1, 61))
            assert net.distance(u, v) == lengths[u][v]

    def test_centroid_pair_distance(self):
        net = CentroidSplayNet(50, 2)
        assert net.distance(net.c1, net.c2) == 1


class TestServe:
    def test_same_subtree_request_delegates(self):
        net = CentroidSplayNet(100, 2)
        block = net._blocks[-1]
        u, v = block.lo, block.hi
        net.serve(u, v)
        assert net.distance(u, v) == 1  # adjacent inside the subtree

    def test_cross_subtree_endpoints_reach_roots(self):
        net = CentroidSplayNet(100, 2)
        lo_block, hi_block = net._blocks[0], net._blocks[-1]
        u, v = lo_block.lo, hi_block.hi
        net.serve(u, v)
        # after serving, u and v sit at their subtree roots: distance = 3
        # (u -> c1 -> c2 -> v) or 2 when both subtrees share a centroid
        assert net.distance(u, v) <= 3

    def test_centroids_never_move(self, rng):
        net = CentroidSplayNet(80, 3)
        for _ in range(200):
            u = int(rng.integers(1, 81))
            v = int(rng.integers(1, 81))
            if u != v:
                net.serve(u, v)
        assert net.distance(net.c1, net.c2) == 1
        net.validate()

    def test_requests_touching_centroids(self):
        net = CentroidSplayNet(50, 2)
        res = net.serve(net.c1, net.c2)
        assert res.routing_cost == 1
        other = net._blocks[0].lo
        res = net.serve(net.c1, other)
        assert res.routing_cost >= 1
        res = net.serve(other, net.c2)
        assert res.routing_cost >= 1

    def test_self_request_free(self):
        net = CentroidSplayNet(50, 2)
        assert net.serve(9, 9).routing_cost == 0

    def test_routing_cost_is_pre_adjustment_distance(self, rng):
        net = CentroidSplayNet(70, 2)
        for _ in range(80):
            u = int(rng.integers(1, 71))
            v = int(rng.integers(1, 71))
            if u == v:
                continue
            expected = net.distance(u, v)
            assert net.serve(u, v).routing_cost == expected

    @pytest.mark.parametrize("n,k", [(2, 2), (3, 2), (4, 3), (10, 5)])
    def test_tiny_networks(self, n, k, rng):
        net = CentroidSplayNet(n, k)
        for _ in range(50):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            if u != v:
                net.serve(u, v)
        net.validate()

    def test_validation_over_long_run(self):
        net = CentroidSplayNet(64, 2)
        Simulator(validate_every=100).run(net, uniform_trace(64, 500, seed=2))

    def test_locate_out_of_range(self):
        net = CentroidSplayNet(10, 2)
        with pytest.raises(InvalidTreeError):
            net.locate(11)


class TestBehaviour:
    def test_high_locality_favours_plain_splaynet(self):
        """The paper's Table 8 trend: fixed centroids hurt on locality."""
        from repro.core.splaynet import KArySplayNet

        n, m = 100, 6000
        hot = temporal_trace(n, m, 0.9, seed=4)
        c3 = simulate(CentroidSplayNet(n, 2), hot).total_routing
        sp = simulate(KArySplayNet(n, 2), hot).total_routing
        assert sp < c3
