"""Tests for the generalized d-node rotation (Section 4.1's closing remark)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.builders import build_complete_tree, build_path_tree, build_random_tree
from repro.core.multirotation import MAX_CHAIN, generalized_splay
from repro.core.rotations import k_semi_splay, k_splay
from repro.core.splaynet import KArySplayNet
from repro.errors import RotationError


def chain_upward(node, length):
    chain = [node]
    while len(chain) < length and chain[-1].parent is not None:
        chain.append(chain[-1].parent)
    chain.reverse()
    return chain


def routing_multiset(tree):
    counter = Counter()
    for node in tree.iter_nodes():
        counter.update(node.routing)
    return counter


class TestBasics:
    def test_promoted_node_ends_on_top(self):
        tree = build_path_tree(20, 3)
        deep = max(range(1, 21), key=tree.depth)
        node = tree.node(deep)
        chain = chain_upward(node, 4)
        out = generalized_splay(chain)
        if out.new_top.parent is None:
            tree.replace_root(out.new_top)
        tree.validate()
        assert out.new_top is node
        # the whole chain collapsed: node climbed len(chain)-1 levels
        assert tree.depth(deep) == 20 - 1 - (len(chain) - 1) - (len(chain) - 1) + (len(chain) - 1)

    def test_depth_decreases_by_chain_length_minus_one(self):
        tree = build_complete_tree(85, 4)
        node = next(n for n in tree.iter_nodes() if tree.depth(n.nid) == 3)
        chain = chain_upward(node, 4)
        before = tree.depth(node.nid)
        out = generalized_splay(chain)
        if out.new_top.parent is None:
            tree.replace_root(out.new_top)
        tree.validate()
        assert tree.depth(node.nid) == before - (len(chain) - 1)

    def test_short_chain_rejected(self):
        tree = build_complete_tree(7, 2)
        with pytest.raises(RotationError):
            generalized_splay([tree.root])

    def test_long_chain_rejected(self):
        tree = build_path_tree(MAX_CHAIN + 3, 2)
        deep = max(range(1, MAX_CHAIN + 4), key=tree.depth)
        chain = chain_upward(tree.node(deep), MAX_CHAIN + 1)
        with pytest.raises(RotationError, match="MAX_CHAIN"):
            generalized_splay(chain)

    def test_broken_chain_rejected(self):
        tree = build_complete_tree(13, 3)
        a = tree.root
        grandchild = next(next(a.child_iter()).child_iter())
        with pytest.raises(RotationError, match="chain break"):
            generalized_splay([a, grandchild])

    def test_bad_order_rejected(self):
        tree = build_complete_tree(13, 3)
        node = next(n for n in tree.iter_nodes() if tree.depth(n.nid) == 2)
        chain = chain_upward(node, 3)
        with pytest.raises(RotationError, match="order"):
            generalized_splay(chain, order=(2, 1, 0))  # promoted not last


class TestInvariants:
    @pytest.mark.parametrize("length", [2, 3, 4, 5])
    @pytest.mark.parametrize("n,k", [(30, 2), (50, 3), (60, 6)])
    def test_random_chains_preserve_everything(self, length, n, k, rng):
        tree = build_random_tree(n, k, seed=n * length + k)
        pool = routing_multiset(tree)
        ids = set(range(1, n + 1))
        for _ in range(25):
            nid = int(rng.integers(1, n + 1))
            chain = chain_upward(tree.node(nid), length)
            if len(chain) < 2:
                continue
            out = generalized_splay(chain)
            if out.new_top.parent is None:
                tree.replace_root(out.new_top)
            tree.validate()
        assert {x.nid for x in tree.iter_nodes()} == ids
        assert routing_multiset(tree) == pool

    def test_link_churn_matches_edge_diff(self, rng):
        tree = build_random_tree(40, 4, seed=77)
        for _ in range(25):
            nid = int(rng.integers(1, 41))
            chain = chain_upward(tree.node(nid), 4)
            if len(chain) < 2:
                continue
            before = tree.edge_set()
            out = generalized_splay(chain)
            if out.new_top.parent is None:
                tree.replace_root(out.new_top)
            after = tree.edge_set()
            assert out.links_changed == len(before ^ after)

    def test_failure_leaves_tree_untouched(self):
        """If the plan search failed it must not have mutated anything.

        We cannot force a failure organically (chains ≤ 3 always succeed),
        so exercise the guard path via an over-long chain.
        """
        tree = build_path_tree(10, 2)
        deep = max(range(1, 11), key=tree.depth)
        chain = chain_upward(tree.node(deep), 8)
        edges = tree.edge_set()
        with pytest.raises(RotationError):
            generalized_splay(chain)
        assert tree.edge_set() == edges
        tree.validate()


class TestDegenerateChainsMatchPairwiseRotations:
    def test_chain2_equals_semi_splay_effect(self):
        t1 = build_complete_tree(13, 3)
        t2 = t1.clone()
        child1 = next(t1.root.child_iter())
        child2 = t2.node(child1.nid)
        out1 = k_semi_splay(child1)
        out2 = generalized_splay(chain_upward(child2, 2))
        t1.replace_root(out1.new_top)
        t2.replace_root(out2.new_top)
        t1.validate()
        t2.validate()
        assert t1.root_id == t2.root_id

    def test_chain3_promotes_like_k_splay(self):
        t1 = build_complete_tree(40, 3)
        t2 = t1.clone()
        nid = next(n.nid for n in t1.iter_nodes() if t1.depth(n.nid) == 2)
        out1 = k_splay(t1.node(nid))
        out2 = generalized_splay(chain_upward(t2.node(nid), 3))
        t1.replace_root(out1.new_top)
        t2.replace_root(out2.new_top)
        t1.validate()
        t2.validate()
        assert t1.depth(nid) == t2.depth(nid) == 0


class TestDeepSplayNet:
    @pytest.mark.parametrize("depth", [3, 4])
    def test_serve_keeps_invariants(self, depth, rng):
        net = KArySplayNet(50, 3, splay_depth=depth)
        for _ in range(150):
            u = int(rng.integers(1, 51))
            v = int(rng.integers(1, 51))
            if u == v:
                continue
            net.serve(u, v)
            assert net.distance(u, v) == 1
        net.validate()

    def test_fewer_transformations_per_request(self):
        from repro.network.simulator import simulate
        from repro.workloads.synthetic import uniform_trace

        trace = uniform_trace(100, 2000, seed=5)
        shallow = simulate(KArySplayNet(100, 3, splay_depth=2), trace)
        deep = simulate(KArySplayNet(100, 3, splay_depth=4), trace)
        assert deep.total_rotations < shallow.total_rotations

    def test_invalid_depth_rejected(self):
        with pytest.raises(RotationError):
            KArySplayNet(10, 2, splay_depth=1)
