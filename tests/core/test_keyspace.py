"""Unit tests for the key-space primitives."""

from __future__ import annotations

import math

import pytest

from repro.core.keyspace import (
    MAX_K,
    NEG_INF,
    POS_INF,
    Interval,
    boundary_between,
    is_identifier_value,
    is_separator_value,
    pad_values,
)
from repro.errors import InvalidTreeError


class TestInterval:
    def test_contains_open_endpoints(self):
        iv = Interval(1.0, 2.0)
        assert 1.5 in iv
        assert 1.0 not in iv
        assert 2.0 not in iv

    def test_infinite_interval_contains_everything_finite(self):
        iv = Interval(NEG_INF, POS_INF)
        assert -1e300 in iv and 1e300 in iv and 0.0 in iv

    def test_empty_interval_raises(self):
        with pytest.raises(InvalidTreeError):
            Interval(2.0, 2.0)
        with pytest.raises(InvalidTreeError):
            Interval(3.0, 1.0)

    def test_contains_interval(self):
        outer = Interval(0.0, 10.0)
        assert outer.contains_interval(Interval(1.0, 9.0))
        assert outer.contains_interval(Interval(0.0, 10.0))
        assert not outer.contains_interval(Interval(-1.0, 5.0))
        assert not outer.contains_interval(Interval(5.0, 11.0))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_intersect_disjoint_raises(self):
        with pytest.raises(InvalidTreeError):
            Interval(0, 1).intersect(Interval(2, 3))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 1).overlaps(Interval(1, 2))


class TestBoundary:
    def test_boundary_is_gap_midpoint(self):
        assert boundary_between(4, 5) == 4.5
        assert boundary_between(-1, 0) == -0.5

    def test_non_adjacent_ids_raise(self):
        with pytest.raises(InvalidTreeError):
            boundary_between(4, 6)
        with pytest.raises(InvalidTreeError):
            boundary_between(5, 4)


class TestPads:
    def test_pads_live_in_private_zone(self):
        for nid in (1, 17, 1000):
            pads = list(pad_values(nid, 9))
            assert len(pads) == 9
            for value in pads:
                assert nid < value < nid + 0.5

    def test_pads_strictly_decreasing_and_distinct(self):
        pads = list(pad_values(3, 12))
        assert pads == sorted(pads, reverse=True)
        assert len(set(pads)) == len(pads)

    def test_first_pad_is_quarter(self):
        assert next(iter(pad_values(7, 1))) == 7.25

    def test_zero_pads(self):
        assert list(pad_values(1, 0)) == []

    def test_negative_count_raises(self):
        with pytest.raises(InvalidTreeError):
            list(pad_values(1, -1))

    def test_too_many_pads_raise(self):
        with pytest.raises(InvalidTreeError):
            list(pad_values(1, MAX_K))

    def test_pads_exact_in_float64(self):
        # Dyadic offsets must round-trip exactly at realistic scales.
        for nid in (1, 1023, 10_000):
            for value in pad_values(nid, 10):
                frac = value - nid
                assert math.log2(frac) == round(math.log2(frac))

    def test_precision_exhaustion_raises_cleanly(self):
        with pytest.raises(InvalidTreeError, match="precision"):
            list(pad_values(2**45, 20))


class TestValueClassification:
    def test_identifiers_are_integers(self):
        assert is_identifier_value(5.0)
        assert is_identifier_value(-3)
        assert not is_identifier_value(5.5)

    def test_separators(self):
        assert is_separator_value(4.5)
        assert is_separator_value(7.25)
        assert is_separator_value(7 + 2.0**-10)
        assert not is_separator_value(7.0)
        assert not is_separator_value(float("inf"))
        assert not is_separator_value(7.3)
