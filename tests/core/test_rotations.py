"""Tests for k-semi-splay and k-splay: the paper's core operations.

These are the most safety-critical tests in the repository: every rotation
must preserve the identifier set, the global multiset of routing elements,
the search property, and the subtree partition outside the rotated group.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.builders import build_complete_tree, build_random_tree
from repro.core.rotations import (
    BLOCK_POLICIES,
    k_semi_splay,
    k_splay,
    splay_step,
)
from repro.core.tree import KAryTreeNetwork
from repro.errors import RotationError

GRID = [(5, 2), (10, 2), (17, 3), (30, 4), (50, 5), (80, 10)]


def routing_multiset(tree: KAryTreeNetwork) -> Counter:
    counter: Counter = Counter()
    for node in tree.iter_nodes():
        counter.update(node.routing)
    return counter


def apply_and_fix_root(tree, fn, node):
    outcome = fn(node)
    if outcome.new_top.parent is None:
        tree.replace_root(outcome.new_top)
    return outcome


class TestSemiSplay:
    def test_child_becomes_parent(self):
        tree = build_complete_tree(13, 3)
        child = next(tree.root.child_iter())
        old_root = tree.root
        apply_and_fix_root(tree, k_semi_splay, child)
        tree.validate()
        assert tree.root is child
        assert old_root.parent is child

    def test_depth_decreases_by_one(self):
        tree = build_complete_tree(40, 3)
        # pick a depth-2 node
        node = next(
            n for n in tree.iter_nodes() if tree.depth(n.nid) == 2
        )
        apply_and_fix_root(tree, k_semi_splay, node)
        tree.validate()
        assert tree.depth(node.nid) == 1

    def test_on_root_raises(self):
        tree = build_complete_tree(7, 2)
        with pytest.raises(RotationError):
            k_semi_splay(tree.root)

    @pytest.mark.parametrize("n,k", GRID)
    def test_invariants_under_random_semi_splays(self, n, k, rng):
        tree = build_random_tree(n, k, seed=n + k)
        ids = set(range(1, n + 1))
        routing_before = routing_multiset(tree)
        for _ in range(60):
            nid = int(rng.integers(1, n + 1))
            node = tree.node(nid)
            if node.parent is None:
                continue
            apply_and_fix_root(tree, k_semi_splay, node)
            tree.validate()
        assert {x.nid for x in tree.iter_nodes()} == ids
        assert routing_multiset(tree) == routing_before


class TestKSplay:
    def test_node_rises_two_levels(self):
        tree = build_complete_tree(40, 3)
        node = next(n for n in tree.iter_nodes() if tree.depth(n.nid) == 3)
        apply_and_fix_root(tree, k_splay, node)
        tree.validate()
        assert tree.depth(node.nid) == 1

    def test_displaced_nodes_stay_close(self):
        tree = build_complete_tree(40, 3)
        node = next(n for n in tree.iter_nodes() if tree.depth(n.nid) == 2)
        parent = node.parent.nid
        grand = node.parent.parent.nid
        apply_and_fix_root(tree, k_splay, node)
        tree.validate()
        # x and y end up within distance 2 of z in both rotation cases
        assert tree.distance(node.nid, parent) <= 2
        assert tree.distance(node.nid, grand) <= 2

    def test_without_grandparent_raises(self):
        tree = build_complete_tree(7, 2)
        child = next(tree.root.child_iter())
        with pytest.raises(RotationError):
            k_splay(child)

    def test_on_root_raises(self):
        tree = build_complete_tree(7, 2)
        with pytest.raises(RotationError):
            k_splay(tree.root)

    @pytest.mark.parametrize("n,k", GRID)
    @pytest.mark.parametrize("policy", BLOCK_POLICIES)
    def test_invariants_under_random_k_splays(self, n, k, policy, rng):
        tree = build_random_tree(n, k, seed=n * 7 + k)
        routing_before = routing_multiset(tree)
        for _ in range(60):
            nid = int(rng.integers(1, n + 1))
            node = tree.node(nid)
            if node.parent is None or node.parent.parent is None:
                continue
            outcome = k_splay(node, policy=policy)
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)
            tree.validate()
        assert routing_multiset(tree) == routing_before

    def test_both_cases_are_exercised(self, rng):
        """The random walk must hit case 1 (distant) and case 2 (close)."""
        from repro.core import rotations

        hits = {"distant": 0, "close": 0}
        orig_distant = rotations._k_splay_distant
        orig_close = rotations._k_splay_close

        def spy_distant(*args, **kwargs):
            hits["distant"] += 1
            return orig_distant(*args, **kwargs)

        def spy_close(*args, **kwargs):
            hits["close"] += 1
            return orig_close(*args, **kwargs)

        rotations._k_splay_distant = spy_distant
        rotations._k_splay_close = spy_close
        try:
            for seed in range(5):
                tree = build_random_tree(40, 3, seed=seed)
                for _ in range(40):
                    nid = int(rng.integers(1, 41))
                    node = tree.node(nid)
                    if node.parent is None or node.parent.parent is None:
                        continue
                    outcome = k_splay(node)
                    if outcome.new_top.parent is None:
                        tree.replace_root(outcome.new_top)
                tree.validate()
        finally:
            rotations._k_splay_distant = orig_distant
            rotations._k_splay_close = orig_close
        assert hits["distant"] > 0 and hits["close"] > 0


class TestLinkChurn:
    @pytest.mark.parametrize("n,k", GRID)
    def test_analytic_links_equal_edge_diff_per_rotation(self, n, k, rng):
        """The O(k) analytic count must match exact edge-set diffing."""
        tree = build_random_tree(n, k, seed=n * 13 + k)
        for _ in range(40):
            nid = int(rng.integers(1, n + 1))
            node = tree.node(nid)
            if node.parent is None:
                continue
            before = tree.edge_set()
            if node.parent.parent is None:
                outcome = k_semi_splay(node)
            else:
                outcome = k_splay(node)
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)
            after = tree.edge_set()
            assert outcome.links_changed == len(before ^ after)

    def test_semi_splay_at_root_changes_no_external_links(self):
        tree = build_complete_tree(3, 2)
        child = next(tree.root.child_iter())
        outcome = apply_and_fix_root(tree, k_semi_splay, child)
        # x–y reverses (same link); possibly one subtree moves
        assert outcome.links_changed in (0, 2)


class TestSplayStep:
    def test_dispatches_semi_splay_at_last_level(self):
        tree = build_complete_tree(13, 3)
        child = next(tree.root.child_iter())
        outcome = splay_step(child, None)
        tree.replace_root(outcome.new_top)
        assert tree.root is child

    def test_dispatches_k_splay_deeper(self):
        tree = build_complete_tree(40, 3)
        node = next(n for n in tree.iter_nodes() if tree.depth(n.nid) == 3)
        splay_step(node, None)
        tree.validate()
        assert tree.depth(node.nid) == 1

    def test_at_stop_raises(self):
        tree = build_complete_tree(13, 3)
        child = next(tree.root.child_iter())
        with pytest.raises(RotationError):
            splay_step(child, tree.root)

    def test_unknown_policy_raises(self):
        tree = build_complete_tree(13, 3)
        child = next(tree.root.child_iter())
        with pytest.raises(RotationError, match="policy"):
            splay_step(child, None, policy="nope")


class TestOutsideWorldUntouched:
    def test_rotation_preserves_subtrees_outside_group(self, rng):
        """Hanging subtrees move as units: their internal edges never change."""
        tree = build_random_tree(60, 4, seed=42)
        for _ in range(30):
            nid = int(rng.integers(1, 61))
            node = tree.node(nid)
            if node.parent is None or node.parent.parent is None:
                continue
            group = {node.nid, node.parent.nid, node.parent.parent.nid}
            internal_before = {
                (a, b)
                for a, b in tree.iter_edges()
                if a not in group and b not in group
            }
            outcome = k_splay(node)
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)
            internal_after = {
                (a, b)
                for a, b in tree.iter_edges()
                if a not in group and b not in group
            }
            assert internal_before == internal_after
