"""Unit tests for the tree builders and partitioners."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.builders import (
    ShapeNode,
    balanced_partitioner,
    build_balanced_tree,
    build_complete_tree,
    build_from_partitioner,
    build_from_shape,
    build_path_tree,
    build_random_tree,
    complete_partitioner,
    complete_tree_capacity,
    path_partitioner,
)
from repro.errors import InvalidTreeError


class TestCapacity:
    def test_known_values(self):
        assert complete_tree_capacity(0, 2) == 0
        assert complete_tree_capacity(1, 2) == 1
        assert complete_tree_capacity(3, 2) == 7
        assert complete_tree_capacity(2, 5) == 6
        assert complete_tree_capacity(3, 3) == 13


class TestCompleteTree:
    @pytest.mark.parametrize("k", [2, 3, 5, 10])
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50, 121, 300])
    def test_height_is_information_theoretic_minimum(self, n, k):
        tree = build_complete_tree(n, k)
        tree.validate()
        levels = 1
        while complete_tree_capacity(levels, k) < n:
            levels += 1
        assert tree.height() == levels - 1

    def test_all_levels_full_except_last(self):
        tree = build_complete_tree(40, 3)
        counts: dict[int, int] = {}
        for nid, depth in tree.depths().items():
            counts[depth] = counts.get(depth, 0) + 1
        height = max(counts)
        for level in range(height):
            assert counts[level] == 3**level
        assert counts[height] == 40 - complete_tree_capacity(height, 3)

    def test_binary_complete_tree_is_classic_bst(self):
        tree = build_complete_tree(7, 2)
        assert tree.root_id == 4
        assert {c.nid for c in tree.root.child_iter()} == {2, 6}

    def test_own_index_parameter(self):
        first = build_complete_tree(13, 3, own_index=0)
        first.validate()
        last = build_complete_tree(13, 3, own_index=3)
        last.validate()
        assert first.root_id != last.root_id


class TestPathTree:
    @pytest.mark.parametrize("k", [2, 4])
    def test_path_has_maximal_height(self, k):
        tree = build_path_tree(20, k)
        assert tree.height() == 19


class TestBalancedTree:
    @pytest.mark.parametrize("n,k", [(50, 2), (50, 5), (200, 3)])
    def test_balanced_height_logarithmic(self, n, k):
        tree = build_balanced_tree(n, k)
        assert tree.height() <= 2 * math.ceil(math.log(n + 1, k)) + 2


class TestRandomTree:
    def test_deterministic_by_seed(self):
        a = build_random_tree(37, 3, seed=7)
        b = build_random_tree(37, 3, seed=7)
        assert a.edge_set() == b.edge_set()

    def test_different_seeds_differ(self):
        a = build_random_tree(37, 3, seed=7)
        b = build_random_tree(37, 3, seed=8)
        assert a.edge_set() != b.edge_set()

    def test_accepts_generator(self, rng):
        build_random_tree(12, 3, rng).validate()


class TestPartitionerContract:
    def test_too_many_blocks_rejected(self):
        def bad(size):
            if size == 1:
                return 0, ()
            return 0, tuple([1] * (size - 1))  # size-1 blocks > k for big size

        with pytest.raises(InvalidTreeError, match="blocks"):
            build_from_partitioner(10, 2, bad)

    def test_wrong_total_rejected(self):
        def bad(size):
            if size == 1:
                return 0, ()
            return 0, (size,)  # off by one

        with pytest.raises(InvalidTreeError, match="cover"):
            build_from_partitioner(5, 2, bad)

    def test_empty_block_rejected(self):
        def bad(size):
            if size == 1:
                return 0, ()
            return 0, (size - 1, 0) if size >= 2 else (size - 1,)

        with pytest.raises(InvalidTreeError):
            build_from_partitioner(5, 3, bad)

    def test_own_index_out_of_range_rejected(self):
        def bad(size):
            if size == 1:
                return 0, ()
            return 5, (size - 1,)

        with pytest.raises(InvalidTreeError, match="own_index"):
            build_from_partitioner(5, 3, bad)

    def test_invalid_n_and_k(self):
        with pytest.raises(InvalidTreeError):
            build_from_partitioner(0, 2, path_partitioner())
        with pytest.raises(InvalidTreeError):
            build_from_partitioner(5, 1, path_partitioner())


class TestShapes:
    def make_caterpillar(self, length: int) -> ShapeNode:
        root = ShapeNode()
        node = root
        for _ in range(length - 1):
            node = node.add(ShapeNode())
        return root

    def test_compute_sizes(self):
        shape = self.make_caterpillar(5)
        assert shape.compute_sizes() == 5
        assert shape.children[0].size == 4

    def test_build_from_shape_valid(self):
        root = ShapeNode()
        for _ in range(3):
            child = root.add(ShapeNode())
            child.add(ShapeNode())
        tree = build_from_shape(root, 3)
        tree.validate()
        assert tree.n == 7

    @pytest.mark.parametrize("policy", ["first", "middle", "last"])
    def test_own_index_policies(self, policy):
        root = ShapeNode()
        root.add(ShapeNode())
        root.add(ShapeNode())
        tree = build_from_shape(root, 2, own_index=policy)
        tree.validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidTreeError):
            build_from_shape(ShapeNode(), 2, own_index="weird")

    def test_too_many_children_rejected(self):
        root = ShapeNode()
        for _ in range(4):
            root.add(ShapeNode())
        with pytest.raises(InvalidTreeError):
            build_from_shape(root, 3)

    def test_shape_height(self):
        assert self.make_caterpillar(4).height() == 3


class TestCompletePartitioner:
    def test_matches_builder(self):
        part = complete_partitioner(3)
        t1 = build_from_partitioner(40, 3, part)
        t2 = build_complete_tree(40, 3)
        assert t1.edge_set() == t2.edge_set()

    def test_singleton(self):
        assert complete_partitioner(4)(1) == (0, ())
        assert balanced_partitioner(4)(1) == (0, ())
        assert path_partitioner()(1) == (0, ())
