"""Unit tests for KAryNode."""

from __future__ import annotations

import pytest

from repro.core.keyspace import NEG_INF, POS_INF
from repro.core.node import KAryNode
from repro.errors import InvalidTreeError


def make_node(nid: int, k: int, routing: list[float]) -> KAryNode:
    node = KAryNode(nid, k)
    node.routing = routing
    return node


class TestConstruction:
    def test_basic_fields(self):
        node = KAryNode(7, 4)
        assert node.nid == 7
        assert node.k == 4
        assert len(node.children) == 4
        assert node.parent is None and node.pslot == -1
        assert (node.smin, node.smax) == (7, 7)

    def test_arity_below_two_raises(self):
        with pytest.raises(InvalidTreeError):
            KAryNode(1, 1)

    def test_fresh_node_is_leaf_root(self):
        node = KAryNode(1, 3)
        assert node.is_leaf and node.is_root and node.degree == 0


class TestSlots:
    def test_slot_of_respects_routing(self):
        node = make_node(5, 4, [2.5, 5.5, 8.5])
        assert node.slot_of(1) == 0
        assert node.slot_of(3) == 1
        assert node.slot_of(7) == 2
        assert node.slot_of(9) == 3

    def test_slot_interval_sentinels(self):
        node = make_node(5, 3, [2.5, 7.5])
        assert node.slot_interval(0).lo == NEG_INF
        assert node.slot_interval(0).hi == 2.5
        assert node.slot_interval(1) .lo == 2.5
        assert node.slot_interval(2).hi == POS_INF

    def test_child_in_slot(self):
        parent = make_node(5, 3, [2.5, 7.5])
        child = make_node(1, 3, [1.25, 1.125])
        parent.attach_child(child, 0)
        assert parent.child_in_slot(2) is child
        assert parent.child_in_slot(6) is None


class TestWiring:
    def test_attach_sets_back_pointers(self):
        parent = make_node(5, 3, [2.5, 7.5])
        child = make_node(9, 3, [9.25, 9.125])
        parent.attach_child(child, 2)
        assert child.parent is parent and child.pslot == 2
        assert parent.degree == 1 and not parent.is_leaf

    def test_attach_occupied_slot_raises(self):
        parent = make_node(5, 3, [2.5, 7.5])
        parent.attach_child(make_node(1, 3, []), 0)
        with pytest.raises(InvalidTreeError):
            parent.attach_child(make_node(2, 3, []), 0)

    def test_detach_returns_and_clears(self):
        parent = make_node(5, 3, [2.5, 7.5])
        child = make_node(1, 3, [])
        parent.attach_child(child, 0)
        out = parent.detach_child(0)
        assert out is child and child.parent is None and child.pslot == -1
        assert parent.children[0] is None

    def test_detach_empty_slot_raises(self):
        with pytest.raises(InvalidTreeError):
            make_node(5, 3, [2.5, 7.5]).detach_child(1)


class TestRanges:
    def test_recompute_range_aggregates_children(self):
        parent = make_node(5, 3, [2.5, 7.5])
        low = make_node(1, 3, [])
        high = make_node(9, 3, [])
        low.smin = low.smax = 1
        high.smin, high.smax = 8, 9
        parent.attach_child(low, 0)
        parent.attach_child(high, 2)
        parent.recompute_range()
        assert (parent.smin, parent.smax) == (1, 9)

    def test_subtree_size_and_iteration(self):
        parent = make_node(5, 3, [2.5, 7.5])
        a, b = make_node(1, 3, []), make_node(9, 3, [])
        parent.attach_child(a, 0)
        parent.attach_child(b, 2)
        assert parent.subtree_size() == 3
        ids = [node.nid for node in parent.iter_subtree()]
        assert ids[0] == 5 and set(ids) == {1, 5, 9}
