"""Tests for KArySplayNet — the paper's Section 4.1 online network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.entropy import entropy_bound
from repro.core.builders import build_balanced_tree, build_complete_tree
from repro.core.flat import tree_signature
from repro.core.splaynet import KArySplayNet
from repro.errors import InvalidTreeError, RotationError
from repro.network.simulator import Simulator, simulate
from repro.workloads.synthetic import sequential_trace, uniform_trace, zipf_trace

GRID = [(2, 2), (3, 2), (10, 3), (31, 4), (64, 8)]


class TestConstruction:
    def test_initial_topologies(self):
        for initial in ("complete", "balanced", "random"):
            net = KArySplayNet(20, 3, initial=initial, seed=1)
            net.validate()
            assert net.n == 20 and net.k == 3

    def test_explicit_tree_adopted(self):
        tree = build_balanced_tree(20, 3)
        # Identity (not just topology equality) is an object-engine
        # property: the array-backed engines snapshot the tree instead.
        net = KArySplayNet(initial=tree, engine="object")
        assert net.tree is tree
        for engine in ("flat", "native"):
            adopted = KArySplayNet(initial=tree, engine=engine)
            assert tree_signature(adopted.tree) == tree_signature(tree)

    def test_n_conflict_rejected(self):
        tree = build_balanced_tree(20, 3)
        with pytest.raises(InvalidTreeError):
            KArySplayNet(21, 3, initial=tree)

    def test_routing_based_tree_rejected(self):
        tree = build_balanced_tree(10, 2)
        tree.routing_based = True
        with pytest.raises(InvalidTreeError, match="routing-based"):
            KArySplayNet(initial=tree)

    def test_unknown_initial_rejected(self):
        with pytest.raises(InvalidTreeError):
            KArySplayNet(10, 2, initial="fancy")

    def test_missing_n_rejected(self):
        with pytest.raises(InvalidTreeError):
            KArySplayNet(k=3)

    def test_bad_policy_rejected(self):
        with pytest.raises(RotationError):
            KArySplayNet(10, 2, policy="nope")


class TestServeSemantics:
    @pytest.mark.parametrize("n,k", GRID)
    def test_endpoints_adjacent_after_serve(self, n, k, rng):
        net = KArySplayNet(n, k)
        for _ in range(100):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            if u == v:
                continue
            net.serve(u, v)
            assert net.distance(u, v) == 1

    def test_self_request_is_free(self):
        net = KArySplayNet(10, 2)
        res = net.serve(4, 4)
        assert res.routing_cost == 0 and res.rotations == 0

    def test_repeated_request_costs_one(self):
        net = KArySplayNet(50, 3)
        net.serve(7, 31)
        for _ in range(5):
            res = net.serve(7, 31)
            assert res.routing_cost == 1
            assert res.rotations == 0

    def test_routing_cost_is_pre_adjustment_distance(self, rng):
        net = KArySplayNet(40, 3)
        for _ in range(50):
            u = int(rng.integers(1, 41))
            v = int(rng.integers(1, 41))
            if u == v:
                continue
            before = net.distance(u, v)
            res = net.serve(u, v)
            assert res.routing_cost == before

    def test_ancestor_descendant_requests(self):
        net = KArySplayNet(31, 2)
        root = net.tree.root_id
        leaf = next(
            node.nid for node in net.tree.iter_nodes() if node.is_leaf
        )
        res = net.serve(root, leaf)
        assert net.distance(root, leaf) == 1
        assert res.routing_cost >= 1
        res = net.serve(leaf, root)
        assert res.routing_cost == 1

    def test_rotations_reported_when_tree_changes(self):
        net = KArySplayNet(63, 2)
        far_pair = (1, 63)
        res = net.serve(*far_pair)
        assert res.rotations > 0
        assert res.links_changed > 0

    @pytest.mark.parametrize("n,k", GRID)
    def test_tree_stays_valid_over_long_runs(self, n, k):
        net = KArySplayNet(n, k)
        trace = uniform_trace(n, 300, seed=n * k) if n > 2 else sequential_trace(n, 300)
        Simulator(validate_every=50).run(net, trace)


class TestCostTrends:
    def test_cost_decreases_with_k_on_uniform(self):
        trace = uniform_trace(128, 4000, seed=3)
        costs = {}
        for k in (2, 4, 8):
            costs[k] = simulate(KArySplayNet(128, k), trace).total_routing
        assert costs[2] > costs[4] > costs[8]

    def test_locality_is_exploited(self):
        """A sequential scan (high locality) is far cheaper than uniform."""
        n, m = 64, 4000
        seq = simulate(KArySplayNet(n, 3), sequential_trace(n, m))
        uni = simulate(KArySplayNet(n, 3), uniform_trace(n, m, seed=1))
        assert seq.total_routing < 0.6 * uni.total_routing

    def test_entropy_bound_theorem13(self):
        """Total cost stays within a small constant of the Thm 13 bound."""
        n, m = 100, 5000
        for trace in (
            uniform_trace(n, m, seed=5),
            zipf_trace(n, m, 1.4, seed=5),
        ):
            result = simulate(KArySplayNet(n, 3), trace)
            bound = entropy_bound(trace)
            # Constant-factor check: generous envelope, fixed seeds.
            assert result.total_routing <= 3.0 * bound + 2 * m

    def test_block_policies_all_work(self):
        trace = uniform_trace(40, 500, seed=9)
        for policy in ("center", "left", "right"):
            net = KArySplayNet(40, 4, policy=policy)
            simulate(net, trace)
            net.validate()
