"""Tests for the Trace container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.trace import Trace


def make_trace(n=5, pairs=((1, 2), (2, 3), (4, 5))):
    src = np.array([p[0] for p in pairs])
    dst = np.array([p[1] for p in pairs])
    return Trace(n, src, dst, name="t", meta={"x": 1})


class TestValidation:
    def test_basic_fields(self):
        tr = make_trace()
        assert tr.n == 5 and tr.m == 3 and len(tr) == 3
        assert list(tr.pairs()) == [(1, 2), (2, 3), (4, 5)]
        assert list(iter(tr)) == [(1, 2), (2, 3), (4, 5)]

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(3, np.array([1]), np.array([4]))
        with pytest.raises(WorkloadError):
            Trace(3, np.array([0]), np.array([2]))

    def test_self_loop_rejected(self):
        with pytest.raises(WorkloadError, match="self-loop"):
            Trace(3, np.array([2]), np.array([2]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(3, np.array([1, 2]), np.array([2]))

    def test_empty_trace_allowed(self):
        tr = Trace(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert tr.m == 0

    def test_dtype_coerced(self):
        tr = Trace(3, np.array([1], dtype=np.int32), np.array([2], dtype=np.int32))
        assert tr.sources.dtype == np.int64


class TestOperations:
    def test_head(self):
        tr = make_trace()
        head = tr.head(2)
        assert head.m == 2 and list(head.pairs()) == [(1, 2), (2, 3)]
        assert head.meta == tr.meta

    def test_concat(self):
        tr = make_trace()
        joined = tr.concat(tr)
        assert joined.m == 6

    def test_concat_different_n_rejected(self):
        with pytest.raises(WorkloadError):
            make_trace(n=5).concat(make_trace(n=6))

    def test_shuffled_preserves_demand(self):
        tr = make_trace()
        shuffled = tr.shuffled(seed=1)
        assert sorted(shuffled.pairs()) == sorted(tr.pairs())

    def test_shuffled_deterministic(self):
        tr = make_trace()
        a = tr.shuffled(seed=3)
        b = tr.shuffled(seed=3)
        assert list(a.pairs()) == list(b.pairs())

    def test_remapped_dense(self):
        tr = Trace(100, np.array([10, 90]), np.array([90, 50]))
        dense = tr.remapped_dense()
        assert dense.n == 3
        assert list(dense.pairs()) == [(1, 3), (3, 2)]
