"""Tests for trace statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.stats import (
    empirical_entropy,
    pair_entropy,
    repeat_fraction,
    source_entropy,
    summarize_trace,
    target_entropy,
    working_set_size,
)
from repro.workloads.synthetic import (
    sequential_trace,
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace


class TestEntropy:
    def test_uniform_counts(self):
        assert empirical_entropy(np.array([1, 1, 1, 1])) == pytest.approx(2.0)

    def test_degenerate_counts(self):
        assert empirical_entropy(np.array([5])) == 0.0
        assert empirical_entropy(np.array([])) == 0.0
        assert empirical_entropy(np.array([0, 0])) == 0.0

    def test_marginal_entropies(self):
        tr = Trace(4, np.array([1, 1, 1, 1]), np.array([2, 3, 2, 3]))
        assert source_entropy(tr) == 0.0
        assert target_entropy(tr) == pytest.approx(1.0)
        assert pair_entropy(tr) == pytest.approx(1.0)

    def test_zipf_less_entropic_than_uniform(self):
        uni = uniform_trace(100, 20000, 1)
        skew = zipf_trace(100, 20000, 1.5, 1)
        assert pair_entropy(skew) < pair_entropy(uni)


class TestRepeatFraction:
    def test_exact_cases(self):
        tr = Trace(3, np.array([1, 1, 2, 2]), np.array([2, 2, 3, 3]))
        assert repeat_fraction(tr) == pytest.approx(2 / 3)

    def test_short_traces(self):
        assert repeat_fraction(Trace(3, np.array([1]), np.array([2]))) == 0.0

    def test_sequential_never_repeats(self):
        assert repeat_fraction(sequential_trace(10, 100)) == 0.0


class TestWorkingSet:
    def test_constant_pair(self):
        tr = Trace(3, np.full(100, 1), np.full(100, 2))
        assert working_set_size(tr, window=10) == 1.0

    def test_empty(self):
        tr = Trace(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert working_set_size(tr) == 0.0


class TestSummary:
    def test_fields_and_str(self):
        tr = temporal_trace(50, 5000, 0.5, seed=0)
        s = summarize_trace(tr)
        assert s.n == 50 and s.m == 5000
        assert 0.45 < s.repeat_fraction < 0.55
        assert 0.0 <= s.spatial_skew <= 1.0
        assert "repeat=" in str(s)

    def test_uniform_has_low_skew(self):
        s = summarize_trace(uniform_trace(50, 30000, 0))
        assert s.spatial_skew < 0.05
