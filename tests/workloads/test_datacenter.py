"""Tests for the simulated datacenter traces (the paper's data substitutes).

Beyond well-formedness, these tests pin the *complexity fingerprints* the
substitution argument in DESIGN.md relies on: HPC must be the
highest-temporal-locality trace, Facebook the lowest, ProjecToR the most
spatially skewed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.datacenter import (
    facebook_trace,
    grid_dimensions,
    hpc_trace,
    projector_trace,
)
from repro.workloads.stats import summarize_trace


class TestGridDimensions:
    @pytest.mark.parametrize("n", [2, 8, 27, 64, 100, 216, 500, 1000])
    def test_covers_n(self, n):
        a, b, c = grid_dimensions(n)
        assert a * b * c >= n

    def test_roughly_cubic(self):
        a, b, c = grid_dimensions(512)
        assert max(a, b, c) <= 4 * min(a, b, c)


class TestWellFormed:
    @pytest.mark.parametrize(
        "gen,n",
        [(hpc_trace, 64), (projector_trace, 50), (facebook_trace, 128)],
    )
    def test_basic(self, gen, n):
        tr = gen(n, 3000, 5)
        assert tr.n == n and tr.m == 3000

    @pytest.mark.parametrize(
        "gen", [hpc_trace, projector_trace, facebook_trace]
    )
    def test_deterministic(self, gen):
        a, b = gen(64, 1000, 3), gen(64, 1000, 3)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.targets, b.targets)

    def test_invalid_sizes(self):
        with pytest.raises(WorkloadError):
            hpc_trace(1, 10)
        with pytest.raises(WorkloadError):
            projector_trace(3, 10)
        with pytest.raises(WorkloadError):
            facebook_trace(3, 10)


class TestComplexityFingerprints:
    """The substitution contract: each trace sits in its dataset's regime."""

    @pytest.fixture(scope="class")
    def summaries(self):
        m = 20000
        return {
            "hpc": summarize_trace(hpc_trace(216, m, 0)),
            "projector": summarize_trace(projector_trace(100, m, 0)),
            "facebook": summarize_trace(facebook_trace(512, m, 0)),
        }

    def test_hpc_has_highest_temporal_locality(self, summaries):
        assert summaries["hpc"].repeat_fraction > 0.12
        assert summaries["hpc"].repeat_fraction > summaries["projector"].repeat_fraction
        assert summaries["hpc"].repeat_fraction > summaries["facebook"].repeat_fraction

    def test_facebook_has_lowest_temporal_locality(self, summaries):
        assert summaries["facebook"].repeat_fraction < 0.02

    def test_projector_is_most_spatially_skewed(self, summaries):
        assert summaries["projector"].spatial_skew > summaries["facebook"].spatial_skew
        assert summaries["projector"].spatial_skew > 0.35

    def test_facebook_has_wide_working_set(self, summaries):
        assert summaries["facebook"].working_set > 2 * summaries["projector"].working_set

    def test_hpc_demand_is_sparse_and_structured(self):
        tr = hpc_trace(216, 20000, 0)
        s = summarize_trace(tr)
        assert s.density < 0.1  # stencil + collective pairs only


class TestHPCStructure:
    def test_stencil_pairs_are_grid_neighbours(self):
        tr = hpc_trace(64, 5000, 1, collective_every=0, background=0.0)
        a, b, c = grid_dimensions(64)
        for u, v in list(tr.pairs())[:500]:
            diff = abs((u - 1) - (v - 1))
            assert diff in (1, a, a * b), (u, v)

    def test_burst_knob_controls_locality(self):
        from repro.workloads.stats import repeat_fraction

        lo = hpc_trace(64, 10000, 0, mean_burst=2.0)
        hi = hpc_trace(64, 10000, 0, mean_burst=16.0)
        assert repeat_fraction(hi) > repeat_fraction(lo) + 0.2


class TestProjectorStructure:
    def test_elephants_dominate(self):
        tr = projector_trace(100, 20000, 0)
        pairs, counts = np.unique(
            tr.sources * 1000 + tr.targets, return_counts=True
        )
        top = np.sort(counts)[::-1]
        elephants = tr.meta["elephants"]
        assert top[:elephants].sum() > 0.55 * tr.m

    def test_elephant_count_knob(self):
        tr = projector_trace(100, 1000, 0, elephant_count=6)
        assert tr.meta["elephants"] == 6


class TestFacebookStructure:
    def test_partner_sets_are_wide(self):
        tr = facebook_trace(256, 30000, 0)
        # the busiest source still spreads over many partners
        src, counts = np.unique(tr.sources, return_counts=True)
        busiest = src[np.argmax(counts)]
        partners = np.unique(tr.targets[tr.sources == busiest])
        assert len(partners) >= 8
