"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.stats import repeat_fraction, working_set_size
from repro.workloads.synthetic import (
    bursty_trace,
    hotspot_trace,
    permutation_trace,
    sequential_trace,
    temporal_trace,
    uniform_trace,
    zipf_trace,
)

GENERATORS = [
    lambda n, m, s: uniform_trace(n, m, s),
    lambda n, m, s: temporal_trace(n, m, 0.5, s),
    lambda n, m, s: zipf_trace(n, m, 1.2, s),
    lambda n, m, s: hotspot_trace(n, m, seed=s),
    lambda n, m, s: bursty_trace(n, m, 4.0, s),
    lambda n, m, s: permutation_trace(n, m, s),
]


class TestCommonContract:
    @pytest.mark.parametrize("gen", GENERATORS)
    def test_well_formed(self, gen):
        tr = gen(50, 1000, 7)
        assert tr.m == 1000 and tr.n == 50  # Trace validates ranges itself

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_by_seed(self, gen):
        a, b = gen(50, 500, 9), gen(50, 500, 9)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.targets, b.targets)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_different_seeds_differ(self, gen):
        a, b = gen(50, 500, 1), gen(50, 500, 2)
        assert not (
            np.array_equal(a.sources, b.sources)
            and np.array_equal(a.targets, b.targets)
        )

    def test_too_few_nodes_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_trace(1, 10)

    def test_zero_requests_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_trace(10, 0)


class TestUniform:
    def test_marginals_roughly_flat(self):
        tr = uniform_trace(20, 40000, 0)
        _, counts = np.unique(tr.sources, return_counts=True)
        assert counts.min() > 0.8 * counts.mean()

    def test_all_pairs_reachable(self):
        tr = uniform_trace(5, 5000, 0)
        assert len(set(tr.pairs())) == 20  # 5*4 ordered pairs


class TestTemporal:
    @pytest.mark.parametrize("p", [0.0, 0.25, 0.5, 0.75, 0.9])
    def test_repeat_fraction_matches_parameter(self, p):
        tr = temporal_trace(100, 40000, p, seed=1)
        assert abs(repeat_fraction(tr) - p) < 0.02

    def test_every_request_repeat_or_fresh(self):
        """Structural property of the p-repeat process."""
        tr = temporal_trace(50, 2000, 0.7, seed=3)
        pairs = list(tr.pairs())
        for i in range(1, len(pairs)):
            # either a literal repeat or a fresh pair; nothing else possible
            assert pairs[i] == pairs[i - 1] or pairs[i] != ()

    def test_invalid_p_rejected(self):
        with pytest.raises(WorkloadError):
            temporal_trace(10, 10, 1.0)
        with pytest.raises(WorkloadError):
            temporal_trace(10, 10, -0.1)

    def test_meta_records_p(self):
        assert temporal_trace(10, 10, 0.25, 0).meta["p"] == 0.25


class TestZipf:
    def test_skew_increases_with_alpha(self):
        flat = zipf_trace(100, 20000, 0.5, seed=1)
        steep = zipf_trace(100, 20000, 2.0, seed=1)
        _, flat_counts = np.unique(flat.sources, return_counts=True)
        _, steep_counts = np.unique(steep.sources, return_counts=True)
        assert steep_counts.max() > 2 * flat_counts.max()


class TestHotspot:
    def test_hot_nodes_attract_traffic(self):
        tr = hotspot_trace(100, 20000, hot_fraction=0.05, hot_prob=0.9, seed=2)
        _, counts = np.unique(tr.targets, return_counts=True)
        top5 = np.sort(counts)[-5:].sum()
        assert top5 > 0.8 * tr.m

    def test_invalid_fraction(self):
        with pytest.raises(WorkloadError):
            hotspot_trace(10, 10, hot_fraction=0.0)


class TestBursty:
    def test_mean_burst_measured(self):
        tr = bursty_trace(100, 40000, mean_burst=8.0, seed=5)
        # P(repeat) = 1 - 1/mean_burst
        assert abs(repeat_fraction(tr) - 0.875) < 0.02

    def test_invalid_burst(self):
        with pytest.raises(WorkloadError):
            bursty_trace(10, 10, 0.5)


class TestPermutation:
    def test_working_set_is_half_n(self):
        tr = permutation_trace(100, 5000, seed=0)
        assert len(set(tr.pairs())) == 50

    def test_round_robin_order(self):
        tr = permutation_trace(10, 15, seed=1)
        pairs = list(tr.pairs())
        assert pairs[:5] == pairs[5:10]


class TestSequential:
    def test_deterministic_scan(self):
        tr = sequential_trace(4, 7)
        assert list(tr.pairs()) == [
            (1, 2), (2, 3), (3, 4), (1, 2), (2, 3), (3, 4), (1, 2),
        ]
