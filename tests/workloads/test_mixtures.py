"""Mixture/phase workload generators: shape, determinism, regime checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import complexity_report, repeat_excess
from repro.errors import WorkloadError
from repro.workloads.mixtures import (
    elephant_mice_trace,
    interleave_traces,
    markov_modulated_trace,
    phased_trace,
    shuffle_phase_trace,
)
from repro.workloads.synthetic import temporal_trace, uniform_trace


class TestElephantMice:
    def test_shape(self):
        trace = elephant_mice_trace(50, 5000, seed=1)
        assert trace.n == 50 and trace.m == 5000

    def test_deterministic(self):
        a = elephant_mice_trace(50, 1000, seed=9)
        b = elephant_mice_trace(50, 1000, seed=9)
        assert (a.sources == b.sources).all() and (a.targets == b.targets).all()

    def test_elephants_dominate(self):
        trace = elephant_mice_trace(
            50, 20_000, elephants=3, elephant_share=0.8, seed=2
        )
        pairs = trace.sources * 1000 + trace.targets
        _, counts = np.unique(pairs, return_counts=True)
        top3 = np.sort(counts)[-3:].sum()
        assert top3 / trace.m > 0.7

    def test_share_controls_skew(self):
        low = elephant_mice_trace(50, 10_000, elephant_share=0.2, seed=3)
        high = elephant_mice_trace(50, 10_000, elephant_share=0.9, seed=3)
        assert (
            complexity_report(high).spatial < complexity_report(low).spatial
        )

    def test_no_self_pairs(self):
        trace = elephant_mice_trace(10, 5000, elephants=8, seed=4)
        assert not np.any(trace.sources == trace.targets)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"elephants": 0},
            {"elephant_share": 0.0},
            {"elephant_share": 1.0},
            {"elephants": 10**6},
        ],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(WorkloadError):
            elephant_mice_trace(20, 100, seed=1, **kwargs)


class TestMarkovModulated:
    def test_shape_and_determinism(self):
        a = markov_modulated_trace(40, 3000, seed=5)
        b = markov_modulated_trace(40, 3000, seed=5)
        assert a.m == 3000
        assert (a.sources == b.sources).all()

    def test_locality_between_regimes(self):
        # overall repeat excess sits between the pure regimes
        trace = markov_modulated_trace(
            60, 20_000, p_local=0.9, stay_local=0.9, stay_mixing=0.9, seed=6
        )
        excess = repeat_excess(trace)
        assert 0.2 < excess < 0.8

    def test_always_local_matches_temporal(self):
        # stay_local=1 starting LOCAL behaves like temporal_trace(p_local)
        trace = markov_modulated_trace(
            60, 20_000, p_local=0.75, stay_local=1.0, stay_mixing=0.0, seed=7
        )
        assert repeat_excess(trace) == pytest.approx(0.75, abs=0.05)

    def test_bad_probability(self):
        with pytest.raises(WorkloadError):
            markov_modulated_trace(10, 100, p_local=1.5)

    def test_no_self_pairs(self):
        trace = markov_modulated_trace(8, 4000, seed=8)
        assert not np.any(trace.sources == trace.targets)


class TestPhased:
    def test_concatenates(self):
        a = uniform_trace(30, 100, 1)
        b = temporal_trace(30, 200, 0.9, 1)
        phased = phased_trace([a, b])
        assert phased.m == 300
        assert (phased.sources[:100] == a.sources).all()
        assert (phased.targets[100:] == b.targets).all()

    def test_meta_counts_phases(self):
        a = uniform_trace(30, 50, 1)
        assert phased_trace([a, a, a]).meta["phases"] == 3

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            phased_trace([])

    def test_mismatched_n_rejected(self):
        with pytest.raises(WorkloadError):
            phased_trace([uniform_trace(10, 10, 1), uniform_trace(20, 10, 1)])


class TestShufflePhase:
    def test_shape(self):
        trace = shuffle_phase_trace(64, 1000, seed=1)
        assert trace.m == 1000

    def test_rounds_are_matchings(self):
        n = 16
        trace = shuffle_phase_trace(n, n, workers=n, rounds=2, seed=2)
        # first n requests form one round: a permutation of the workers
        assert len(set(trace.sources[:n].tolist())) == n
        assert len(set(trace.targets[:n].tolist())) == n

    def test_worker_subset(self):
        trace = shuffle_phase_trace(100, 500, workers=10, seed=3)
        used = set(trace.sources.tolist()) | set(trace.targets.tolist())
        assert len(used) == 10

    def test_no_self_pairs(self):
        trace = shuffle_phase_trace(12, 600, seed=4)
        assert not np.any(trace.sources == trace.targets)

    @pytest.mark.parametrize("kwargs", [{"workers": 1}, {"workers": 200}, {"rounds": 0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(WorkloadError):
            shuffle_phase_trace(100, 100, seed=1, **kwargs)


class TestInterleave:
    def test_alternating_blocks(self):
        a = uniform_trace(20, 6, 1)
        b = uniform_trace(20, 6, 2)
        mixed = interleave_traces(a, b, period=2)
        assert mixed.m == 12
        assert (mixed.sources[0:2] == a.sources[0:2]).all()
        assert (mixed.sources[2:4] == b.sources[0:2]).all()
        assert (mixed.sources[4:6] == a.sources[2:4]).all()

    def test_uneven_lengths(self):
        a = uniform_trace(20, 10, 1)
        b = uniform_trace(20, 3, 2)
        mixed = interleave_traces(a, b, period=2)
        assert mixed.m == 13
        # all of a and b appear exactly once
        assert sorted(mixed.sources.tolist()) == sorted(
            a.sources.tolist() + b.sources.tolist()
        )

    def test_mismatched_n(self):
        with pytest.raises(WorkloadError):
            interleave_traces(uniform_trace(10, 5, 1), uniform_trace(11, 5, 1))

    def test_bad_period(self):
        with pytest.raises(WorkloadError):
            interleave_traces(
                uniform_trace(10, 5, 1), uniform_trace(10, 5, 2), period=0
            )
