"""Tests for trace persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workloads.synthetic import temporal_trace


@pytest.fixture
def trace():
    return temporal_trace(30, 200, 0.5, seed=4)


class TestCSV:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path, n=trace.n)
        assert np.array_equal(loaded.sources, trace.sources)
        assert np.array_equal(loaded.targets, trace.targets)

    def test_n_inferred(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.n == max(trace.sources.max(), trace.targets.max())

    def test_comments_and_header_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# comment\nsource,target\n1,2\n2,3\n")
        loaded = load_trace_csv(path)
        assert list(loaded.pairs()) == [(1, 2), (2, 3)]

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# nothing\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(path)

    def test_name_defaults_to_stem(self, trace, tmp_path):
        path = tmp_path / "mytrace.csv"
        save_trace_csv(trace, path)
        assert load_trace_csv(path).name == "mytrace"


class TestNPZ:
    def test_roundtrip_with_metadata(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        assert np.array_equal(loaded.sources, trace.sources)
        assert np.array_equal(loaded.targets, trace.targets)
        assert loaded.n == trace.n
        assert loaded.name == trace.name
        assert loaded.meta["p"] == 0.5
