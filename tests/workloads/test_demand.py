"""Tests for DemandMatrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import uniform_trace
from repro.workloads.trace import Trace


class TestFromTrace:
    def test_counts(self):
        tr = Trace(4, np.array([1, 1, 2]), np.array([2, 2, 3]))
        d = DemandMatrix.from_trace(tr)
        assert d.count(1, 2) == 2
        assert d.count(2, 3) == 1
        assert d.count(3, 2) == 0
        assert d.total == 3

    def test_dense_below_limit(self):
        d = DemandMatrix.from_trace(uniform_trace(100, 1000, 0))
        assert d.is_dense

    def test_sparse_above_limit(self):
        d = DemandMatrix.from_trace(uniform_trace(5000, 1000, 0))
        assert not d.is_dense
        assert d.total == 1000

    def test_force_dense(self):
        d = DemandMatrix.from_trace(uniform_trace(5000, 100, 0), force_dense=True)
        assert d.is_dense


class TestUniform:
    def test_all_ones_off_diagonal(self):
        d = DemandMatrix.uniform(4)
        assert d.total == 12
        assert d.count(1, 1) == 0
        assert d.count(1, 4) == 1


class TestAccessors:
    def test_marginals(self):
        tr = Trace(4, np.array([1, 1, 2]), np.array([2, 3, 3]))
        d = DemandMatrix.from_trace(tr)
        assert list(d.out_degrees()) == [2, 1, 0, 0]
        assert list(d.in_degrees()) == [0, 1, 2, 0]

    def test_marginals_sparse(self):
        tr = uniform_trace(5000, 2000, 1)
        d = DemandMatrix.from_trace(tr)
        assert d.out_degrees().sum() == 2000
        assert d.in_degrees().sum() == 2000

    def test_nonzero_pairs(self):
        tr = Trace(4, np.array([1, 1]), np.array([2, 2]))
        d = DemandMatrix.from_trace(tr)
        assert list(d.nonzero_pairs()) == [(1, 2, 2)]

    def test_nonzero_arrays_sparse_and_dense_agree(self):
        tr = uniform_trace(50, 500, 2)
        dense = DemandMatrix.from_trace(tr)
        sparse = DemandMatrix.from_trace(
            Trace(5000, tr.sources, tr.targets)
        )
        du, dv, dw = dense.nonzero_arrays()
        su, sv, sw = sparse.nonzero_arrays()
        assert np.array_equal(du, su) and np.array_equal(dv, sv)
        assert np.array_equal(dw, sw)

    def test_density(self):
        d = DemandMatrix.uniform(10)
        assert d.density() == 1.0

    def test_dense_refuses_huge(self):
        tr = uniform_trace(20000, 100, 0)
        d = DemandMatrix.from_trace(tr)
        with pytest.raises(WorkloadError):
            d.dense()


class TestValidation:
    def test_both_or_neither_backing(self):
        with pytest.raises(WorkloadError):
            DemandMatrix(3)
        with pytest.raises(WorkloadError):
            DemandMatrix(
                3,
                dense=np.zeros((3, 3), dtype=np.int64),
                sparse="also",  # type: ignore[arg-type]
            )

    def test_diagonal_must_be_zero(self):
        d = np.ones((3, 3), dtype=np.int64)
        with pytest.raises(WorkloadError):
            DemandMatrix(3, dense=d)

    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            DemandMatrix(4, dense=np.zeros((3, 3), dtype=np.int64))
