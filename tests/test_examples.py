"""Smoke-run the fast example scripts: every shipped walkthrough must
execute cleanly against the current public API (import errors, renamed
symbols and broken demos fail here, not in a user's terminal)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: (script, argv, substring expected on stdout) — fast examples only; the
#: heavyweight sweeps (complexity_map, parallel_sweep, reproduce_paper) are
#: exercised through their underlying APIs in the unit suites.
FAST_EXAMPLES = [
    ("quickstart.py", [], "topology re-validated"),
    ("rotation_gallery.py", ["3"], "Figure 5"),
    ("key_migration.py", [], "identifiers before == after: True"),
    ("custom_traces.py", [], "temporal structure was worth"),
    ("convergence.py", [], "two-phase workload"),
    ("adjustment_policies.py", [], "winner"),
]


@pytest.mark.parametrize(
    "script,argv,expected",
    FAST_EXAMPLES,
    ids=[script for script, _, _ in FAST_EXAMPLES],
)
def test_example_runs(script, argv, expected):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    if expected:
        assert expected in proc.stdout


def test_all_examples_are_documented_in_readme():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in readme, (
            f"examples/{script.name} is not mentioned in README.md"
        )
