"""Integration tests: the paper's qualitative findings must reproduce.

These use fixed seeds at smoke scale with generous margins — they fail only
if an algorithmic regression flips a finding's *direction*, which is exactly
what the reproduction promises to preserve (see DESIGN.md §3).
"""

from __future__ import annotations

import pytest

from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.core.builders import build_complete_tree
from repro.analysis.distance import trace_static_cost
from repro.network.cost import UNIT_ROTATIONS
from repro.network.simulator import simulate
from repro.splaynet.splaynet import SplayNet
from repro.workloads.datacenter import hpc_trace, projector_trace
from repro.workloads.synthetic import temporal_trace, uniform_trace


@pytest.fixture(scope="module")
def scale():
    return {"n": 100, "m": 8000, "seed": 2024}


class TestFinding1_CostDecreasesWithK:
    """§5.1: 'the higher the k the lower the total routing cost'."""

    def test_on_uniform(self, scale):
        trace = uniform_trace(scale["n"], scale["m"], scale["seed"])
        c2 = simulate(KArySplayNet(scale["n"], 2), trace).total_routing
        c5 = simulate(KArySplayNet(scale["n"], 5), trace).total_routing
        c10 = simulate(KArySplayNet(scale["n"], 10), trace).total_routing
        assert c10 < c5 < c2

    def test_on_temporal(self, scale):
        trace = temporal_trace(scale["n"], scale["m"], 0.5, scale["seed"])
        c2 = simulate(KArySplayNet(scale["n"], 2), trace).total_routing
        c8 = simulate(KArySplayNet(scale["n"], 8), trace).total_routing
        assert c8 < c2


class TestFinding2_FullTreeCrossover:
    """Tables 4-7: the full tree overtakes SplayNet as k grows on low
    locality, but loses at every k on high locality."""

    def test_high_locality_splaynet_dominates(self, scale):
        trace = temporal_trace(scale["n"], scale["m"], 0.9, scale["seed"])
        for k in (2, 5, 10):
            dynamic = simulate(KArySplayNet(scale["n"], k), trace).total_routing
            static = trace_static_cost(build_complete_tree(scale["n"], k), trace)
            assert dynamic < 0.7 * static, k

    def test_low_locality_full_tree_wins_at_high_k(self, scale):
        trace = temporal_trace(scale["n"], scale["m"], 0.25, scale["seed"])
        k = 10
        dynamic = simulate(KArySplayNet(scale["n"], k), trace).total_routing
        static = trace_static_cost(build_complete_tree(scale["n"], k), trace)
        assert dynamic > static

    def test_splaynet_beats_full_binary_tree_at_k2(self, scale):
        """Every workload in the paper shows Full Tree > SplayNet at k=2."""
        for trace in (
            temporal_trace(scale["n"], scale["m"], 0.5, scale["seed"]),
            hpc_trace(scale["n"], scale["m"], scale["seed"]),
        ):
            dynamic = simulate(KArySplayNet(trace.n, 2), trace).total_routing
            static = trace_static_cost(build_complete_tree(trace.n, 2), trace)
            assert dynamic < static


class TestFinding3_CentroidHeuristic:
    """Table 8: 3-SplayNet wins on low-locality workloads and loses on
    high-locality ones (under the §5.1 unit-rotation cost model)."""

    def test_loses_on_high_locality(self, scale):
        trace = temporal_trace(scale["n"], scale["m"], 0.9, scale["seed"])
        c3 = simulate(CentroidSplayNet(scale["n"], 2), trace)
        sp = simulate(SplayNet(scale["n"]), trace)
        assert sp.total_cost(UNIT_ROTATIONS) < c3.total_cost(UNIT_ROTATIONS)

    def test_wins_on_projector(self, scale):
        trace = projector_trace(scale["n"], scale["m"], scale["seed"])
        c3 = simulate(CentroidSplayNet(scale["n"], 2), trace)
        sp = simulate(SplayNet(scale["n"]), trace)
        assert sp.total_cost(UNIT_ROTATIONS) > c3.total_cost(UNIT_ROTATIONS)

    def test_wins_on_low_locality_temporal(self, scale):
        trace = temporal_trace(scale["n"], scale["m"], 0.25, scale["seed"])
        c3 = simulate(CentroidSplayNet(scale["n"], 2), trace)
        sp = simulate(SplayNet(scale["n"]), trace)
        assert sp.total_cost(UNIT_ROTATIONS) > c3.total_cost(UNIT_ROTATIONS)


class TestFinding4_OptimalStaticTree:
    """Tables 1-7: the optimal tree beats k-ary SplayNet by a bounded
    constant on low locality and loses on the highest locality."""

    def test_bounded_gap_on_low_locality(self):
        """'our data structure is constant-away from optimality' (§5.1).

        At k=2 and small n the two are nearly tied (the paper's 1.75x gap
        needs its larger n); the robust shape is the bounded constant and
        the widening gap as k grows.
        """
        from repro.optimal.general import optimal_static_tree
        from repro.workloads.demand import DemandMatrix

        n, m = 64, 6000
        trace = temporal_trace(n, m, 0.25, seed=7)
        demand = DemandMatrix.from_trace(trace)
        ratios = {}
        for k in (2, 4, 8):
            dynamic = simulate(KArySplayNet(n, k), trace).total_routing
            optimal = trace_static_cost(optimal_static_tree(demand, k).tree, trace)
            ratios[k] = dynamic / optimal
            assert 0.5 * optimal < dynamic < 4.0 * optimal
        assert ratios[8] > ratios[2]  # optimal tree pulls ahead with k

    def test_splaynet_wins_on_highest_locality(self):
        from repro.optimal.general import optimal_static_tree
        from repro.workloads.demand import DemandMatrix

        n, m = 64, 6000
        trace = temporal_trace(n, m, 0.9, seed=7)
        demand = DemandMatrix.from_trace(trace)
        dynamic = simulate(KArySplayNet(n, 2), trace).total_routing
        optimal = trace_static_cost(optimal_static_tree(demand, 2).tree, trace)
        assert dynamic < optimal


class TestEndToEnd:
    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        from repro import KArySplayNet, simulate, uniform_trace

        net = KArySplayNet(n=64, k=4)
        result = simulate(net, uniform_trace(64, 1000, seed=1))
        assert result.average_routing > 0
        net.validate()
