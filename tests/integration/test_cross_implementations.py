"""Cross-implementation consistency: independent implementations of the
same paper object must agree (exactly where the math says so, within a
small band where only the analysis coincides)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance import trace_static_cost
from repro.core.splaynet import KArySplayNet
from repro.network.simulator import simulate
from repro.optimal.general import optimal_static_tree
from repro.splaynet.optimal import optimal_static_bst
from repro.splaynet.splaynet import SplayNet
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import temporal_trace, uniform_trace, zipf_trace


class TestOptimalDPAgreement:
    """The dedicated BST DP (baseline [22]) and the k-ary DP at k=2 solve
    the same problem: binary search trees are always routing-based, so the
    two optima must be *equal*."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_costs_equal_on_random_demand(self, seed):
        rng = np.random.default_rng(seed)
        n = 18
        d = rng.integers(0, 6, (n, n))
        np.fill_diagonal(d, 0)
        demand = DemandMatrix(n, dense=d)
        kary = optimal_static_tree(demand, 2)
        bst = optimal_static_bst(demand)
        assert kary.cost == bst.cost

    def test_costs_equal_on_trace_demand(self):
        trace = zipf_trace(24, 4_000, 1.4, seed=5)
        demand = DemandMatrix.from_trace(trace)
        assert optimal_static_tree(demand, 2).cost == optimal_static_bst(demand).cost

    def test_measured_costs_also_equal(self):
        trace = temporal_trace(20, 2_000, 0.6, seed=6)
        demand = DemandMatrix.from_trace(trace)
        kary_tree = optimal_static_tree(demand, 2).tree
        bst_net = optimal_static_bst(demand).network
        assert trace_static_cost(kary_tree, trace) == trace_static_cost(
            bst_net, trace
        )


class TestSplayNetParity:
    """2-ary KArySplayNet and the dedicated binary SplayNet follow the same
    algorithm; rotation tie-breaks differ, so totals agree within a band
    (EXPERIMENTS.md measures ≈5%; we assert 15% for robustness)."""

    @pytest.mark.parametrize(
        "make_trace",
        [
            lambda: uniform_trace(64, 5_000, 1),
            lambda: temporal_trace(64, 5_000, 0.75, 2),
            lambda: zipf_trace(64, 5_000, 1.3, seed=3),
        ],
        ids=["uniform", "temporal", "zipf"],
    )
    def test_total_routing_within_band(self, make_trace):
        trace = make_trace()
        kary = simulate(KArySplayNet(trace.n, 2), trace).total_routing
        binary = simulate(SplayNet(trace.n), trace).total_routing
        assert kary == pytest.approx(binary, rel=0.15)

    def test_both_collapse_repeats_to_distance_one(self):
        kary = KArySplayNet(32, 2)
        binary = SplayNet(32)
        kary.serve(5, 29)
        binary.serve(5, 29)
        assert kary.serve(5, 29).routing_cost == 1
        assert binary.serve(5, 29).routing_cost == 1


class TestUniformDPvsCentroid:
    """Remark 10 in miniature: the O(n) centroid construction matches the
    O(n²k) DP optimum (checked at the odd sizes the grid bench skips)."""

    @pytest.mark.parametrize("n", [11, 23, 37, 61])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_centroid_cost_equals_uniform_optimum(self, n, k):
        from repro.analysis.distance import total_distance_via_potentials
        from repro.core.centroid import build_centroid_tree
        from repro.optimal.uniform import optimal_uniform_cost

        centroid = total_distance_via_potentials(build_centroid_tree(n, k)) // 2
        assert centroid == optimal_uniform_cost(n, k)
