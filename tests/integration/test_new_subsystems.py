"""Cross-subsystem integration: mixtures through every SAN, the parallel
pipeline end-to-end, and theory/figure consistency checks."""

from __future__ import annotations

import pytest

from repro.analysis.complexity import complexity_report
from repro.analysis.potential import audit_splaynet_accesses
from repro.analysis.stretch import measure_stretch
from repro.core.builders import build_complete_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.network.lazy import LazyRebuildNetwork
from repro.network.simulator import Simulator, simulate
from repro.network.static import StaticTreeNetwork
from repro.parallel import SweepSpec, run_sweep
from repro.parallel.tasks import SimulationTask, run_simulation_task
from repro.splaynet.splaynet import SplayNet
from repro.workloads.mixtures import (
    elephant_mice_trace,
    markov_modulated_trace,
    phased_trace,
    shuffle_phase_trace,
)
from repro.workloads.synthetic import temporal_trace, uniform_trace


N, M, SEED = 48, 1_500, 11


def _networks(n: int):
    return {
        "kary-3": KArySplayNet(n, 3),
        "centroid-3": CentroidSplayNet(n, 2),
        "splaynet": SplayNet(n),
        "lazy": LazyRebuildNetwork(n, 3, alpha=2_000.0),
        "static": StaticTreeNetwork(build_complete_tree(n, 3)),
    }


class TestMixturesThroughNetworks:
    """Every mixture workload runs through every network design with the
    invariants intact and sane cost accounting."""

    @pytest.mark.parametrize(
        "make_trace",
        [
            lambda: elephant_mice_trace(N, M, seed=SEED),
            lambda: markov_modulated_trace(N, M, seed=SEED),
            lambda: shuffle_phase_trace(N, M, seed=SEED),
            lambda: phased_trace(
                [uniform_trace(N, M // 2, SEED), temporal_trace(N, M // 2, 0.9, SEED)]
            ),
        ],
        ids=["elephant-mice", "markov", "shuffle", "phased"],
    )
    def test_all_networks_serve_mixtures(self, make_trace):
        trace = make_trace()
        sim = Simulator(validate_every=500)
        for name, network in _networks(trace.n).items():
            result = sim.run(network, trace, name=name)
            assert result.total_routing > 0
            assert result.m == trace.m

    def test_elephant_mice_rewards_demand_awareness(self):
        # a SAN should exploit the elephants: beat the oblivious static tree
        trace = elephant_mice_trace(N, 6_000, elephant_share=0.85, seed=3)
        san = simulate(KArySplayNet(N, 2), trace)
        static = simulate(StaticTreeNetwork(build_complete_tree(N, 2)), trace)
        assert san.total_routing < static.total_routing

    def test_markov_locality_helps_san(self):
        # high-locality markov regime: SAN average cost beats the uniform case
        local = markov_modulated_trace(
            N, 6_000, p_local=0.95, stay_local=0.99, stay_mixing=0.5, seed=5
        )
        mixing = uniform_trace(N, 6_000, 5)
        san_local = simulate(KArySplayNet(N, 3), local)
        san_mixing = simulate(KArySplayNet(N, 3), mixing)
        assert san_local.average_routing < san_mixing.average_routing


def _sweep_cell(c):
    """Module-level so the process pool can pickle it."""
    return run_simulation_task(
        SimulationTask("temporal-0.75", 32, 500, c.seed, "kary-splaynet", c["k"])
    ).total_routing


class TestParallelPipeline:
    def test_sweep_drives_simulation_tasks(self):
        spec = SweepSpec(axes={"k": (2, 3)}, root_seed=7)
        serial = run_sweep(_sweep_cell, spec, jobs=1)
        parallel = run_sweep(_sweep_cell, spec, jobs=2)
        assert serial.values == parallel.values
        assert all(v > 0 for v in serial.values)

    def test_paper_shape_through_tasks(self):
        # the central k-trend holds through the task layer too
        costs = {}
        for k in (2, 6):
            result = run_simulation_task(
                SimulationTask("temporal-0.9", 100, 4_000, 42, "kary-splaynet", k)
            )
            costs[k] = result.total_routing
        assert costs[6] < costs[2]


class TestAnalysisOnLiveNetworks:
    def test_complexity_of_simulated_workload_matches_regime(self):
        trace = temporal_trace(64, 8_000, 0.75, 13)
        report = complexity_report(trace)
        assert report.locality == pytest.approx(0.75, abs=0.08)
        # and the SAN indeed beats the static tree in this regime
        san = simulate(KArySplayNet(64, 2), trace)
        static = simulate(StaticTreeNetwork(build_complete_tree(64, 2)), trace)
        assert san.total_routing < static.total_routing

    def test_access_lemma_holds_after_mixture_warmup(self):
        # warm a network with a mixture trace, then audit accesses
        net = KArySplayNet(N, 3)
        trace = elephant_mice_trace(N, 1_000, seed=2)
        Simulator().run(net, trace)
        audits = audit_splaynet_accesses(net, [1, N // 2, N, 7, 23])
        assert all(a.holds for a in audits)

    def test_stretch_after_mixture_storm(self):
        net = KArySplayNet(N, 3)
        Simulator().run(net, shuffle_phase_trace(N, 2_000, seed=4))
        report = measure_stretch(net.tree, sample=200, seed=5)
        assert report.max_hops <= 2 * N
