"""Tests for the per-request series metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.network.metrics import (
    cumulative_advantage,
    percentile_table,
    rolling_mean,
    summarize_series,
    warmup_length,
)
from repro.network.simulator import Simulator, simulate
from repro.workloads.synthetic import sequential_trace, uniform_trace


def recorded(n=40, m=600, k=3, seed=1):
    return Simulator(record_series=True).run(
        KArySplayNet(n, k), uniform_trace(n, m, seed)
    )


class TestRollingMean:
    def test_flat_series(self):
        out = rolling_mean(np.full(10, 3.0), 4)
        assert np.allclose(out, 3.0)
        assert len(out) == 7

    def test_matches_manual_window(self):
        values = np.arange(10, dtype=float)
        out = rolling_mean(values, 3)
        assert out[0] == pytest.approx(1.0)
        assert out[-1] == pytest.approx(8.0)

    def test_bad_window(self):
        with pytest.raises(ExperimentError):
            rolling_mean(np.ones(5), 6)
        with pytest.raises(ExperimentError):
            rolling_mean(np.ones(5), 0)


class TestPercentiles:
    def test_table(self):
        table = percentile_table(np.arange(1, 101))
        assert table[50] == pytest.approx(50.5)
        assert table[100] == 100

    def test_empty(self):
        assert percentile_table(np.array([]))[50] == 0.0


class TestWarmup:
    def test_decaying_series_has_warmup(self):
        # expensive start, cheap steady state
        values = np.concatenate([np.full(400, 10.0), np.full(2000, 2.0)])
        w = warmup_length(values, window=100)
        assert 200 <= w <= 800

    def test_flat_series_has_no_warmup(self):
        assert warmup_length(np.full(1000, 5.0), window=100) == 0

    def test_short_series(self):
        assert warmup_length(np.ones(10), window=100) == 0


class TestCumulativeAdvantage:
    def test_self_adjustment_pays_off_on_locality(self):
        n, m = 40, 1500
        trace = sequential_trace(n, m)
        sim = Simulator(record_series=True)
        dynamic = sim.run(KArySplayNet(n, 2), trace)
        from repro.core.builders import build_complete_tree
        from repro.network.static import StaticTreeNetwork

        static = sim.run(StaticTreeNetwork(build_complete_tree(n, 2)), trace)
        adv = cumulative_advantage(dynamic, static)
        assert adv[-1] > 0  # dynamic ends ahead
        assert len(adv) == m

    def test_length_mismatch_rejected(self):
        a = recorded(m=100)
        b = recorded(m=200)
        with pytest.raises(ExperimentError):
            cumulative_advantage(a, b)

    def test_requires_recorded_series(self):
        plain = simulate(KArySplayNet(20, 2), uniform_trace(20, 50, 1))
        with pytest.raises(ExperimentError):
            cumulative_advantage(plain, plain)


class TestSummary:
    def test_fields(self):
        result = recorded()
        summary = summarize_series(result)
        assert summary.mean == pytest.approx(result.average_routing)
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.max
        assert "mean=" in str(summary)
