"""Tests for the trace-driven simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.splaynet import KArySplayNet
from repro.network.cost import CostModel, UNIT_ROTATIONS
from repro.network.simulator import SimulationResult, Simulator, simulate
from repro.network.static import StaticTreeNetwork
from repro.core.builders import build_complete_tree
from repro.workloads.synthetic import uniform_trace
from repro.workloads.trace import Trace


class TestAccumulation:
    def test_totals_match_manual_serving(self):
        trace = uniform_trace(30, 300, seed=1)
        net_a = KArySplayNet(30, 3)
        net_b = KArySplayNet(30, 3)
        result = simulate(net_a, trace)
        routing = rotations = links = 0
        for u, v in trace.pairs():
            r = net_b.serve(u, v)
            routing += r.routing_cost
            rotations += r.rotations
            links += r.links_changed
        assert result.total_routing == routing
        assert result.total_rotations == rotations
        assert result.total_links_changed == links

    def test_static_network_never_adjusts(self):
        trace = uniform_trace(30, 200, seed=2)
        result = simulate(StaticTreeNetwork(build_complete_tree(30, 2)), trace)
        assert result.total_rotations == 0
        assert result.total_links_changed == 0

    def test_average_routing(self):
        trace = uniform_trace(20, 100, seed=3)
        result = simulate(KArySplayNet(20, 2), trace)
        assert result.average_routing == pytest.approx(result.total_routing / 100)

    def test_empty_trace(self):
        trace = Trace(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        result = simulate(KArySplayNet(5, 2), trace)
        assert result.total_routing == 0 and result.average_routing == 0.0


class TestSeries:
    def test_series_recorded(self):
        trace = uniform_trace(20, 50, seed=4)
        result = Simulator(record_series=True).run(KArySplayNet(20, 2), trace)
        assert result.routing_series is not None
        assert len(result.routing_series) == 50
        assert result.routing_series.sum() == result.total_routing
        assert result.rotation_series.sum() == result.total_rotations

    def test_series_not_recorded_by_default(self):
        trace = uniform_trace(20, 50, seed=4)
        result = simulate(KArySplayNet(20, 2), trace)
        assert result.routing_series is None


class TestValidation:
    def test_validate_every_invokes_validate(self):
        calls = []

        class Spy:
            n = 5

            def serve(self, u, v):
                from repro.network.protocols import ServeResult

                return ServeResult(1, 0, 0)

            def validate(self):
                calls.append(1)

        trace = uniform_trace(5, 10, seed=0)
        Simulator(validate_every=3).run(Spy(), trace)
        assert len(calls) == 4  # after 3, 6, 9 requests + final


class TestResultObject:
    def test_total_cost_models(self):
        result = SimulationResult(
            name="x", n=5, m=10, total_routing=100,
            total_rotations=20, total_links_changed=40, elapsed_seconds=0.1,
        )
        assert result.total_cost() == 100
        assert result.total_cost(UNIT_ROTATIONS) == 120
        assert result.total_cost(CostModel(link_cost=1.0)) == 140
        assert result.average_rotations == 2.0

    def test_str(self):
        result = SimulationResult(
            name="demo", n=5, m=10, total_routing=100,
            total_rotations=20, total_links_changed=40, elapsed_seconds=0.1,
        )
        assert "demo" in str(result) and "routing=100" in str(result)

    def test_name_defaults_to_trace_name(self):
        trace = uniform_trace(10, 20, seed=1)
        result = simulate(KArySplayNet(10, 2), trace)
        assert result.name == trace.name
