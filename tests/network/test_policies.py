"""Adjustment-policy wrappers: decision logic, cost honesty, regimes."""

from __future__ import annotations

import pytest

from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.network.cost import CostModel
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)
from repro.network.simulator import simulate
from repro.workloads.mixtures import elephant_mice_trace
from repro.workloads.synthetic import temporal_trace, uniform_trace


N = 48


class TestThresholded:
    def test_threshold_zero_is_fully_reactive(self):
        trace = temporal_trace(N, 800, 0.5, 1)
        reactive = simulate(KArySplayNet(N, 2), trace)
        thresholded = simulate(ThresholdedNetwork(KArySplayNet(N, 2), 0), trace)
        assert thresholded.total_routing == reactive.total_routing
        assert thresholded.total_rotations == reactive.total_rotations

    def test_huge_threshold_is_frozen(self):
        trace = uniform_trace(N, 500, 2)
        net = ThresholdedNetwork(KArySplayNet(N, 2), 10 * N)
        result = simulate(net, trace)
        assert result.total_rotations == 0
        assert net.adjusted == 0
        assert net.served == 500

    def test_adjacent_requests_skip_adjustment(self):
        net = ThresholdedNetwork(KArySplayNet(N, 2), 1)
        net.inner.serve(3, 40)  # splays them adjacent
        before = net.inner.serve(3, 40).routing_cost
        assert before <= 1
        result = net.serve(3, 40)
        assert result.rotations == 0

    def test_counters(self):
        trace = uniform_trace(N, 300, 3)
        net = ThresholdedNetwork(KArySplayNet(N, 2), 3)
        simulate(net, trace)
        assert net.served == 300
        assert 0 < net.adjusted <= 300

    def test_negative_threshold(self):
        with pytest.raises(ExperimentError):
            ThresholdedNetwork(KArySplayNet(8, 2), -1)

    def test_wins_when_rotations_are_expensive(self):
        # with unit rotation costs, fully reactive splaying is already
        # near-optimal (adjacent repeats rotate nothing); the threshold pays
        # off once physical reconfiguration is costly — the Section 5.1
        # concern about high-degree nodes
        expensive = CostModel(rotation_cost=5.0)
        trace = temporal_trace(N, 3_000, 0.9, 4)
        reactive = simulate(KArySplayNet(N, 2), trace)
        lazy = simulate(ThresholdedNetwork(KArySplayNet(N, 2), 2), trace)
        assert lazy.total_cost(expensive) < reactive.total_cost(expensive)
        # ...while under routing-only costs the threshold never helps
        assert lazy.total_routing >= reactive.total_routing

    def test_validate_passthrough(self):
        net = ThresholdedNetwork(KArySplayNet(N, 3), 2)
        simulate(net, uniform_trace(N, 200, 5))
        net.validate()  # delegates to the inner tree's validator


class TestProbabilistic:
    def test_q_one_is_fully_reactive(self):
        trace = temporal_trace(N, 500, 0.5, 6)
        reactive = simulate(KArySplayNet(N, 2), trace)
        always = simulate(
            ProbabilisticNetwork(KArySplayNet(N, 2), 1.0, seed=1), trace
        )
        assert always.total_routing == reactive.total_routing

    def test_q_zero_is_frozen(self):
        net = ProbabilisticNetwork(KArySplayNet(N, 2), 0.0, seed=1)
        result = simulate(net, uniform_trace(N, 400, 7))
        assert result.total_rotations == 0

    def test_adjustment_rate_tracks_q(self):
        net = ProbabilisticNetwork(KArySplayNet(N, 2), 0.3, seed=2)
        simulate(net, uniform_trace(N, 4_000, 8))
        assert net.adjusted / net.served == pytest.approx(0.3, abs=0.05)

    def test_seeded_reproducibility(self):
        trace = uniform_trace(N, 600, 9)
        a = simulate(ProbabilisticNetwork(KArySplayNet(N, 2), 0.5, seed=3), trace)
        b = simulate(ProbabilisticNetwork(KArySplayNet(N, 2), 0.5, seed=3), trace)
        assert a.total_routing == b.total_routing
        assert a.total_rotations == b.total_rotations

    def test_bad_q(self):
        with pytest.raises(ExperimentError):
            ProbabilisticNetwork(KArySplayNet(8, 2), 1.5)


class TestFrozen:
    def test_never_adjusts(self):
        net = FrozenNetwork(KArySplayNet(N, 2))
        result = simulate(net, uniform_trace(N, 300, 10))
        assert result.total_rotations == 0
        assert result.total_links_changed == 0

    def test_freeze_after_warmup_on_stationary_demand(self):
        # on *stationary* skewed demand a warmed-then-frozen SplayNet beats
        # the balanced initial tree: the elephants ended up adjacent.
        # (On drifting temporal demand freezing does NOT help — the hot
        # pairs move on; that is why the paper's SANs keep adjusting.)
        trace = elephant_mice_trace(N, 2_000, elephants=3, elephant_share=0.85, seed=11)
        warm = KArySplayNet(N, 2)
        simulate(warm, trace)
        frozen_warm = simulate(FrozenNetwork(warm), trace)
        frozen_cold = simulate(FrozenNetwork(KArySplayNet(N, 2)), trace)
        assert frozen_warm.total_routing < frozen_cold.total_routing

    def test_wrapper_requires_distance(self):
        class NoDistance:
            def serve(self, u, v):  # pragma: no cover - shape check only
                return None

        with pytest.raises(ExperimentError):
            FrozenNetwork(NoDistance())
