"""Tests for the cost model."""

from __future__ import annotations

import pytest

from repro.network.cost import CostModel, LINK_CHURN, ROUTING_ONLY, UNIT_ROTATIONS
from repro.network.protocols import ServeResult


class TestCostModel:
    def test_routing_only(self):
        r = ServeResult(routing_cost=7, rotations=3, links_changed=10)
        assert ROUTING_ONLY.total(r) == 7.0

    def test_unit_rotations(self):
        r = ServeResult(routing_cost=7, rotations=3, links_changed=10)
        assert UNIT_ROTATIONS.total(r) == 10.0

    def test_link_churn(self):
        r = ServeResult(routing_cost=7, rotations=3, links_changed=10)
        assert LINK_CHURN.total(r) == 17.0

    def test_custom_weights(self):
        model = CostModel(routing_weight=2.0, rotation_cost=0.5, link_cost=0.25)
        r = ServeResult(routing_cost=4, rotations=2, links_changed=8)
        assert model.total(r) == 8 + 1 + 2

    def test_describe(self):
        assert "routing" in ROUTING_ONLY.describe()
        assert "rotations" in UNIT_ROTATIONS.describe()
        assert "links" in LINK_CHURN.describe()


class TestServeResult:
    def test_addition(self):
        a = ServeResult(1, 2, 3)
        b = ServeResult(10, 20, 30)
        c = a + b
        assert (c.routing_cost, c.rotations, c.links_changed) == (11, 22, 33)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServeResult(1).routing_cost = 5  # type: ignore[misc]
