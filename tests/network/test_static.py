"""Tests for the static tree network wrapper."""

from __future__ import annotations

import pytest

from repro.core.builders import build_complete_tree, build_random_tree
from repro.network.protocols import SelfAdjustingNetwork, ServeResult
from repro.network.static import StaticTreeNetwork
from repro.splaynet.tree import BSTNetwork


class TestStaticTreeNetwork:
    def test_serve_returns_tree_distance(self, rng):
        tree = build_random_tree(40, 3, seed=1)
        net = StaticTreeNetwork(tree)
        for _ in range(50):
            u = int(rng.integers(1, 41))
            v = int(rng.integers(1, 41))
            res = net.serve(u, v)
            assert res.routing_cost == tree.distance(u, v)
            assert res.rotations == 0 and res.links_changed == 0

    def test_wraps_bst_networks_too(self):
        net = StaticTreeNetwork(BSTNetwork.balanced(31))
        assert net.n == 31
        assert net.serve(1, 31).routing_cost == net.distance(1, 31)

    def test_satisfies_protocol(self):
        net = StaticTreeNetwork(build_complete_tree(7, 2))
        assert isinstance(net, SelfAdjustingNetwork)

    def test_validate_delegates(self):
        net = StaticTreeNetwork(build_complete_tree(7, 2))
        net.validate()  # must not raise


class TestProtocol:
    def test_dynamic_networks_satisfy_protocol(self):
        from repro.core.centroid_splaynet import CentroidSplayNet
        from repro.core.splaynet import KArySplayNet
        from repro.splaynet.splaynet import SplayNet

        assert isinstance(KArySplayNet(5, 2), SelfAdjustingNetwork)
        assert isinstance(CentroidSplayNet(5, 2), SelfAdjustingNetwork)
        assert isinstance(SplayNet(5), SelfAdjustingNetwork)
