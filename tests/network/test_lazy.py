"""Tests for the lazy-rebuild meta-algorithm."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.network.lazy import LazyRebuildNetwork
from repro.network.simulator import Simulator, simulate
from repro.network.static import StaticTreeNetwork
from repro.core.builders import build_complete_tree
from repro.workloads.synthetic import permutation_trace, uniform_trace, zipf_trace


class TestMechanics:
    def test_serves_at_tree_distance(self, rng):
        net = LazyRebuildNetwork(30, 2, alpha=1e12)  # never rebuilds
        static = StaticTreeNetwork(build_complete_tree(30, 2))
        for _ in range(50):
            u = int(rng.integers(1, 31))
            v = int(rng.integers(1, 31))
            assert net.serve(u, v).routing_cost == static.serve(u, v).routing_cost

    def test_rebuild_triggered_by_threshold(self):
        net = LazyRebuildNetwork(20, 2, alpha=50)
        trace = zipf_trace(20, 400, 1.5, seed=1)
        simulate(net, trace)
        assert net.rebuilds >= 2

    def test_no_rebuild_below_threshold(self):
        net = LazyRebuildNetwork(20, 2, alpha=1e9)
        simulate(net, uniform_trace(20, 200, seed=1))
        assert net.rebuilds == 0

    def test_rebuild_reports_link_churn(self):
        net = LazyRebuildNetwork(20, 2, alpha=30)
        trace = permutation_trace(20, 300, seed=2)
        result = simulate(net, trace)
        assert result.total_links_changed > 0
        assert result.total_rotations == net.rebuilds

    def test_tree_stays_valid(self):
        net = LazyRebuildNetwork(25, 3, alpha=100)
        Simulator(validate_every=100).run(net, zipf_trace(25, 500, 1.3, seed=3))

    def test_self_request_free(self):
        assert LazyRebuildNetwork(10, 2).serve(4, 4).routing_cost == 0

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            LazyRebuildNetwork(10, 2, alpha=0)
        with pytest.raises(ExperimentError):
            LazyRebuildNetwork(10, 2, window=0)


class TestAdaptation:
    def test_beats_oblivious_tree_on_stable_skew(self):
        """After a rebuild, a skewed demand is served demand-aware."""
        n, m = 32, 3000
        trace = permutation_trace(n, m, seed=5)
        lazy = simulate(LazyRebuildNetwork(n, 2, alpha=500), trace)
        static = simulate(
            StaticTreeNetwork(build_complete_tree(n, 2)), trace
        )
        assert lazy.total_routing < 0.7 * static.total_routing

    def test_window_adapts_to_drift(self):
        """A sliding window tracks a demand shift; infinite memory lags."""
        n = 24
        first = permutation_trace(n, 1500, seed=6)
        second = permutation_trace(n, 1500, seed=7)
        drifting = first.concat(second)
        windowed = simulate(
            LazyRebuildNetwork(n, 2, alpha=300, window=500), drifting
        )
        unwindowed = simulate(
            LazyRebuildNetwork(n, 2, alpha=300), drifting
        )
        assert windowed.total_routing <= unwindowed.total_routing * 1.1

    def test_alpha_tradeoff(self):
        """Smaller alpha adapts faster (lower routing, more rebuilds)."""
        n, m = 32, 2500
        trace = permutation_trace(n, m, seed=8)
        fast = LazyRebuildNetwork(n, 2, alpha=200)
        slow = LazyRebuildNetwork(n, 2, alpha=5000)
        r_fast = simulate(fast, trace)
        r_slow = simulate(slow, trace)
        assert fast.rebuilds > slow.rebuilds
        assert r_fast.total_routing <= r_slow.total_routing
