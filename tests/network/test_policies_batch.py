"""Policy wrappers' batched ``serve_trace``: equivalence with per-request.

The historical bug: wrapped networks exposed no ``serve_trace``, so
``Simulator.run`` silently fell back to the slow per-request loop.  The
wrappers now expose a policy-correct batched path (decisions taken request
by request, in order; :class:`FrozenNetwork` collapses to one vectorized
static stretch); these tests pin its equivalence with the per-request path
on both tree engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ENGINES
from repro.core.flat import tree_signature
from repro.net import build_network
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)
from repro.network.simulator import Simulator
from repro.workloads.synthetic import zipf_trace

N, M, K = 96, 2_000, 3


def _trace():
    return zipf_trace(N, M, alpha=1.2, seed=5)


def _inner(engine):
    return build_network("kary-splaynet", n=N, k=K, engine=engine)


def _signature(network):
    inner = network.inner
    flat = getattr(inner, "flat", None)
    return flat.signature() if flat is not None else tree_signature(inner.tree)


WRAPPERS = [
    pytest.param(lambda inner: ThresholdedNetwork(inner, 2), id="thresholded"),
    pytest.param(
        lambda inner: ProbabilisticNetwork(inner, 0.5, seed=9), id="probabilistic"
    ),
    pytest.param(lambda inner: FrozenNetwork(inner), id="frozen"),
]


@pytest.mark.parametrize("make_wrapper", WRAPPERS)
@pytest.mark.parametrize("engine", ENGINES)
def test_batched_equals_per_request(make_wrapper, engine):
    trace = _trace()
    scalar_net = make_wrapper(_inner(engine))
    batched_net = make_wrapper(_inner(engine))

    results = [scalar_net.serve(int(u), int(v)) for u, v in trace.pairs()]
    batch = batched_net.serve_trace(
        trace.sources, trace.targets, record_series=True
    )

    assert batch.m == M
    assert batch.total_routing == sum(r.routing_cost for r in results)
    assert batch.total_rotations == sum(r.rotations for r in results)
    assert batch.total_links_changed == sum(r.links_changed for r in results)
    assert batch.routing_series.tolist() == [r.routing_cost for r in results]
    assert batch.rotation_series.tolist() == [r.rotations for r in results]
    assert _signature(scalar_net) == _signature(batched_net)


@pytest.mark.parametrize("make_wrapper", WRAPPERS)
def test_simulator_takes_fast_path(make_wrapper):
    """Simulator.run consumes the wrapper's serve_trace when validation is
    off — the wrapped-network fast path the bugfix adds."""
    trace = _trace()
    network = make_wrapper(_inner("flat"))
    calls = []
    original = network.serve_trace

    def spy(sources, targets=None, **kwargs):
        calls.append(True)
        return original(sources, targets, **kwargs)

    network.serve_trace = spy
    result = Simulator().run(network, trace)
    assert calls, "Simulator.run bypassed the wrapper's serve_trace"
    assert result.total_routing > 0


def test_frozen_vectorized_matches_scalar_loop():
    """FrozenNetwork's one-stretch vectorized path equals the generic
    scalar accumulation (and never mutates the inner topology)."""
    trace = _trace()
    frozen = FrozenNetwork(_inner("flat"))
    before = _signature(frozen)
    batch = frozen.serve_trace(trace.sources, trace.targets, record_series=True)
    scalar = [frozen.serve(int(u), int(v)) for u, v in trace.pairs()]
    assert batch.total_routing == sum(r.routing_cost for r in scalar)
    assert batch.total_rotations == 0
    assert batch.total_links_changed == 0
    assert (batch.rotation_series == 0).all()
    assert _signature(frozen) == before


def test_frozen_falls_back_without_tree():
    """Inner networks that cannot export a tree still batch correctly."""
    frozen = FrozenNetwork(build_network("centroid-splaynet", n=N, k=K))
    trace = _trace()
    batch = frozen.serve_trace(trace.sources, trace.targets)
    scalar = sum(
        frozen.serve(int(u), int(v)).routing_cost for u, v in trace.pairs()
    )
    assert batch.total_routing == scalar


def test_thresholded_counters_advance_in_batch():
    trace = _trace()
    wrapped = ThresholdedNetwork(_inner("flat"), 2)
    wrapped.serve_trace(trace.sources, trace.targets)
    assert wrapped.served == M
    assert 0 < wrapped.adjusted < M


def test_probabilistic_seeded_batch_reproducible():
    trace = _trace()
    totals = []
    for _ in range(2):
        wrapped = ProbabilisticNetwork(_inner("flat"), 0.3, seed=21)
        batch = wrapped.serve_trace(trace.sources, trace.targets)
        totals.append((batch.total_routing, batch.total_rotations, wrapped.adjusted))
    assert totals[0] == totals[1]


def test_wrapper_chain_batches():
    """A stacked chain (probabilistic over thresholded) batch-serves and
    matches its per-request twin."""
    trace = _trace()

    def chain():
        return ProbabilisticNetwork(
            ThresholdedNetwork(_inner("flat"), 1), 0.7, seed=3
        )

    batched = chain().serve_trace(trace.sources, trace.targets)
    scalar_net = chain()
    scalar = [scalar_net.serve(int(u), int(v)) for u, v in trace.pairs()]
    assert batched.total_routing == sum(r.routing_cost for r in scalar)
    assert batched.total_rotations == sum(r.rotations for r in scalar)


def test_batch_accepts_trace_object():
    trace = _trace()
    wrapped = ThresholdedNetwork(_inner("flat"), 2)
    batch = wrapped.serve_trace(trace)
    assert batch.m == trace.m


def test_record_series_dtype():
    trace = _trace()
    wrapped = FrozenNetwork(_inner("flat"))
    batch = wrapped.serve_trace(trace.sources, trace.targets, record_series=True)
    assert batch.routing_series.dtype == np.int64
    assert len(batch.routing_series) == trace.m
