"""Health supervision: the monitor state machine and the live supervisor.

Two layers, two speeds of test.  The :class:`HealthMonitor` state machine
runs under a fake clock (pure, exhaustive on the escalation deadlines);
the supervised-farm tests kill a real worker process and pin the
self-healing acceptance criteria: detection fires *before* any dispatch
has to fail, and warm-standby recovery replays at most
``checkpoint_every`` requests per key.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import ExperimentError
from repro.net import open_session
from repro.serving import (
    DOWN,
    HEALTHY,
    RECOVERING,
    SUSPECT,
    HealthConfig,
    HealthMonitor,
    ServeFarm,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def monitor(shards: int = 2, **kwargs) -> tuple[HealthMonitor, FakeClock]:
    clock = FakeClock()
    config = HealthConfig(
        interval=0.1, suspect_after=0.5, down_after=1.0, **kwargs
    )
    return HealthMonitor(shards, config, clock=clock), clock


class TestHealthConfig:
    def test_deadlines_must_escalate(self):
        with pytest.raises(ExperimentError):
            HealthConfig(interval=0.0)
        with pytest.raises(ExperimentError):
            HealthConfig(interval=0.5, suspect_after=0.5)
        with pytest.raises(ExperimentError):
            HealthConfig(interval=0.1, suspect_after=0.5, down_after=0.5)


class TestHealthMonitor:
    def test_starts_all_healthy(self):
        mon, _ = monitor()
        assert mon.states() == [HEALTHY, HEALTHY]
        assert mon.all_healthy()

    def test_silence_escalates_suspect_then_down(self):
        mon, clock = monitor()
        clock.advance(0.6)  # past suspect_after, short of down_after
        assert mon.observe() == []
        assert mon.state_of(0) == SUSPECT
        clock.advance(0.5)  # now past down_after
        assert mon.observe() == [0, 1]
        assert mon.states() == [DOWN, DOWN]
        # Already-down shards are not re-announced.
        clock.advance(1.0)
        assert mon.observe() == []

    def test_beat_heals_a_suspect_shard(self):
        mon, clock = monitor()
        clock.advance(0.6)
        mon.observe()
        assert mon.state_of(0) == SUSPECT
        assert mon.record_beat(0) == SUSPECT
        assert mon.state_of(0) == HEALTHY

    def test_beat_does_not_heal_down_or_recovering(self):
        # Only the farm's recovery path (mark) may end DOWN/RECOVERING:
        # a late beat from a half-dead worker must not fake a recovery.
        mon, clock = monitor()
        clock.advance(1.1)
        mon.observe()
        assert mon.state_of(0) == DOWN
        mon.record_beat(0)
        assert mon.state_of(0) == DOWN
        mon.mark(0, RECOVERING)
        mon.record_beat(0)
        assert mon.state_of(0) == RECOVERING
        mon.mark(0, HEALTHY)
        assert mon.state_of(0) == HEALTHY

    def test_transitions_are_recorded_as_events(self):
        mon, clock = monitor(shards=1)
        clock.advance(0.6)
        mon.observe()
        clock.advance(0.5)
        mon.observe()
        mon.mark(0, RECOVERING)
        mon.mark(0, HEALTHY)
        chain = [(old, new) for _, _, old, new in mon.events]
        assert chain == [
            (HEALTHY, SUSPECT),
            (SUSPECT, DOWN),
            (DOWN, RECOVERING),
            (RECOVERING, HEALTHY),
        ]

    def test_mark_rejects_unknown_state_and_shard(self):
        mon, _ = monitor()
        with pytest.raises(ExperimentError):
            mon.mark(0, "zombie")
        with pytest.raises(ExperimentError):
            mon.mark(7, HEALTHY)

    def test_snapshot_reports_silence(self):
        mon, clock = monitor(shards=1)
        clock.advance(0.3)
        snap = mon.snapshot()
        assert snap["states"] == [HEALTHY]
        assert snap["silence"][0] == pytest.approx(0.3)


FAST_HEALTH = HealthConfig(
    interval=0.05, suspect_after=0.2, down_after=0.6
)


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestSupervisedFarm:
    def test_kill_is_detected_and_healed_before_any_dispatch(self):
        """The tentpole acceptance: proactive recovery, zero dispatch errors.

        The worker is SIGKILLed while the farm is *idle*.  Supervision
        must notice (heartbeat-pipe EOF), respawn and heal the shard with
        no dispatch ever touching the dead pipe — so the recovery counts
        as proactive, and the next serve call succeeds first try.
        """
        with ServeFarm(
            "kary-splaynet", n=32, k=2, shards=1, health=FAST_HEALTH
        ) as farm:
            farm.serve_batch("a", [1, 2, 3], [9, 8, 7])
            old_pid = farm.shard_pids()[0]
            os.kill(old_pid, signal.SIGKILL)
            assert _wait_for(
                lambda: farm.recoveries["proactive"] == 1
                and farm.health_states() == [HEALTHY]
            ), f"no proactive recovery; states={farm.health_states()}"
            assert farm.recoveries["reactive"] == 0
            assert farm.shard_pids()[0] != old_pid
            # The healed worker serves immediately and the replayed
            # state is exact: same totals as an unkilled session.
            farm.serve_batch("a", [4, 5], [6, 5])
            clean = open_session("kary-splaynet", n=32, k=2)
            clean.serve_stream([1, 2, 3, 4, 5], [9, 8, 7, 6, 5])
            assert farm.session_metrics()["a"] == clean.metrics.to_dict()

    def test_health_event_chain_spans_the_recovery(self):
        with ServeFarm(
            "kary-splaynet", n=32, k=2, shards=1, health=FAST_HEALTH
        ) as farm:
            farm.serve("a", 1, 9)
            os.kill(farm.shard_pids()[0], signal.SIGKILL)
            assert _wait_for(lambda: farm.recoveries["proactive"] == 1)
            chain = [(old, new) for _, shard, old, new in farm.health.events]
            assert (HEALTHY, DOWN) in chain or (SUSPECT, DOWN) in chain
            assert (DOWN, RECOVERING) in chain
            assert (RECOVERING, HEALTHY) in chain

    def test_warm_standby_bounds_replay_to_checkpoint_cadence(self):
        """With checkpoint_every=N, recovery replays at most N per key."""
        checkpoint_every = 8
        with ServeFarm(
            "kary-splaynet",
            n=32,
            k=2,
            shards=1,
            health=FAST_HEALTH,
            checkpoint_every=checkpoint_every,
        ) as farm:
            sources = [1 + (i % 31) for i in range(40)]
            targets = [1 + ((i * 7) % 31) for i in range(40)]
            farm.serve_batch("a", sources, targets)
            os.kill(farm.shard_pids()[0], signal.SIGKILL)
            assert _wait_for(lambda: farm.recoveries["proactive"] == 1)
            # 40 requests served, snapshots every 8: the journal suffix
            # past the last checkpoint is all that replays.
            assert farm.replayed_requests <= checkpoint_every
            farm.serve_batch("a", [3, 4], [30, 29])
            clean = open_session("kary-splaynet", n=32, k=2)
            clean.serve_stream(sources + [3, 4], targets + [30, 29])
            assert farm.session_metrics()["a"] == clean.metrics.to_dict()

    def test_supervision_off_restores_the_reactive_farm(self):
        with ServeFarm(
            "kary-splaynet",
            n=32,
            k=2,
            shards=1,
            health=HealthConfig(enabled=False),
        ) as farm:
            assert farm.health is None
            assert farm.health_states() == [HEALTHY]
            farm.serve("a", 1, 9)
            old_pid = farm.shard_pids()[0]
            os.kill(old_pid, signal.SIGKILL)
            # No supervisor: the death surfaces on the next dispatch and
            # the reactive replay path absorbs it.
            farm.serve("a", 2, 8)
            assert farm.recoveries == {"proactive": 0, "reactive": 1}
            assert farm.shard_pids()[0] != old_pid
