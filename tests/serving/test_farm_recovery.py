"""Serve-farm fault tolerance: killed shard workers respawn and replay.

The satellite reliability gate of the serve farm: a worker hard-exiting
mid-campaign (``farm.serve`` injection point, ``kill`` mode — a SIGKILL
stand-in) costs one respawn and zero correctness.  The respawned worker
rebuilds its sessions by replaying the parent's journal of acknowledged
batches, so the campaign's results are cell-for-cell identical to a run
with no fault at all.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import ReliabilityError
from repro.net import open_session
from repro.serving import ServeFarm
from repro.reliability.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
)


def keyed_requests(n: int, m: int, keys: int, seed: int = 0):
    rng = random.Random(seed)
    return [
        (
            f"key-{i % keys}",
            rng.randrange(1, n + 1),
            rng.randrange(1, n + 1),
        )
        for i in range(m)
    ]


def per_key_pairs(requests):
    split: dict = {}
    for key, u, v in requests:
        split.setdefault(key, []).append((u, v))
    return split


def _activate_for_workers(plan: FaultPlan) -> None:
    """Publish a plan the way worker processes see it: via the env."""
    os.environ[FAULTS_ENV] = plan.to_env()
    clear_fault_plan()


def _clean_run(requests, n, k):
    clean = {}
    for key, pairs in per_key_pairs(requests).items():
        session = open_session("kary-splaynet", n=n, k=k)
        session.serve_stream(pairs)
        clean[key] = session.metrics.to_dict()
    return clean


class TestWorkerKillRecovery:
    def test_killed_shard_respawns_and_results_match_clean_run(
        self, tmp_path
    ):
        """A worker killed mid-campaign is respawned, its journal replayed,
        and every per-key result equals the fault-free run cell for cell.

        The ledger makes the kill one-shot: the claim file outlives the
        dead worker, so neither the respawned worker's journal replay nor
        the re-sent in-flight window re-fires it.
        """
        n, k = 40, 3
        requests = keyed_requests(n, 600, keys=6, seed=3)
        plan = FaultPlan(
            specs=(FaultSpec("farm.serve", mode="kill", at=(3,)),),
            ledger=str(tmp_path / "ledger"),
        )
        _activate_for_workers(plan)
        try:
            with ServeFarm(
                "kary-splaynet", n=n, k=k, shards=2, window=100
            ) as farm:
                batch = farm.serve_stream(requests)
                assert farm.respawns == 1
                farm_metrics = farm.session_metrics()
                aggregate = farm.metrics.to_dict()
        finally:
            os.environ.pop(FAULTS_ENV, None)
            clear_fault_plan()

        assert batch.m == 600
        clean = _clean_run(requests, n, k)
        assert farm_metrics == clean
        # The aggregate counted every request exactly once (no replay
        # double counting, no lost in-flight window).
        assert aggregate == {
            "requests": 600,
            "total_routing": sum(m["total_routing"] for m in clean.values()),
            "total_rotations": sum(
                m["total_rotations"] for m in clean.values()
            ),
            "total_links_changed": sum(
                m["total_links_changed"] for m in clean.values()
            ),
        }

    def test_crash_loop_exhausts_respawn_budget(self, tmp_path):
        """A shard that dies on every attempt becomes a loud
        ReliabilityError once max_respawns is spent, not a hang."""
        plan = FaultPlan(
            specs=(FaultSpec("farm.serve", mode="kill", at=(1, 2, 3, 4)),),
            ledger=str(tmp_path / "ledger"),
        )
        _activate_for_workers(plan)
        try:
            with ServeFarm(
                "kary-splaynet", n=16, k=2, shards=1, max_respawns=1
            ) as farm:
                with pytest.raises(ReliabilityError, match="gave up"):
                    farm.serve("a", 1, 9)
                assert farm.respawns == 2  # budget + the failed attempt
        finally:
            os.environ.pop(FAULTS_ENV, None)
            clear_fault_plan()

    def test_injected_error_is_relayed_not_fatal(self, tmp_path):
        """``error`` mode surfaces as ReliabilityError in the parent while
        the worker survives and keeps serving."""
        plan = FaultPlan(
            specs=(FaultSpec("farm.serve", mode="error", at=(1,)),),
            ledger=str(tmp_path / "ledger"),
        )
        _activate_for_workers(plan)
        try:
            with ServeFarm("kary-splaynet", n=16, k=2, shards=1) as farm:
                with pytest.raises(ReliabilityError, match="FaultInjected"):
                    farm.serve("a", 1, 9)
                assert farm.respawns == 0
                farm.serve("a", 1, 9)  # same worker, still alive
                assert farm.metrics.requests == 1
        finally:
            os.environ.pop(FAULTS_ENV, None)
            clear_fault_plan()
