"""Shard routing: stable hashing and window splitting."""

from __future__ import annotations

import zlib

import pytest

from repro.errors import ExperimentError
from repro.serving import ShardRouter, shard_for_key


class TestShardForKey:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 3, 7):
            for key in ("a", "user-42", "", 17, ("tuple", 1)):
                shard = shard_for_key(key, shards)
                assert 0 <= shard < shards
                assert shard == shard_for_key(key, shards)

    def test_crc32_of_utf8_text_not_builtin_hash(self):
        """The routing hash must be process-stable (PYTHONHASHSEED-proof)."""
        assert shard_for_key("user-7", 5) == zlib.crc32(b"user-7") % 5
        assert shard_for_key(123, 5) == zlib.crc32(b"123") % 5

    def test_bytes_keys_hash_raw(self):
        assert shard_for_key(b"user-7", 5) == zlib.crc32(b"user-7") % 5

    def test_single_shard_owns_everything(self):
        assert all(shard_for_key(f"k{i}", 1) == 0 for i in range(20))

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ExperimentError):
            shard_for_key("x", 0)
        with pytest.raises(ExperimentError):
            ShardRouter(-1)


class TestSplit:
    def test_groups_per_key_in_arrival_order(self):
        router = ShardRouter(2)
        window = [("a", 1, 2), ("b", 3, 4), ("a", 5, 6), ("b", 7, 8)]
        grouped = router.split(window)
        flat = {
            key: (sources, targets)
            for batches in grouped.values()
            for key, sources, targets in batches
        }
        assert flat == {"a": ([1, 5], [2, 6]), "b": ([3, 7], [4, 8])}

    def test_batches_land_on_their_owning_shard(self):
        router = ShardRouter(3)
        window = [(f"key-{i}", i, i + 1) for i in range(30)]
        grouped = router.split(window)
        for shard, batches in grouped.items():
            for key, _, _ in batches:
                assert router.shard_of(key) == shard

    def test_empty_window(self):
        assert ShardRouter(4).split([]) == {}

    def test_endpoints_coerced_to_int(self):
        grouped = ShardRouter(1).split([("a", "3", 4.0)])
        [(_, sources, targets)] = grouped[0]
        assert sources == [3] and targets == [4]
        assert all(type(x) is int for x in sources + targets)
