"""Property tests for the serving substrate's two exactness contracts.

* ``LatencyStats`` merge is *exact*: histogram state after merging any
  split of a stream equals the state of recording the whole stream — the
  property the farm relies on when it merges per-shard histograms into
  one aggregate (and the ingress bench relies on client-side).
* ``shard_for_key`` is *cross-process stable*: CRC-32 of the key's UTF-8
  text, independent of ``PYTHONHASHSEED`` — the property that lets a
  respawned worker (or a different host) route the same keys to the same
  shards.  Pinned digests keep the function from silently changing.

Needs hypothesis (installed in CI); skipped gracefully when absent.
"""

from __future__ import annotations

import os
import subprocess
import sys
import zlib

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.net.session import LatencyStats  # noqa: E402
from repro.serving import shard_for_key  # noqa: E402

# Latencies across the histogram's whole dynamic range, including the
# sub-resolution and beyond-range extremes that clamp into end buckets.
_latency = st.one_of(
    st.floats(min_value=1e-10, max_value=1e4),
    st.just(0.0),
    st.just(1e9),
)


class TestLatencyStatsMergeExactness:
    @given(
        samples=st.lists(_latency, max_size=60),
        cut=st.integers(min_value=0, max_value=60),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_merge_of_any_split_equals_the_whole(self, samples, cut, data):
        cut = min(cut, len(samples))
        whole = LatencyStats()
        for s in samples:
            whole.record(s)
        left, right = LatencyStats(), LatencyStats()
        for s in samples[:cut]:
            left.record(s)
        for s in samples[cut:]:
            right.record(s)
        left.merge(right)
        assert left.total == whole.total == len(samples)
        assert left.counts == whole.counts
        if samples:
            q = data.draw(st.floats(min_value=0.0, max_value=1.0))
            assert left.percentile(q) == whole.percentile(q)

    @given(samples=st.lists(_latency, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_merge_with_empty_is_identity(self, samples):
        stats = LatencyStats()
        for s in samples:
            stats.record(s)
        before = (list(stats.counts), stats.total)
        stats.merge(LatencyStats())
        assert (list(stats.counts), stats.total) == before

    @given(
        a=st.lists(_latency, max_size=30),
        b=st.lists(_latency, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative(self, a, b):
        def stats_of(samples):
            stats = LatencyStats()
            for s in samples:
                stats.record(s)
            return stats

        ab, ba = stats_of(a), stats_of(b)
        ab.merge(stats_of(b))
        ba.merge(stats_of(a))
        assert ab.counts == ba.counts
        assert ab.total == ba.total


class TestShardForKeyStability:
    # Frozen digests: changing the routing hash silently would strand
    # every resident session on the wrong shard after an upgrade.
    PINNED = {
        ("tenant-7", 2): zlib.crc32(b"tenant-7") % 2,
        ("tenant-7", 8): zlib.crc32(b"tenant-7") % 8,
        ("", 3): zlib.crc32(b"") % 3,
        ("clé-λ", 5): zlib.crc32("clé-λ".encode("utf-8")) % 5,
    }

    def test_pinned_digests(self):
        for (key, shards), expected in self.PINNED.items():
            assert shard_for_key(key, shards) == expected

    @given(
        key=st.text(max_size=64),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_is_crc32_of_utf8(self, key, shards):
        assert shard_for_key(key, shards) == (
            zlib.crc32(key.encode("utf-8")) % shards
        )

    @given(
        key=st.one_of(st.text(max_size=32), st.integers()),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_in_range_and_deterministic(self, key, shards):
        shard = shard_for_key(key, shards)
        assert 0 <= shard < shards
        assert shard == shard_for_key(key, shards)

    def test_independent_of_pythonhashseed_across_processes(self):
        """The digest a fresh interpreter computes under two different
        hash seeds must match this process — builtin ``hash`` would
        fail this for str keys."""
        keys = ["tenant-7", "", "clé-λ", "a" * 50]
        script = (
            "import json,sys\n"
            "from repro.serving import shard_for_key\n"
            "keys = json.loads(sys.argv[1])\n"
            "print(json.dumps([shard_for_key(k, 8) for k in keys]))\n"
        )
        import json

        expected = [shard_for_key(k, 8) for k in keys]
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        for seed in ("0", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", script, json.dumps(keys)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert json.loads(out.stdout) == expected, (
                f"shard routing drifted under PYTHONHASHSEED={seed}"
            )
