"""Serve-farm behaviour: equivalence with clean sessions, metrics, API."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import native_available
from repro.errors import ExperimentError
from repro.net import open_session
from repro.serving import FarmMetrics, ServeFarm


def keyed_requests(n: int, m: int, keys: int, seed: int = 0):
    rng = random.Random(seed)
    return [
        (
            f"key-{i % keys}",
            rng.randrange(1, n + 1),
            rng.randrange(1, n + 1),
        )
        for i in range(m)
    ]


def per_key_pairs(requests):
    split: dict = {}
    for key, u, v in requests:
        split.setdefault(key, []).append((u, v))
    return split


class TestFarmEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_matches_clean_single_process_sessions(self, shards):
        """Farm results are cell-for-cell the clean per-key session runs,
        at every shard count — sharding must never change an outcome."""
        n, k = 48, 3
        requests = keyed_requests(n, 400, keys=5, seed=shards)
        with ServeFarm(
            "kary-splaynet", n=n, k=k, shards=shards, window=64
        ) as farm:
            batch = farm.serve_stream(requests)
            farm_metrics = farm.session_metrics()
        clean_metrics = {}
        for key, pairs in per_key_pairs(requests).items():
            session = open_session("kary-splaynet", n=n, k=k)
            session.serve_stream(pairs)
            clean_metrics[key] = session.metrics.to_dict()
        assert farm_metrics == clean_metrics
        assert batch.m == 400
        assert batch.total_routing == sum(
            m["total_routing"] for m in clean_metrics.values()
        )

    def test_aggregate_metrics_track_dispatches(self):
        n = 32
        requests = keyed_requests(n, 150, keys=4, seed=9)
        with ServeFarm("kary-splaynet", n=n, k=2, shards=2, window=50) as farm:
            batch = farm.serve_stream(requests)
            metrics = farm.metrics
            assert metrics.requests == batch.m == 150
            assert metrics.total_routing == batch.total_routing
            assert metrics.total_rotations == batch.total_rotations
            assert metrics.total_links_changed == batch.total_links_changed
            assert metrics.average_routing == pytest.approx(
                batch.total_routing / 150
            )
            # Latency and busy accounting advanced with the stream.
            assert metrics.latency.total == 150
            assert metrics.latency_p99 >= metrics.latency_p50 > 0.0
            assert metrics.critical_path_seconds >= 0.0
            assert sum(metrics.busy_seconds.values()) >= 0.0
            # The deterministic to_dict view excludes timing.
            assert metrics.to_dict() == {
                "requests": 150,
                "total_routing": batch.total_routing,
                "total_rotations": batch.total_rotations,
                "total_links_changed": batch.total_links_changed,
            }

    def test_scalar_and_batch_serving(self):
        with ServeFarm("kary-splaynet", n=16, k=2, shards=2) as farm:
            farm.serve("a", 1, 9)
            result = farm.serve_batch("b", [2, 3], [10, 11])
            assert result.m == 2
            assert farm.metrics.requests == 3
            per_key = farm.session_metrics()
            assert per_key["a"]["requests"] == 1
            assert per_key["b"]["requests"] == 2


class TestFarmEngines:
    def test_workers_use_native_when_available_else_flat(self):
        """The farm defaults to resident native trees; without the kernel
        (REPRO_NATIVE=0 / no toolchain) every worker degrades to flat."""
        expected = "native" if native_available() else "flat"
        with ServeFarm("kary-splaynet", n=16, k=2, shards=2) as farm:
            farm.serve("a", 1, 9)
            farm.serve("b", 2, 10)
            engines = set()
            for status in farm.status():
                assert status["native_available"] == native_available()
                engines.update(status["sessions"].values())
        assert engines == {expected}

    def test_explicit_spec_engine_is_respected(self):
        with ServeFarm(
            "kary-splaynet", n=16, k=2, engine="flat", shards=1
        ) as farm:
            farm.serve("a", 1, 9)
            [status] = farm.status()
            assert set(status["sessions"].values()) == {"flat"}


class TestFarmApi:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ExperimentError):
            ServeFarm("kary-splaynet", n=8, shards=0)
        with pytest.raises(ExperimentError):
            ServeFarm("kary-splaynet", n=8, window=0)
        with pytest.raises(ExperimentError):
            ServeFarm("kary-splaynet", n=8, max_respawns=-1)
        with ServeFarm("kary-splaynet", n=8, shards=1) as farm:
            with pytest.raises(ExperimentError):
                farm.serve_batch("a", [1, 2], [3])
            with pytest.raises(ExperimentError):
                farm.serve_stream([("a", 1, 2)], window=0)

    def test_closed_farm_refuses_work(self):
        farm = ServeFarm("kary-splaynet", n=8, shards=1)
        farm.serve("a", 1, 5)
        farm.close()
        farm.close()  # idempotent
        with pytest.raises(ExperimentError):
            farm.serve("a", 1, 5)
        with pytest.raises(ExperimentError):
            farm.status()

    def test_worker_errors_surface_in_parent(self):
        from repro.errors import ReliabilityError

        with ServeFarm("kary-splaynet", n=8, shards=1) as farm:
            with pytest.raises(ReliabilityError):
                farm.serve("a", 1, 99)  # out of range in the worker

    def test_farm_metrics_dataclass_defaults(self):
        metrics = FarmMetrics()
        assert metrics.requests == 0
        assert metrics.average_routing == 0.0
        assert metrics.critical_path_seconds == 0.0
        metrics.record_batch(0, 10, 30, 5, 2, 0.01, 0.008)
        assert metrics.requests == 10
        assert metrics.busy_seconds == {0: pytest.approx(0.008)}
        assert metrics.windows == 1


class TestStartupLeak:
    def test_partial_spawn_failure_leaks_no_workers(self, monkeypatch):
        """When a later worker fails to spawn, the constructor must tear
        down the workers it already started instead of leaking them —
        the regression where shard 0's process outlived the failed
        ``ServeFarm(...)`` call with nobody holding a handle to it."""
        real = ServeFarm._start_worker
        spawned = []

        def flaky(self, shard):
            if shard == 1:
                raise RuntimeError("spawn budget exhausted")
            real(self, shard)
            spawned.append((self._procs[shard], self._conns[shard]))

        monkeypatch.setattr(ServeFarm, "_start_worker", flaky)
        with pytest.raises(RuntimeError, match="spawn budget"):
            ServeFarm("kary-splaynet", n=8, shards=2)
        assert spawned, "shard 0 never started — the test proved nothing"
        [(proc, conn)] = spawned
        proc.join(timeout=10.0)
        assert not proc.is_alive(), "shard 0 worker leaked past __init__"
        assert conn.closed

    def test_failed_constructor_farm_is_closed(self, monkeypatch):
        def always_fail(self, shard):
            raise OSError("cannot fork")

        monkeypatch.setattr(ServeFarm, "_start_worker", always_fail)
        with pytest.raises(OSError, match="fork"):
            ServeFarm("kary-splaynet", n=8, shards=1)


class TestServeGrouped:
    """The ingress gateway's dispatch primitive: one round trip per
    coalesced list, exact per-entry totals."""

    def test_per_batch_results_match_individual_calls(self):
        n, k = 32, 2
        rng = random.Random(3)
        pairs = [
            (rng.randrange(1, n + 1), rng.randrange(1, n + 1))
            for _ in range(30)
        ]
        with ServeFarm("kary-splaynet", n=n, k=k, shards=2) as farm:
            key = "grouped-key"
            shard = farm.router.shard_of(key)
            batches = [
                (key, [u for u, _ in pairs], [v for _, v in pairs]),
            ]
            [grouped] = farm.serve_grouped(shard, batches)
            windows_after = farm.metrics.windows
        session = open_session("kary-splaynet", n=n, k=k)
        clean = session.serve_stream(pairs)
        assert grouped.m == clean.m
        assert grouped.total_routing == clean.total_routing
        assert grouped.total_rotations == clean.total_rotations
        assert grouped.total_links_changed == clean.total_links_changed
        assert windows_after == 1  # the whole list cost one round trip

    def test_multiple_keys_one_round_trip_with_per_key_totals(self):
        n = 16
        with ServeFarm("kary-splaynet", n=n, k=2, shards=1) as farm:
            batches = [
                ("a", [1, 2], [9, 10]),
                ("b", [3], [11]),
                ("a", [4], [12]),  # same key again: served in order
            ]
            results = farm.serve_grouped(0, batches)
            assert [r.m for r in results] == [2, 1, 1]
            assert farm.metrics.windows == 1
            assert farm.metrics.requests == 4

    def test_wrong_shard_key_is_rejected(self):
        with ServeFarm("kary-splaynet", n=8, shards=2) as farm:
            key = "some-key"
            wrong = 1 - farm.router.shard_of(key)
            with pytest.raises(ExperimentError, match="routes to shard"):
                farm.serve_grouped(wrong, [(key, [1], [2])])

    def test_mismatched_lengths_and_empty_list(self):
        with ServeFarm("kary-splaynet", n=8, shards=1) as farm:
            with pytest.raises(ExperimentError, match="equal length"):
                farm.serve_grouped(0, [("a", [1, 2], [3])])
            assert farm.serve_grouped(0, []) == []
            assert farm.metrics.windows == 0
