"""The scenario registry: expansion of the paper's grid, JSON round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.presets import SMOKE
from repro.experiments.tables import TABLE_WORKLOAD
from repro.scenarios import (
    expand,
    register_scenario,
    remark10_specs,
    scenario_names,
    specs_from_json,
    specs_to_json,
)
from repro.scenarios.registry import _REGISTRY


class TestRegistry:
    def test_every_paper_table_is_registered(self):
        names = scenario_names()
        for number in range(1, 8):
            assert f"table{number}" in names
        assert "table8" in names and "remark10" in names and "all" in names

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            expand("table99", SMOKE)

    def test_table_specs_match_paper_workloads(self):
        for number, workload in TABLE_WORKLOAD.items():
            specs = expand(f"table{number}", SMOKE)
            assert {spec.workload for spec in specs} == {workload}
            assert {spec.k for spec in specs} == set(SMOKE.ks)
            assert {spec.group for spec in specs} == {f"table{number}"}

    def test_kary_table_cell_structure(self):
        specs = expand("table5", SMOKE)
        per_k = len(specs) / len(SMOKE.ks)
        assert per_k == 3  # online + full tree + optimal (n under DP budget)
        assert {s.algorithm for s in specs} == {
            "kary-splaynet", "full-tree", "optimal-tree"
        }

    def test_optimal_respects_dp_budget(self):
        import dataclasses

        capped = dataclasses.replace(SMOKE, optimal_tree_max_n=8)
        specs = expand("table5", capped)
        assert not any(s.algorithm == "optimal-tree" for s in specs)

    def test_table8_structure(self):
        specs = expand("table8", SMOKE)
        uniform = [s for s in specs if s.workload == "uniform"]
        assert [s.algorithm for s in uniform] == [
            "centroid-splaynet", "splaynet", "full-tree", "optimal-bst"
        ]
        assert all(s.k == 2 for s in specs)

    def test_remark10_is_analytic(self):
        specs = remark10_specs(ns=(10, 25), ks=(2, 3))
        assert len(specs) == 2 * 2 * 3
        assert all(s.kind == "analytic" and s.m == 0 for s in specs)

    def test_all_concatenates_everything(self):
        total = sum(
            len(expand(name, SMOKE))
            for name in scenario_names()
            if name.startswith("table") or name == "remark10"
        )
        assert len(expand("all", SMOKE)) == total

    def test_engine_pins_online_cells_only(self):
        specs = expand("table4", SMOKE, engine="object")
        for spec in specs:
            if spec.algorithm == "kary-splaynet":
                assert spec.engine == "object"
            else:
                assert spec.engine is None

    def test_register_new_scenario(self):
        register_scenario(
            "tiny-demo",
            lambda scale, engine: remark10_specs(ns=(10,), ks=(2,), group="demo"),
        )
        try:
            assert "tiny-demo" in scenario_names()
            assert len(expand("tiny-demo", SMOKE)) == 3
        finally:
            _REGISTRY.pop("tiny-demo", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ExperimentError):
            register_scenario("", lambda scale, engine: [])


class TestRegistryJsonRoundTrip:
    @pytest.mark.parametrize("name", ["table1", "table8", "remark10", "zipf"])
    def test_expansion_round_trips_through_json(self, name):
        specs = expand(name, SMOKE)
        assert specs_from_json(specs_to_json(specs)) == specs
