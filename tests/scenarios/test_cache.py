"""The per-cell result cache: correctness, keying, refresh, threading."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.scenarios import (
    JsonlResultSink,
    ResultCache,
    ScenarioSpec,
    read_results_jsonl,
    run_specs,
    spec_cache_key,
)
from repro.scenarios.cache import resolve_result_cache
from repro.workloads.synthetic import zipf_trace


def spec(**overrides):
    fields = dict(
        workload="temporal-0.5", n=24, m=300, seed=7, algorithm="kary-splaynet", k=3
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def totals(result):
    return (
        result.total_routing,
        result.total_rotations,
        result.total_links_changed,
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeying:
    def test_group_and_cost_model_do_not_split_the_key(self):
        base = spec(group="table4", cost_model="routing")
        assert spec_cache_key(base) == spec_cache_key(
            spec(group="elsewhere", cost_model="unit_rotations")
        )

    def test_engine_none_resolves_to_flat_key(self):
        assert spec_cache_key(spec(engine=None)) == spec_cache_key(
            spec(engine="flat")
        )
        assert spec_cache_key(spec(engine="object")) != spec_cache_key(
            spec(engine="flat")
        )

    def test_behavioural_fields_split_the_key(self):
        base = spec()
        for changed in (
            spec(k=4),
            spec(seed=8),
            spec(m=301),
            spec(workload="temporal-0.25"),
            spec(algorithm="full-tree"),
        ):
            assert spec_cache_key(base) != spec_cache_key(changed)


class TestCachedEqualsFresh:
    @pytest.mark.parametrize("engine", ["flat", "object"])
    def test_cached_cell_matches_fresh_cell(self, cache, engine):
        fresh = run_specs([spec(engine=engine)], cache=cache)[0]
        assert cache.stores == 1 and cache.hits == 0
        cached = run_specs([spec(engine=engine)], cache=cache)[0]
        assert cache.hits == 1
        assert totals(cached) == totals(fresh)
        assert cached.spec == fresh.spec

    def test_hit_reattaches_the_requesting_spec(self, cache):
        run_specs([spec(group="first")], cache=cache)
        hit = run_specs([spec(group="second")], cache=cache)[0]
        assert cache.hits == 1
        assert hit.spec.group == "second"

    def test_pooled_run_skips_cached_cells(self, cache):
        specs = [spec(k=k) for k in (2, 3, 4)]
        serial = run_specs(specs, cache=cache)
        assert cache.stores == len(specs)
        pooled = run_specs(specs, jobs=2, cache=cache)
        assert cache.hits == len(specs)
        assert [totals(r) for r in pooled] == [totals(r) for r in serial]
        assert [r.spec for r in pooled] == specs

    def test_mixed_hits_and_misses_preserve_order(self, cache):
        run_specs([spec(k=3)], cache=cache)
        specs = [spec(k=2), spec(k=3), spec(k=4)]
        results = run_specs(specs, cache=cache)
        assert [r.spec for r in results] == specs
        assert cache.hits == 1 and cache.stores == 3

    def test_cached_cells_still_stream_to_the_sink(self, cache, tmp_path):
        path = tmp_path / "results.jsonl"
        specs = [spec(k=2), spec(k=3)]
        run_specs(specs, cache=cache)
        with JsonlResultSink(path) as sink:
            results = run_specs(specs, cache=cache, sink=sink)
        assert read_results_jsonl(path) == results
        assert cache.hits == len(specs)


class TestRefreshAndPoisoning:
    def test_refresh_recomputes_a_poisoned_entry(self, cache):
        honest = run_specs([spec()], cache=cache)[0]
        # Poison the stored totals on disk: a plain cached run must serve
        # the poison (proving the cache is actually consulted) ...
        path = cache._path(spec_cache_key(spec()))
        data = json.loads(path.read_text())
        data["result"]["total_routing"] = honest.total_routing + 999
        path.write_text(json.dumps(data))
        poisoned = run_specs([spec()], cache=cache)[0]
        assert poisoned.total_routing == honest.total_routing + 999
        # ... and --refresh must recompute and heal the entry.
        refreshed = run_specs([spec()], cache=cache, refresh=True)[0]
        assert totals(refreshed) == totals(honest)
        healed = run_specs([spec()], cache=cache)[0]
        assert totals(healed) == totals(honest)

    def test_version_mismatch_is_a_miss(self, cache):
        run_specs([spec()], cache=cache)
        path = cache._path(spec_cache_key(spec()))
        data = json.loads(path.read_text())
        data["key_fields"]["version"] = -1
        path.write_text(json.dumps(data))
        run_specs([spec()], cache=cache)
        assert cache.hits == 0
        assert cache.stores == 2  # recomputed and re-stored

    def test_corrupt_entry_is_a_miss_not_a_crash(self, cache):
        run_specs([spec()], cache=cache)
        path = cache._path(spec_cache_key(spec()))
        path.write_text("{not json")
        result = run_specs([spec()], cache=cache)[0]
        assert result.total_routing > 0
        assert cache.hits == 0


class TestPinnedTracesBypass:
    def test_custom_trace_cells_are_neither_served_nor_stored(self, cache):
        # A trace the key could NOT regenerate: pinned under the zipf-1.4
        # coordinates but actually drawn with alpha=2.2, seed 5.
        trace = zipf_trace(24, 300, 2.2, seed=5)
        s = spec(workload="zipf-1.4", seed=99)
        # Seed the cache with the *generated* zipf-1.4 trace's result.
        generated = run_specs([s], cache=cache)[0]
        pinned = run_specs([s], cache=cache, traces={s.trace_key(): trace})[0]
        # The custom trace differs from the generated one; a cache hit
        # here would silently report the wrong workload's totals.
        assert cache.hits == 0
        assert totals(pinned) != totals(generated)
        # And the pinned result must not have overwritten the entry.
        after = run_specs([s], cache=cache)[0]
        assert totals(after) == totals(generated)


class TestResolution:
    def test_explicit_false_disables_even_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        assert resolve_result_cache(False) is None

    def test_env_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        resolved = resolve_result_cache(None)
        assert isinstance(resolved, ResultCache)
        assert resolved.root == tmp_path / "cache"
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert resolve_result_cache(None) is None

    def test_instance_passes_through(self, cache):
        assert resolve_result_cache(cache) is cache

    def test_parallel_traces_still_rejected(self, cache):
        trace = zipf_trace(24, 300, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)
        with pytest.raises(ExperimentError):
            run_specs([s], jobs=2, cache=cache, traces={s.trace_key(): trace})


class TestCrashResume:
    def test_serial_no_sink_run_stores_completed_cells_before_a_crash(
        self, cache
    ):
        # The second cell explodes during trace materialization; the
        # first cell's entry must already be in the cache so a resumed
        # campaign skips it.
        crashing = [spec(k=2), spec(workload="zipf-oops", seed=1)]
        with pytest.raises(ExperimentError):
            run_specs(crashing, cache=cache)
        assert cache.stores == 1
        resumed = run_specs([spec(k=2)], cache=cache)
        assert cache.hits == 1
        assert resumed[0].total_routing > 0


class TestEnvOptOut:
    def test_env_disables_cache_helper(self, monkeypatch):
        from repro.scenarios.cache import env_disables_cache

        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert not env_disables_cache()
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert env_disables_cache()
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        assert not env_disables_cache()

    def test_scenarios_run_cli_honors_the_opt_out(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert main(["scenarios", "run", "table6", "--scale", "smoke"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "cache").exists()
        monkeypatch.delenv("REPRO_RESULT_CACHE")
        assert main(["scenarios", "run", "table6", "--scale", "smoke"]) == 0
        capsys.readouterr()
        assert (tmp_path / "cache").exists()
