"""Serial ≡ parallel ≡ flat-engine equivalence through the scenario core.

The acceptance bar of the scenario refactor: the same table must come out
bit-identical whether cells run serially or across workers, and whether
the self-adjusting cells serve on the object or the flat tree engine —
at which point defaulting the reproduction pipeline to the fast backend
is a pure speedup, not a behaviour change.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import SMOKE, Scale
from repro.experiments.runner import run_all
from repro.experiments.tables import run_kary_table, run_table8

TINY = Scale(
    name="tiny",
    m=600,
    uniform_n=24,
    hpc_n=27,
    projector_n=24,
    facebook_n=32,
    temporal_n=31,
    ks=(2, 3),
    optimal_tree_max_n=64,
)


def _table_fields(result):
    return (result.splaynet, result.rotations, result.links, result.fulltree,
            result.optimal, result.n, result.m)


class TestKAryTableEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        """The object-engine serial run — the historical code path."""
        return run_kary_table("temporal-0.5", scale=TINY, engine="object")

    def test_flat_engine_matches_object(self, reference):
        flat = run_kary_table("temporal-0.5", scale=TINY, engine="flat")
        assert _table_fields(flat) == _table_fields(reference)

    def test_default_engine_matches_object(self, reference):
        default = run_kary_table("temporal-0.5", scale=TINY)
        assert _table_fields(default) == _table_fields(reference)

    @pytest.mark.parametrize("engine", ["object", "flat"])
    def test_parallel_matches_serial_per_engine(self, reference, engine):
        parallel = run_kary_table(
            "temporal-0.5", scale=TINY, engine=engine, jobs=2
        )
        assert _table_fields(parallel) == _table_fields(reference)


class TestTable8Equivalence:
    def test_both_engines_and_job_counts_agree(self):
        workloads = ("uniform", "temporal-0.9")
        runs = [
            run_table8(scale=TINY, workloads=workloads, engine=engine, jobs=jobs)
            for engine in ("object", "flat")
            for jobs in (1, 2)
        ]
        reference = runs[0]
        for other in runs[1:]:
            for workload in workloads:
                a, b = reference.row(workload), other.row(workload)
                assert b.centroid3.total_routing == a.centroid3.total_routing
                assert b.centroid3.total_rotations == a.centroid3.total_rotations
                assert b.splaynet.total_routing == a.splaynet.total_routing
                assert b.full_binary_cost == a.full_binary_cost
                assert b.optimal_bst_cost == a.optimal_bst_cost


class TestReproducePipelineCrossEngine:
    def test_run_all_summaries_identical_across_engines_at_smoke_scale(self):
        """The satellite assertion: `repro reproduce` produces identical
        table summaries through the scenario core on both engines."""
        def summary(engine):
            report = run_all(
                scale=SMOKE,
                tables=(6,),
                include_table8=False,
                include_remark10=False,
                verbose=False,
                engine=engine,
            )
            data = report.summary()
            data.pop("elapsed_seconds")
            data.pop("engine")
            return data

        assert summary("object") == summary("flat")
