"""ScenarioSpec: validation, classification, JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.scenarios import (
    ScenarioSpec,
    specs_from_json,
    specs_to_json,
)
from repro.scenarios.spec import DEFAULT_ONLINE_ENGINE


def spec(**overrides):
    fields = dict(
        workload="temporal-0.5", n=32, m=200, seed=7, algorithm="kary-splaynet", k=3
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ExperimentError):
            spec(algorithm="teleport")

    def test_bad_k(self):
        with pytest.raises(ExperimentError):
            spec(k=1)

    def test_bad_engine(self):
        with pytest.raises(ExperimentError):
            spec(engine="quantum")

    def test_bad_cost_model(self):
        with pytest.raises(ExperimentError):
            spec(cost_model="gold-pressed-latinum")

    def test_trace_cells_need_requests(self):
        with pytest.raises(ExperimentError):
            spec(m=0)

    def test_analytic_cells_allow_m_zero(self):
        s = spec(algorithm="centroid-tree-distance", m=0)
        assert s.kind == "analytic"


class TestClassification:
    @pytest.mark.parametrize(
        "algorithm,kind",
        [
            ("kary-splaynet", "online"),
            ("centroid-splaynet", "online"),
            ("splaynet", "online"),
            ("full-tree", "static"),
            ("optimal-tree", "static"),
            ("optimal-uniform-distance", "analytic"),
        ],
    )
    def test_kind(self, algorithm, kind):
        m = 0 if kind == "analytic" else 200
        assert spec(algorithm=algorithm, m=m).kind == kind

    def test_engine_defaults_to_flat_for_capable_cells(self):
        assert spec().resolved_engine() == DEFAULT_ONLINE_ENGINE
        assert spec(engine="object").resolved_engine() == "object"

    def test_no_engine_for_engine_free_cells(self):
        assert spec(algorithm="splaynet").resolved_engine() is None
        assert spec(algorithm="full-tree", engine="object").resolved_engine() is None

    def test_task_bridge_threads_engine(self):
        task = spec().task()
        assert task.engine == DEFAULT_ONLINE_ENGINE
        assert (task.workload, task.n, task.m, task.seed) == spec().trace_key()

    def test_analytic_cells_have_no_task(self):
        with pytest.raises(ExperimentError):
            spec(algorithm="complete-tree-distance", m=0).task()


class TestJsonRoundTrip:
    def test_single_spec(self):
        original = spec(engine="flat", cost_model="unit_rotations", group="t5")
        assert ScenarioSpec.from_json(original.to_json()) == original

    def test_dict_round_trip_is_lossless(self):
        original = spec()
        data = json.loads(original.to_json())
        assert ScenarioSpec.from_dict(data) == original

    def test_unknown_field_rejected(self):
        data = spec().to_dict()
        data["frobnication"] = 3
        with pytest.raises(ExperimentError):
            ScenarioSpec.from_dict(data)

    def test_non_object_rejected(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec.from_json("[1, 2]")

    def test_spec_list_round_trip(self):
        originals = [spec(k=k) for k in (2, 3, 5)]
        assert specs_from_json(specs_to_json(originals)) == originals

    def test_replace(self):
        assert spec().replace(k=5).k == 5
        assert spec().replace(k=5) != spec()
