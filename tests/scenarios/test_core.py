"""The scenario execution core: determinism, memoization, sinks, sweeps."""

from __future__ import annotations

import pytest

from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.network.cost import UNIT_ROTATIONS
from repro.network.simulator import Simulator
from repro.parallel import (
    SweepSpec,
    clear_trace_cache,
    run_scenario_sweep,
    trace_cache_stats,
)
from repro.scenarios import (
    JsonlResultSink,
    ScenarioResult,
    ScenarioSpec,
    read_results_jsonl,
    run_scenario,
    run_specs,
)
from repro.workloads.synthetic import temporal_trace, zipf_trace


def spec(**overrides):
    fields = dict(
        workload="temporal-0.5", n=24, m=300, seed=7, algorithm="kary-splaynet", k=3
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestRunScenario:
    def test_online_cell_matches_direct_simulation(self):
        cell = run_scenario(spec())
        trace = temporal_trace(24, 300, 0.5, 7)
        direct = Simulator().run(KArySplayNet(24, 3, initial="complete"), trace)
        assert cell.total_routing == direct.total_routing
        assert cell.total_rotations == direct.total_rotations

    def test_analytic_cell(self):
        cell = run_scenario(
            spec(algorithm="optimal-uniform-distance", m=0, n=10, k=2)
        )
        assert cell.total_routing > 0
        assert cell.total_rotations == 0

    def test_cost_model_selection(self):
        cell = run_scenario(spec(cost_model="unit_rotations"))
        assert cell.cost() == cell.cost(UNIT_ROTATIONS)
        assert cell.cost() > cell.total_routing  # rotations priced in

    def test_result_json_round_trip(self):
        cell = run_scenario(spec())
        assert ScenarioResult.from_dict(cell.to_dict()) == cell


class TestRunSpecs:
    def test_order_preserved_and_deterministic(self):
        specs = [spec(k=k, algorithm=a) for k in (2, 3) for a in ("kary-splaynet", "full-tree")]
        serial = run_specs(specs)
        again = run_specs(specs)
        assert [c.spec for c in serial] == specs
        assert [c.total_routing for c in serial] == [c.total_routing for c in again]

    def test_parallel_matches_serial(self):
        specs = [spec(k=k) for k in (2, 3, 4)]
        serial = run_specs(specs)
        parallel = run_specs(specs, jobs=2)
        assert [c.total_routing for c in serial] == [c.total_routing for c in parallel]
        assert [c.total_rotations for c in serial] == [
            c.total_rotations for c in parallel
        ]

    def test_flat_and_object_engines_agree(self):
        flat = run_specs([spec(engine="flat")])[0]
        obj = run_specs([spec(engine="object")])[0]
        assert flat.total_routing == obj.total_routing
        assert flat.total_rotations == obj.total_rotations
        assert flat.total_links_changed == obj.total_links_changed

    def test_explicit_trace_override(self):
        trace = zipf_trace(24, 300, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)
        with_override = run_specs([s], traces={s.trace_key(): trace})[0]
        direct = Simulator().run(KArySplayNet(24, 3, initial="complete"), trace)
        assert with_override.total_routing == direct.total_routing

    def test_explicit_trace_requires_serial(self):
        trace = zipf_trace(24, 300, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)
        with pytest.raises(ExperimentError):
            run_specs([s], jobs=2, traces={s.trace_key(): trace})

    def test_explicit_trace_key_must_match_trace_coordinates(self):
        shorter = zipf_trace(24, 299, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)  # m=300
        with pytest.raises(ExperimentError):
            run_specs([s], traces={s.trace_key(): shorter})


class TestTraceMemoization:
    def test_table_cells_materialize_trace_once(self):
        clear_trace_cache()
        specs = [spec(k=k, algorithm=a) for k in (2, 3, 5) for a in ("kary-splaynet", "full-tree")]
        # cache=False: served-from-cache cells would never touch the
        # trace memo this test is counting.
        run_specs(specs, cache=False)
        stats = trace_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(specs) - 1
        clear_trace_cache()

    def test_pinning_a_trace_drops_a_stale_demand_entry(self):
        # Regression: an optimal-tree cell caches the *generated* trace's
        # demand; pinning a custom trace under the same coordinates must
        # evict it, or the static optimum is built from the wrong workload.
        from repro.analysis.distance import trace_static_cost
        from repro.optimal import DemandContext, optimal_static_tree
        from repro.workloads.demand import DemandMatrix

        clear_trace_cache()
        s = spec(algorithm="optimal-tree", k=2, workload="zipf-1.4", seed=99)
        run_specs([s], cache=False)  # populates the demand memo for the key
        custom = zipf_trace(24, 300, 2.2, seed=5)
        pinned = run_specs(
            [s], cache=False, traces={s.trace_key(): custom}
        )[0]
        demand = DemandMatrix.from_trace(custom)
        expected = optimal_static_tree(
            demand, 2, context=DemandContext.from_demand(demand)
        )
        assert pinned.total_routing == trace_static_cost(expected.tree, custom)
        clear_trace_cache()

    def test_pinned_trace_survives_cache_pressure(self):
        from repro.parallel.tasks import (
            _TRACE_CACHE_MAX,
            evict_trace,
            materialize_trace_cached,
            seed_trace_cache,
        )

        clear_trace_cache()
        custom = zipf_trace(24, 300, 1.4, seed=99)
        key = seed_trace_cache(custom, "zipf-1.4", 99)
        try:
            # Force enough distinct traces through the memo to trigger its
            # eviction sweep; the pinned entry must not be swept.
            for seed in range(_TRACE_CACHE_MAX + 2):
                materialize_trace_cached("uniform", 8, 16, seed)
            assert materialize_trace_cached("zipf-1.4", 24, 300, 99) is custom
        finally:
            evict_trace(key)
            clear_trace_cache()


class TestSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        specs = [spec(k=2), spec(algorithm="full-tree", k=2)]
        with JsonlResultSink(path) as sink:
            results = run_specs(specs, sink=sink)
            assert sink.count == len(specs)
        assert read_results_jsonl(path) == results

    def test_sink_opens_lazily(self, tmp_path):
        sink = JsonlResultSink(tmp_path / "sub" / "never.jsonl")
        sink.close()
        assert not (tmp_path / "sub").exists()

    def test_serial_run_streams_completed_cells_before_a_crash(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        # The second cell blows up inside trace materialization
        # (ValueError on the zipf parameter) — the first cell's line must
        # already be on disk.
        specs = [spec(k=2), spec(workload="zipf-oops", seed=1)]
        with JsonlResultSink(path) as sink:
            with pytest.raises(ExperimentError):
                run_specs(specs, sink=sink)
        survivors = read_results_jsonl(path)
        assert len(survivors) == 1
        assert survivors[0].spec == specs[0]

    def test_two_sink_sessions_on_one_path_keep_both_batches(self, tmp_path):
        # Regression: write() used to open with mode "w", so a resumed or
        # re-run campaign silently truncated every prior result.
        path = tmp_path / "campaign.jsonl"
        first = [spec(k=2)]
        second = [spec(k=3), spec(algorithm="full-tree", k=2)]
        with JsonlResultSink(path) as sink:
            batch1 = run_specs(first, sink=sink)
        with JsonlResultSink(path) as sink:
            batch2 = run_specs(second, sink=sink)
        assert read_results_jsonl(path) == batch1 + batch2

    def test_overwrite_sink_truncates(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with JsonlResultSink(path) as sink:
            run_specs([spec(k=2)], sink=sink)
        with JsonlResultSink(path, overwrite=True) as sink:
            replacement = run_specs([spec(k=3)], sink=sink)
        assert read_results_jsonl(path) == replacement


class TestResultsPaths:
    """default_results_path must not scatter files across CWDs."""

    def test_env_override_wins(self, tmp_path, monkeypatch):
        from repro.scenarios import default_results_path, results_root

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "here"))
        assert results_root() == tmp_path / "here"
        assert default_results_path("zipf", "quick") == (
            tmp_path / "here" / "scenario_zipf_quick.jsonl"
        )

    def test_anchors_to_enclosing_checkout_from_a_subdirectory(
        self, tmp_path, monkeypatch
    ):
        from repro.scenarios import results_root

        root = tmp_path / "checkout"
        (root / "benchmarks" / "results").mkdir(parents=True)
        deep = root / "src" / "repro" / "somewhere"
        deep.mkdir(parents=True)
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert results_root(deep) == root / "benchmarks" / "results"
        monkeypatch.chdir(deep)  # same answer via the CWD default
        assert results_root() == root / "benchmarks" / "results"

    def test_falls_back_to_package_checkout_outside_any_repo(self, monkeypatch):
        import repro.scenarios.sink as sink_module

        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        from pathlib import Path

        nowhere = Path("/nonexistent") / "deeply" / "nested" / "cwd"
        expected = Path(sink_module.__file__).resolve().parents[3]
        assert (
            sink_module.results_root(nowhere)
            == expected / "benchmarks" / "results"
        )


class TestScenarioSweep:
    def test_axes_become_spec_fields(self):
        result = run_scenario_sweep(
            SweepSpec(axes={"k": (2, 3)}, root_seed=5),
            {"workload": "uniform", "n": 16, "m": 80, "algorithm": "kary-splaynet"},
        )
        assert len(result) == 2
        assert [cell.spec.k for cell in result.values] == [2, 3]
        assert all(cell.total_routing > 0 for cell in result.values)

    def test_seed_derived_per_cell_unless_pinned(self):
        derived = run_scenario_sweep(
            SweepSpec(axes={"k": (2, 3)}, root_seed=5),
            {"workload": "uniform", "n": 16, "m": 80, "algorithm": "kary-splaynet"},
        )
        seeds = {cell.spec.seed for cell in derived.values}
        assert len(seeds) == 2  # independent per coordinate
        pinned = run_scenario_sweep(
            SweepSpec(axes={"k": (2, 3)}, root_seed=5),
            {"workload": "uniform", "n": 16, "m": 80, "seed": 1,
             "algorithm": "kary-splaynet"},
        )
        assert {cell.spec.seed for cell in pinned.values} == {1}

    def test_repeats_drop_the_rep_axis(self):
        result = run_scenario_sweep(
            SweepSpec(axes={"k": (2,)}, root_seed=5, repeats=2),
            {"workload": "uniform", "n": 16, "m": 80, "algorithm": "kary-splaynet"},
        )
        assert len(result) == 2
        assert {cell.spec.seed for cell in result.values} == {
            c.seed for c in result.cells
        }
