"""The scenario execution core: determinism, memoization, sinks, sweeps."""

from __future__ import annotations

import pytest

from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.network.cost import UNIT_ROTATIONS
from repro.network.simulator import Simulator
from repro.parallel import (
    SweepSpec,
    clear_trace_cache,
    run_scenario_sweep,
    trace_cache_stats,
)
from repro.scenarios import (
    JsonlResultSink,
    ScenarioResult,
    ScenarioSpec,
    read_results_jsonl,
    run_scenario,
    run_specs,
)
from repro.workloads.synthetic import temporal_trace, zipf_trace


def spec(**overrides):
    fields = dict(
        workload="temporal-0.5", n=24, m=300, seed=7, algorithm="kary-splaynet", k=3
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestRunScenario:
    def test_online_cell_matches_direct_simulation(self):
        cell = run_scenario(spec())
        trace = temporal_trace(24, 300, 0.5, 7)
        direct = Simulator().run(KArySplayNet(24, 3, initial="complete"), trace)
        assert cell.total_routing == direct.total_routing
        assert cell.total_rotations == direct.total_rotations

    def test_analytic_cell(self):
        cell = run_scenario(
            spec(algorithm="optimal-uniform-distance", m=0, n=10, k=2)
        )
        assert cell.total_routing > 0
        assert cell.total_rotations == 0

    def test_cost_model_selection(self):
        cell = run_scenario(spec(cost_model="unit_rotations"))
        assert cell.cost() == cell.cost(UNIT_ROTATIONS)
        assert cell.cost() > cell.total_routing  # rotations priced in

    def test_result_json_round_trip(self):
        cell = run_scenario(spec())
        assert ScenarioResult.from_dict(cell.to_dict()) == cell


class TestRunSpecs:
    def test_order_preserved_and_deterministic(self):
        specs = [spec(k=k, algorithm=a) for k in (2, 3) for a in ("kary-splaynet", "full-tree")]
        serial = run_specs(specs)
        again = run_specs(specs)
        assert [c.spec for c in serial] == specs
        assert [c.total_routing for c in serial] == [c.total_routing for c in again]

    def test_parallel_matches_serial(self):
        specs = [spec(k=k) for k in (2, 3, 4)]
        serial = run_specs(specs)
        parallel = run_specs(specs, jobs=2)
        assert [c.total_routing for c in serial] == [c.total_routing for c in parallel]
        assert [c.total_rotations for c in serial] == [
            c.total_rotations for c in parallel
        ]

    def test_flat_and_object_engines_agree(self):
        flat = run_specs([spec(engine="flat")])[0]
        obj = run_specs([spec(engine="object")])[0]
        assert flat.total_routing == obj.total_routing
        assert flat.total_rotations == obj.total_rotations
        assert flat.total_links_changed == obj.total_links_changed

    def test_explicit_trace_override(self):
        trace = zipf_trace(24, 300, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)
        with_override = run_specs([s], traces={s.trace_key(): trace})[0]
        direct = Simulator().run(KArySplayNet(24, 3, initial="complete"), trace)
        assert with_override.total_routing == direct.total_routing

    def test_explicit_trace_requires_serial(self):
        trace = zipf_trace(24, 300, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)
        with pytest.raises(ExperimentError):
            run_specs([s], jobs=2, traces={s.trace_key(): trace})

    def test_explicit_trace_key_must_match_trace_coordinates(self):
        shorter = zipf_trace(24, 299, 1.4, seed=99)
        s = spec(workload="zipf-1.4", seed=99)  # m=300
        with pytest.raises(ExperimentError):
            run_specs([s], traces={s.trace_key(): shorter})


class TestTraceMemoization:
    def test_table_cells_materialize_trace_once(self):
        clear_trace_cache()
        specs = [spec(k=k, algorithm=a) for k in (2, 3, 5) for a in ("kary-splaynet", "full-tree")]
        run_specs(specs)
        stats = trace_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(specs) - 1
        clear_trace_cache()

    def test_pinned_trace_survives_cache_pressure(self):
        from repro.parallel.tasks import (
            _TRACE_CACHE_MAX,
            evict_trace,
            materialize_trace_cached,
            seed_trace_cache,
        )

        clear_trace_cache()
        custom = zipf_trace(24, 300, 1.4, seed=99)
        key = seed_trace_cache(custom, "zipf-1.4", 99)
        try:
            # Force enough distinct traces through the memo to trigger its
            # eviction sweep; the pinned entry must not be swept.
            for seed in range(_TRACE_CACHE_MAX + 2):
                materialize_trace_cached("uniform", 8, 16, seed)
            assert materialize_trace_cached("zipf-1.4", 24, 300, 99) is custom
        finally:
            evict_trace(key)
            clear_trace_cache()


class TestSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        specs = [spec(k=2), spec(algorithm="full-tree", k=2)]
        with JsonlResultSink(path) as sink:
            results = run_specs(specs, sink=sink)
            assert sink.count == len(specs)
        assert read_results_jsonl(path) == results

    def test_sink_opens_lazily(self, tmp_path):
        sink = JsonlResultSink(tmp_path / "sub" / "never.jsonl")
        sink.close()
        assert not (tmp_path / "sub").exists()

    def test_serial_run_streams_completed_cells_before_a_crash(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        # The second cell blows up inside trace materialization
        # (ValueError on the zipf parameter) — the first cell's line must
        # already be on disk.
        specs = [spec(k=2), spec(workload="zipf-oops", seed=1)]
        with JsonlResultSink(path) as sink:
            with pytest.raises(ExperimentError):
                run_specs(specs, sink=sink)
        survivors = read_results_jsonl(path)
        assert len(survivors) == 1
        assert survivors[0].spec == specs[0]


class TestScenarioSweep:
    def test_axes_become_spec_fields(self):
        result = run_scenario_sweep(
            SweepSpec(axes={"k": (2, 3)}, root_seed=5),
            {"workload": "uniform", "n": 16, "m": 80, "algorithm": "kary-splaynet"},
        )
        assert len(result) == 2
        assert [cell.spec.k for cell in result.values] == [2, 3]
        assert all(cell.total_routing > 0 for cell in result.values)

    def test_seed_derived_per_cell_unless_pinned(self):
        derived = run_scenario_sweep(
            SweepSpec(axes={"k": (2, 3)}, root_seed=5),
            {"workload": "uniform", "n": 16, "m": 80, "algorithm": "kary-splaynet"},
        )
        seeds = {cell.spec.seed for cell in derived.values}
        assert len(seeds) == 2  # independent per coordinate
        pinned = run_scenario_sweep(
            SweepSpec(axes={"k": (2, 3)}, root_seed=5),
            {"workload": "uniform", "n": 16, "m": 80, "seed": 1,
             "algorithm": "kary-splaynet"},
        )
        assert {cell.spec.seed for cell in pinned.values} == {1}

    def test_repeats_drop_the_rep_axis(self):
        result = run_scenario_sweep(
            SweepSpec(axes={"k": (2,)}, root_seed=5, repeats=2),
            {"workload": "uniform", "n": 16, "m": 80, "algorithm": "kary-splaynet"},
        )
        assert len(result) == 2
        assert {cell.spec.seed for cell in result.values} == {
            c.seed for c in result.cells
        }
