"""The circuit-breaker state machine, exhaustively.

Deterministic unit tests pin the intended closed → open → half-open
choreography under a fake clock; the hypothesis suite then drives the
machine through arbitrary success/failure/clock-advance sequences and
asserts the structural invariants hold at *every* step — no invalid
state, non-negative bounded probe accounting, and a half-open breaker
admitting exactly its probe budget.

The property tests need hypothesis (installed in CI); they are skipped
gracefully when absent, the deterministic tests always run.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.ingress.breaker import (
    BREAKER_STATES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 50.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker(
    threshold: int = 3, reset: float = 1.0, probes: int = 1
) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    config = BreakerConfig(
        failure_threshold=threshold,
        reset_timeout=reset,
        probe_budget=probes,
    )
    return CircuitBreaker(config, clock=clock), clock


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ExperimentError):
            BreakerConfig(reset_timeout=0.0)
        with pytest.raises(ExperimentError):
            BreakerConfig(probe_budget=0)


class TestChoreography:
    def test_trips_after_consecutive_failures_only(self):
        brk, _ = breaker(threshold=3)
        brk.record_failure()
        brk.record_failure()
        brk.record_success()  # success resets the consecutive count
        brk.record_failure()
        brk.record_failure()
        assert brk.state == CLOSED
        brk.record_failure()
        assert brk.state == OPEN
        assert brk.opens == 1

    def test_open_sheds_until_reset_timeout(self):
        brk, clock = breaker(threshold=1, reset=2.0)
        brk.record_failure()
        assert brk.state == OPEN
        assert not brk.allow()
        assert brk.retry_after() == pytest.approx(2.0)
        clock.advance(1.5)
        assert not brk.allow()
        assert brk.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert brk.allow()  # the half-open probe
        assert brk.state == HALF_OPEN
        assert brk.retry_after() == 0.0

    def test_half_open_admits_exactly_the_probe_budget(self):
        brk, clock = breaker(threshold=1, probes=2)
        brk.record_failure()
        clock.advance(1.0)
        assert brk.allow()
        assert brk.allow()
        assert not brk.allow()  # budget spent, outcomes pending
        brk.record_success()
        assert brk.allow()  # resolved probe frees a slot

    def test_probe_successes_close_the_breaker(self):
        brk, clock = breaker(threshold=1, probes=2)
        brk.record_failure()
        clock.advance(1.0)
        assert brk.allow() and brk.allow()
        brk.record_success()
        assert brk.state == HALF_OPEN
        brk.record_success()
        assert brk.state == CLOSED
        assert brk.failures == 0

    def test_probe_failure_reopens_a_fresh_window(self):
        brk, clock = breaker(threshold=1, reset=1.0)
        brk.record_failure()
        clock.advance(1.0)
        assert brk.allow()
        brk.record_failure()
        assert brk.state == OPEN
        assert brk.opens == 2
        assert brk.retry_after() == pytest.approx(1.0)  # full window again

    def test_late_outcomes_while_open_are_ignored(self):
        # Acks for requests admitted before the trip must not
        # rehabilitate (or double-punish) the shard out of band.
        brk, _ = breaker(threshold=1)
        brk.record_failure()
        state = brk.snapshot()
        brk.record_success()
        brk.record_failure()
        assert brk.snapshot() == state

    def test_snapshot_shape(self):
        brk, _ = breaker()
        assert brk.snapshot() == {
            "state": CLOSED,
            "failures": 0,
            "opens": 0,
            "retry_after": 0.0,
        }


# ----------------------------------------------------------------------
# property suite: arbitrary event sequences, invariants at every step
# ----------------------------------------------------------------------
pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

EVENTS = st.lists(
    st.one_of(
        st.just(("allow",)),
        st.just(("success",)),
        st.just(("failure",)),
        st.floats(min_value=0.0, max_value=3.0).map(
            lambda s: ("advance", s)
        ),
    ),
    max_size=60,
)
CONFIGS = st.builds(
    BreakerConfig,
    failure_threshold=st.integers(min_value=1, max_value=5),
    reset_timeout=st.floats(min_value=0.1, max_value=2.0),
    probe_budget=st.integers(min_value=1, max_value=4),
)


def _check_invariants(brk: CircuitBreaker, admitted_probes: int) -> None:
    assert brk.state in BREAKER_STATES
    assert 0 <= brk.probes_inflight <= brk.config.probe_budget
    assert 0 <= brk.failures < brk.config.failure_threshold
    assert brk.opens >= 0
    assert brk.retry_after() >= 0.0
    if brk.state != OPEN:
        assert brk.retry_after() == 0.0
    if brk.state == HALF_OPEN:
        # Unresolved admissions this half-open phase never exceed the
        # probe budget.
        assert admitted_probes <= brk.config.probe_budget


class TestBreakerProperties:
    @settings(max_examples=200, deadline=None)
    @given(config=CONFIGS, events=EVENTS)
    def test_no_sequence_reaches_an_invalid_state(self, config, events):
        clock = FakeClock()
        brk = CircuitBreaker(config, clock=clock)
        unresolved_probes = 0
        for event in events:
            if event[0] == "advance":
                clock.advance(event[1])
            elif event[0] == "allow":
                was_half_open_path = brk.state in (OPEN, HALF_OPEN)
                admitted = brk.allow()
                if admitted and was_half_open_path:
                    unresolved_probes += 1
            elif event[0] == "success":
                if brk.state == HALF_OPEN and unresolved_probes:
                    unresolved_probes -= 1
                brk.record_success()
            else:
                if brk.state == HALF_OPEN and unresolved_probes:
                    unresolved_probes -= 1
                brk.record_failure()
            if brk.state != HALF_OPEN:
                unresolved_probes = 0
            _check_invariants(brk, unresolved_probes)

    @settings(max_examples=100, deadline=None)
    @given(config=CONFIGS, events=EVENTS)
    def test_half_open_admits_exactly_the_budget(self, config, events):
        """However the machine got to half-open, the next allow() burst
        admits exactly ``probe_budget`` requests and not one more."""
        clock = FakeClock()
        brk = CircuitBreaker(config, clock=clock)
        for event in events:
            if event[0] == "advance":
                clock.advance(event[1])
            elif event[0] == "allow":
                brk.allow()
            elif event[0] == "success":
                brk.record_success()
            else:
                brk.record_failure()
        if brk.state == OPEN:
            # Comfortably past the window (an exact advance can round
            # under the float deadline).
            clock.advance(config.reset_timeout * 2)
            inflight_before = 0  # the flip to half-open resets probes
        elif brk.state == HALF_OPEN:
            inflight_before = brk.probes_inflight
        else:
            return  # closed admits unboundedly by design
        admitted = sum(
            1 for _ in range(config.probe_budget * 3) if brk.allow()
        )
        assert brk.state == HALF_OPEN
        assert admitted == config.probe_budget - inflight_before
        assert brk.probes_inflight == config.probe_budget
