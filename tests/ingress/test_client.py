"""Ingress clients: retry-on-reconnect, failure taxonomy, fault drills.

The reliability pins of the gateway:

* a dropped/refused connection is :class:`IngressConnectionError` — the
  retryable state — and the blocking client's
  :class:`~repro.reliability.retry.RetryPolicy` absorbs it by
  reconnecting (including across a full server restart);
* ``OVERLOAD`` and ``ERROR`` responses raise typed exceptions and are
  never retried automatically;
* the ``ingress.accept`` and ``ingress.dispatch`` fault points produce
  exactly those states on demand — the dispatch ``kill`` drill runs the
  server as a real subprocess and asserts the client lands retryable.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import (
    IngressConnectionError,
    IngressError,
    IngressOverload,
)
from repro.ingress import (
    AsyncIngressClient,
    IngressClient,
    IngressServer,
    default_retry_policy,
)
from repro.reliability.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
    install_fault_plan,
)
from repro.reliability.retry import RetryPolicy
from repro.serving import ServeFarm

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _serve_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def _spawn_server(*args: str, **env_extra: str) -> tuple:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "-n", "16",
         *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_serve_env(**env_extra),
        text=True,
    )
    line = proc.stdout.readline()
    match = re.match(r"ingress listening on (\S+):(\d+)", line)
    assert match, f"no readiness line, got {line!r}"
    return proc, match.group(1), int(match.group(2))


class TestBlockingClient:
    def test_round_trip_and_context_manager(self, tmp_path):
        async def run():
            farm = ServeFarm("kary-splaynet", n=16, k=2, shards=1)
            server = IngressServer(farm, path=str(tmp_path / "i.sock"))
            await server.start()

            def blocking():
                with IngressClient(path=server.address) as client:
                    assert client.ping()
                    assert client.server_shards == 1
                    one = client.serve("a", 1, 9)
                    batch = client.serve_batch("a", [2, 3], [8, 7])
                    metrics = client.metrics()
                    return one, batch, metrics

            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, blocking
                )
            finally:
                await server.drain()
            return result

        one, batch, metrics = asyncio.run(run())
        assert one.m == 1
        assert batch.m == 2
        assert metrics["requests"] == 3

    def test_connect_refused_is_retryable_error(self, tmp_path):
        client = IngressClient(
            path=str(tmp_path / "nobody-home.sock"),
            retry=RetryPolicy(retries=0),
        )
        with pytest.raises(IngressConnectionError):
            client.ping()

    def test_requires_exactly_one_endpoint(self):
        with pytest.raises(IngressError, match="exactly one"):
            IngressClient()
        with pytest.raises(IngressError, match="exactly one"):
            IngressClient(port=1234, path="/tmp/x.sock")

    def test_server_error_raises_and_is_not_retried(self, tmp_path):
        """Node id 99 is out of range for n=16 on every engine — the
        farm's error must arrive as IngressError (one attempt; errors
        are not transient)."""
        async def run():
            farm = ServeFarm("kary-splaynet", n=16, k=2, shards=1)
            server = IngressServer(farm, path=str(tmp_path / "i.sock"))
            await server.start()

            def blocking():
                with IngressClient(path=server.address) as client:
                    with pytest.raises(IngressError, match="server error"):
                        client.serve("a", 99, 9)
                    # The connection survives an ERROR response.
                    return client.serve("a", 1, 9)

            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, blocking
                )
            finally:
                await server.drain()
            return result, server.errors

        result, errors = asyncio.run(run())
        assert result.m == 1
        assert errors == 1

    def test_retry_reconnects_across_server_restart(self):
        """Kill the server between calls; the retry policy must
        transparently reconnect to its replacement on the same port."""
        proc_a, host, port = _spawn_server("--shards", "1")
        client = IngressClient(host, port, retry=default_retry_policy())
        try:
            assert client.serve("a", 1, 9).m == 1
            proc_a.send_signal(signal.SIGTERM)
            assert proc_a.wait(timeout=30) == 0

            # Hold the port hostage is racy on a shared box; instead the
            # replacement binds a fresh port and the client re-targets —
            # the retry still exercises close-detect + reconnect.
            proc_b, host_b, port_b = _spawn_server("--shards", "1")
            try:
                client.host, client.port = host_b, port_b
                assert client.serve("a", 2, 8).m == 1
            finally:
                proc_b.send_signal(signal.SIGTERM)
                assert proc_b.wait(timeout=30) == 0
        finally:
            client.close()
            if proc_a.poll() is None:
                proc_a.kill()

    def test_overload_raises_typed_exception(self):
        """A draining server answers OVERLOAD; the client surfaces it as
        IngressOverload, not a retry loop."""
        import repro.ingress.server as server_mod
        from repro.network.protocols import BatchServeResult
        from repro.serving import FarmMetrics, ShardRouter

        class StubFarm:
            shards = 1
            router = ShardRouter(1)
            metrics = FarmMetrics()

            def serve_grouped(self, shard, batches):
                return [
                    BatchServeResult(len(s), 0, 0, 0, None, None)
                    for _k, s, _t in batches
                ]

            def close(self):
                pass

        async def run():
            server = IngressServer(StubFarm(), port=0, max_inflight=1)
            await server.start()
            host, port = server.address
            server._draining = True  # simulate mid-drain admission

            def blocking():
                with IngressClient(host, port) as client:
                    with pytest.raises(IngressOverload, match="draining"):
                        client.serve("a", 1, 2)

            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, blocking
                )
            finally:
                server._draining = False
                await server.drain()

        asyncio.run(run())
        assert server_mod is not None  # silence unused-import linters


class TestAcceptFault:
    def test_accept_fault_drops_connection_and_retry_absorbs_it(
        self, tmp_path
    ):
        """ingress.accept (error mode, first connection only): the first
        connect dies before the handshake; the client's policy
        reconnects and the second attempt succeeds."""
        plan = FaultPlan(
            specs=(FaultSpec("ingress.accept", mode="error", at=(1,)),)
        )

        async def run():
            farm = ServeFarm("kary-splaynet", n=16, k=2, shards=1)
            server = IngressServer(farm, path=str(tmp_path / "i.sock"))
            await server.start()
            install_fault_plan(plan)

            def blocking():
                client = IngressClient(
                    path=server.address,
                    retry=RetryPolicy(
                        retries=2,
                        base=0.01,
                        retry_on=(IngressConnectionError,),
                    ),
                )
                with client:
                    return client.serve("a", 1, 9)

            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, blocking
                )
            finally:
                clear_fault_plan()
                await server.drain()
            return result, server.rejected_connections

        result, rejected = asyncio.run(run())
        assert result.m == 1
        assert rejected == 1

    def test_accept_fault_without_retry_is_connection_error(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec("ingress.accept", mode="error", at=(1,)),)
        )

        async def run():
            farm = ServeFarm("kary-splaynet", n=16, k=2, shards=1)
            server = IngressServer(farm, path=str(tmp_path / "i.sock"))
            await server.start()
            install_fault_plan(plan)

            def blocking():
                client = IngressClient(
                    path=server.address, retry=RetryPolicy(retries=0)
                )
                with pytest.raises(IngressConnectionError):
                    client.ping()

            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, blocking
                )
            finally:
                clear_fault_plan()
                await server.drain()

        asyncio.run(run())


class TestDispatchFault:
    def test_dispatch_error_is_relayed_as_error_response(self, tmp_path):
        """ingress.dispatch (error mode): the injected micro-batch
        failure is answered to the client as ERROR — and the next
        request on the same connection is served normally."""
        plan = FaultPlan(
            specs=(FaultSpec("ingress.dispatch", mode="error", at=(1,)),)
        )

        async def run():
            farm = ServeFarm("kary-splaynet", n=16, k=2, shards=1)
            server = IngressServer(farm, path=str(tmp_path / "i.sock"))
            await server.start()
            install_fault_plan(plan)

            def blocking():
                with IngressClient(path=server.address) as client:
                    with pytest.raises(
                        IngressError, match="FaultInjected"
                    ):
                        client.serve("a", 1, 9)
                    return client.serve("a", 1, 9)

            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, blocking
                )
            finally:
                clear_fault_plan()
                await server.drain()
            return result, server.errors, server.served

        result, errors, served = asyncio.run(run())
        assert result.m == 1
        assert errors == 1
        assert served == 1

    def test_dispatch_kill_leaves_client_in_retryable_state(self):
        """ingress.dispatch (kill mode) against a real server process:
        the server hard-exits mid-stream, the client sees the dropped
        connection as IngressConnectionError — the state its retry
        policy treats as transient — and a replacement server serves the
        retried request."""
        plan = FaultPlan(
            specs=(FaultSpec("ingress.dispatch", mode="kill", at=(1,)),)
        )
        proc, host, port = _spawn_server(
            "--shards", "1", **{FAULTS_ENV: plan.to_env()}
        )
        client = IngressClient(host, port, retry=RetryPolicy(retries=0))
        try:
            with pytest.raises(IngressConnectionError):
                client.serve("a", 1, 9)
            assert proc.wait(timeout=30) == 77  # kill_process exit code
            assert default_retry_policy().is_transient(
                IngressConnectionError("downed mid-stream")
            )
            # A replacement server completes the interrupted work.
            proc_b, host_b, port_b = _spawn_server("--shards", "1")
            try:
                client.host, client.port = host_b, port_b
                assert client.serve("a", 1, 9).m == 1
            finally:
                proc_b.send_signal(signal.SIGTERM)
                assert proc_b.wait(timeout=30) == 0
        finally:
            client.close()
            if proc.poll() is None:
                proc.kill()


class TestAsyncClient:
    def test_multiplexes_and_fails_pending_on_disconnect(self, tmp_path):
        """Pending multiplexed requests fail with the retryable error
        when the connection drops mid-flight."""
        gate = threading.Event()

        from repro.network.protocols import BatchServeResult
        from repro.serving import FarmMetrics, ShardRouter

        class StubFarm:
            shards = 1
            router = ShardRouter(1)
            metrics = FarmMetrics()

            def serve_grouped(self, shard, batches):
                assert gate.wait(timeout=30)
                return [
                    BatchServeResult(len(s), 0, 0, 0, None, None)
                    for _k, s, _t in batches
                ]

            def close(self):
                pass

        async def run():
            server = IngressServer(
                StubFarm(), port=0, batch_window=0.0, batch_max=1
            )
            await server.start()
            host, port = server.address
            client = AsyncIngressClient(host, port)
            await client.connect()
            pending = [
                asyncio.ensure_future(client.serve("k", 1, 2))
                for _ in range(3)
            ]
            await asyncio.sleep(0.1)
            await client.close()  # drops the connection under them
            results = await asyncio.gather(*pending, return_exceptions=True)
            gate.set()
            await server.drain()
            return results

        results = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(r, IngressConnectionError) for r in results)

    def test_requires_exactly_one_endpoint(self):
        with pytest.raises(IngressError, match="exactly one"):
            AsyncIngressClient()

    def test_serve_stream_with_retry_policy(self, tmp_path):
        """serve_stream's retry path: an accept fault on the first
        connection is absorbed by the async retry loop."""
        plan = FaultPlan(
            specs=(FaultSpec("ingress.accept", mode="error", at=(1,)),)
        )

        async def run():
            farm = ServeFarm("kary-splaynet", n=16, k=2, shards=1)
            server = IngressServer(farm, path=str(tmp_path / "i.sock"))
            await server.start()
            install_fault_plan(plan)
            client = AsyncIngressClient(path=server.address)
            try:
                totals, latency = await client.serve_stream(
                    [("a", 1, 9), ("a", 2, 8), ("b", 3, 7)],
                    concurrency=1,
                    retry=RetryPolicy(
                        retries=2,
                        base=0.01,
                        retry_on=(IngressConnectionError,),
                    ),
                )
            finally:
                await client.close()
                clear_fault_plan()
                await server.drain()
            return totals, latency

        totals, latency = asyncio.run(run())
        assert totals.m == 3
        assert latency.total == 3
