"""The ingress server: exactness, micro-batching, backpressure, shedding.

Two kinds of fixture here:

* a **real farm** over a UNIX socket for end-to-end exactness — socket
  totals must equal clean per-key sessions because the gateway preserves
  per-key request order;
* a **stub farm** (in-process, controllable blocking) for the load
  pins: a full shard queue must stop connection reads (backpressure),
  admission control and expired deadlines must answer ``OVERLOAD``
  (never a silent drop), and drain must answer everything admitted.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import IngressOverload
from repro.ingress import AsyncIngressClient, IngressServer
from repro.net import open_session
from repro.network.protocols import BatchServeResult
from repro.serving import FarmMetrics, ServeFarm, ShardRouter


def keyed_requests(n: int, m: int, keys: int, seed: int = 0):
    import random

    rng = random.Random(seed)
    return [
        (
            f"key-{i % keys}",
            rng.randrange(1, n + 1),
            rng.randrange(1, n + 1),
        )
        for i in range(m)
    ]


def clean_totals(requests, n: int, k: int):
    per_key: dict = {}
    for key, u, v in requests:
        per_key.setdefault(key, ([], []))
        per_key[key][0].append(u)
        per_key[key][1].append(v)
    totals = [0, 0, 0, 0]
    for key, (sources, targets) in per_key.items():
        session = open_session("kary-splaynet", n=n, k=k)
        batch = session.serve_stream(sources, targets)
        totals[0] += batch.m
        totals[1] += batch.total_routing
        totals[2] += batch.total_rotations
        totals[3] += batch.total_links_changed
    return totals


class _StubFarm:
    """Farm-shaped object with a controllable, observable serve path."""

    def __init__(self, shards: int = 1, *, gate: threading.Event = None):
        self.shards = shards
        self.router = ShardRouter(shards)
        self.metrics = FarmMetrics()
        self.gate = gate  # serve_grouped blocks on this when set
        self.calls: list[list] = []
        self.closed = False

    def serve_grouped(self, shard, batches):
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "stub farm gate never opened"
        self.calls.append(list(batches))
        return [
            BatchServeResult(len(sources), 1, 0, 0, None, None)
            for _key, sources, _targets in batches
        ]

    def close(self):
        self.closed = True


class TestEndToEndExactness:
    def test_socket_totals_equal_clean_sessions(self, tmp_path):
        """Mixed scalar+batch traffic over the socket is exactly the
        clean per-key result — scheduling may reorder across keys, never
        within one."""
        n, k, keys = 32, 2, 5
        requests = keyed_requests(n, 120, keys)

        async def run():
            farm = ServeFarm("kary-splaynet", n=n, k=k, shards=2)
            server = IngressServer(
                farm, path=str(tmp_path / "ingress.sock")
            )
            await server.start()
            try:
                async with AsyncIngressClient(path=server.address) as client:
                    assert client.server_shards == 2
                    assert await client.ping()
                    totals, _latency = await client.serve_stream(
                        requests, concurrency=32
                    )
                    # A batched call on top, mirrored in the oracle below.
                    extra = await client.serve_batch(
                        "key-0", [1, 2, 3], [9, 8, 7]
                    )
                    metrics = await client.metrics()
            finally:
                await server.drain()
            return totals, extra, metrics, server

        totals, extra, metrics, server = asyncio.run(run())
        oracle = clean_totals(
            requests + [("key-0", 1, 9), ("key-0", 2, 8), ("key-0", 3, 7)],
            n,
            k,
        )
        combined = [
            totals.m + extra.m,
            totals.total_routing + extra.total_routing,
            totals.total_rotations + extra.total_rotations,
            totals.total_links_changed + extra.total_links_changed,
        ]
        assert combined == oracle
        assert metrics["requests"] == len(requests) + 3
        assert metrics["overloaded"] == 0
        # Every admitted request was answered; drain closed the farm.
        assert server.served == server.admitted
        assert server.inflight == 0

    def test_micro_batching_coalesces_pipe_round_trips(self, tmp_path):
        """Many concurrent requests on one shard must collapse into far
        fewer farm dispatches than requests — the whole point of the
        gateway's coalescing window."""
        n, m = 16, 60

        async def run():
            farm = ServeFarm("kary-splaynet", n=n, k=2, shards=1)
            server = IngressServer(
                farm,
                path=str(tmp_path / "ingress.sock"),
                batch_window=0.05,
                batch_max=256,
            )
            await server.start()
            try:
                async with AsyncIngressClient(path=server.address) as client:
                    await asyncio.gather(
                        *(
                            client.serve("key-0", 1 + i % n, 1 + (i + 7) % n)
                            for i in range(m)
                        )
                    )
                windows = farm.metrics.windows
            finally:
                await server.drain()
            return windows

        windows = asyncio.run(run())
        # One pipe round trip per dispatched micro-batch; with 60
        # requests in flight and a 50 ms window this must be far below
        # one-round-trip-per-request (the batch-size-1 behaviour).
        assert windows < m / 2, f"{windows} dispatches for {m} requests"


class TestBackpressure:
    def test_full_shard_queue_stops_connection_reads(self):
        """With the dispatcher blocked and queue_depth=1, the server
        must stop *reading* — admissions stall while the client keeps
        sending — then serve everything once the shard unblocks."""
        gate = threading.Event()
        farm = _StubFarm(shards=1, gate=gate)
        sent = 10

        async def run():
            server = IngressServer(
                farm,
                port=0,
                batch_window=0.0,
                batch_max=1,
                queue_depth=1,
            )
            await server.start()
            host, port = server.address
            try:
                async with AsyncIngressClient(host, port) as client:
                    calls = [
                        asyncio.ensure_future(client.serve("k", 1, 2))
                        for _ in range(sent)
                    ]
                    # Give the reader every chance to over-admit.
                    await asyncio.sleep(0.3)
                    stalled_admitted = server.admitted
                    gate.set()
                    results = await asyncio.gather(*calls)
            finally:
                gate.set()
                await server.drain()
            return stalled_admitted, results

        stalled_admitted, results = asyncio.run(run())
        # At most: 1 dispatched (blocked in the executor), 1 queued,
        # 1 suspended in put() — the rest MUST still be unread bytes.
        assert stalled_admitted <= 3, (
            f"server admitted {stalled_admitted}/{sent} requests while its"
            " only shard was saturated — backpressure is not holding"
        )
        assert len(results) == sent
        assert all(r.m == 1 for r in results)

    def test_admission_control_sheds_with_explicit_overload(self):
        """Past max_inflight, requests get OVERLOAD — and the sum of
        served + overloaded equals everything sent: no silent drops."""
        gate = threading.Event()
        farm = _StubFarm(shards=1, gate=gate)
        sent, cap = 6, 2

        async def run():
            server = IngressServer(
                farm,
                port=0,
                batch_window=0.0,
                batch_max=1,
                queue_depth=64,
                max_inflight=cap,
            )
            await server.start()
            host, port = server.address
            try:
                async with AsyncIngressClient(host, port) as client:
                    calls = [
                        asyncio.ensure_future(client.serve("k", 1, 2))
                        for _ in range(sent)
                    ]
                    outcomes = []
                    # Let the shed responses land, then open the gate so
                    # the admitted remainder is served.
                    while len(outcomes) < sent - cap:
                        await asyncio.sleep(0.01)
                        outcomes = [c for c in calls if c.done()]
                    gate.set()
                    results = await asyncio.gather(
                        *calls, return_exceptions=True
                    )
            finally:
                gate.set()
                await server.drain()
            return results, server

        results, server = asyncio.run(run())
        served = [r for r in results if isinstance(r, BatchServeResult)]
        shed = [r for r in results if isinstance(r, IngressOverload)]
        assert len(served) + len(shed) == sent
        assert len(shed) == sent - cap
        assert all("admission control" in str(e) for e in shed)
        assert server.served == len(served)
        assert server.overloaded == len(shed)

    def test_expired_deadline_is_overload_not_late_service(self):
        """A request whose deadline lapses while queued behind a stuck
        shard is answered OVERLOAD when its batch is finally cut."""
        gate = threading.Event()
        farm = _StubFarm(shards=1, gate=gate)

        async def run():
            server = IngressServer(
                farm, port=0, batch_window=0.0, batch_max=1
            )
            await server.start()
            host, port = server.address
            try:
                async with AsyncIngressClient(host, port) as client:
                    blocker = asyncio.ensure_future(
                        client.serve("k", 1, 2)
                    )
                    await asyncio.sleep(0.05)  # let it reach the executor
                    doomed = asyncio.ensure_future(
                        client.serve("k", 3, 4, deadline=0.05)
                    )
                    await asyncio.sleep(0.3)  # deadline lapses in queue
                    gate.set()
                    blocked_result = await blocker
                    with pytest.raises(IngressOverload, match="deadline"):
                        await doomed
            finally:
                gate.set()
                await server.drain()
            return blocked_result, server

        blocked_result, server = asyncio.run(run())
        assert blocked_result.m == 1
        assert server.overloaded == 1
        assert server.served == 1
        # The doomed request never reached the farm.
        assert len(farm.calls) == 1


class TestDrain:
    def test_drain_answers_backlog_then_closes_farm(self):
        """Everything admitted before the drain is served — the STOP
        sentinel queues behind the backlog — and the farm is closed."""
        gate = threading.Event()
        farm = _StubFarm(shards=1, gate=gate)
        sent = 4

        async def run():
            server = IngressServer(
                farm, port=0, batch_window=0.0, batch_max=1, queue_depth=64
            )
            await server.start()
            host, port = server.address
            async with AsyncIngressClient(host, port) as client:
                calls = [
                    asyncio.ensure_future(client.serve("k", 1, 2))
                    for _ in range(sent)
                ]
                await asyncio.sleep(0.1)  # all admitted, none served
                drain = asyncio.ensure_future(server.drain())
                await asyncio.sleep(0.05)
                gate.set()
                results = await asyncio.gather(*calls)
                await drain
            return results

        results = asyncio.run(run())
        assert len(results) == sent
        assert all(r.m == 1 for r in results)
        assert farm.closed
        assert not [c for c in farm.calls if not c]

    def test_drain_is_idempotent_and_reports_stopped(self):
        farm = _StubFarm(shards=2)

        async def run():
            server = IngressServer(farm, port=0)
            await server.start()
            await server.drain()
            await server.drain()  # second call must be a no-op
            return server

        server = asyncio.run(run())
        assert farm.closed

    def test_close_farm_false_leaves_farm_open(self):
        farm = _StubFarm(shards=1)

        async def run():
            server = IngressServer(farm, port=0, close_farm=False)
            await server.start()
            await server.drain()

        asyncio.run(run())
        assert not farm.closed


class TestValidation:
    def test_bad_config_is_rejected(self):
        from repro.errors import ExperimentError

        farm = _StubFarm(shards=1)
        for kwargs in (
            {"batch_window": -0.1},
            {"batch_max": 0},
            {"queue_depth": 0},
            {"max_inflight": 0},
            {"port": 70_000},
            {"port": -1},
        ):
            with pytest.raises(ExperimentError):
                IngressServer(farm, **kwargs)

    def test_tcp_and_unix_are_exclusive_paths(self, tmp_path):
        # path= wins over host/port when given; both forms must bind.
        farm = _StubFarm(shards=1)

        async def run():
            server = IngressServer(
                farm, path=str(tmp_path / "x.sock"), close_farm=False
            )
            await server.start()
            address = server.address
            await server.drain()
            return address

        assert asyncio.run(run()) == str(tmp_path / "x.sock")
