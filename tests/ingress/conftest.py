"""Ingress-suite hygiene: no fault plan may leak between tests."""

from __future__ import annotations

import os

import pytest

from repro.reliability.faults import FAULTS_ENV, clear_fault_plan


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    """Deactivate any plan (installed or env-adopted) around every test."""
    clear_fault_plan()
    saved = os.environ.pop(FAULTS_ENV, None)
    yield
    clear_fault_plan()
    if saved is not None:
        os.environ[FAULTS_ENV] = saved
    else:
        os.environ.pop(FAULTS_ENV, None)
