"""The ingress wire protocol: framing, handshake, request/response codecs.

Everything here is pure bytes — no sockets, no farm — so these tests pin
the exact wire format: a frame that round-trips today must round-trip
forever (or bump ``PROTOCOL_VERSION``).
"""

from __future__ import annotations

import struct

import pytest

from repro.errors import IngressProtocolError
from repro.ingress import protocol


def _payload(frame: bytes) -> bytes:
    """Strip the length prefix off a complete encoded frame."""
    frames, rest = protocol.split_frames(frame)
    assert len(frames) == 1 and rest == b""
    return frames[0]


class TestFraming:
    def test_encode_prefixes_length(self):
        assert protocol.encode_frame(b"abc") == b"\x00\x00\x00\x03abc"

    def test_split_frames_handles_arbitrary_segmentation(self):
        wire = (
            protocol.encode_frame(b"one")
            + protocol.encode_frame(b"")
            + protocol.encode_frame(b"three")
        )
        # Feed the stream byte by byte — worst-case TCP segmentation.
        got, buffer = [], b""
        for i in range(len(wire)):
            buffer += wire[i : i + 1]
            frames, buffer = protocol.split_frames(buffer)
            got.extend(frames)
        assert got == [b"one", b"", b"three"]
        assert buffer == b""

    def test_split_frames_keeps_partial_tail(self):
        wire = protocol.encode_frame(b"done") + b"\x00\x00\x00\x09part"
        frames, rest = protocol.split_frames(wire)
        assert frames == [b"done"]
        assert rest == b"\x00\x00\x00\x09part"

    def test_oversized_length_prefix_is_rejected(self):
        huge = struct.pack("!I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(IngressProtocolError, match="cap"):
            protocol.split_frames(huge)
        with pytest.raises(IngressProtocolError, match="cap"):
            protocol.decode_frame_length(huge)

    def test_oversized_payload_is_rejected_on_encode(self):
        class FakeLen(bytes):
            def __len__(self):
                return protocol.MAX_FRAME_BYTES + 1

        with pytest.raises(IngressProtocolError, match="cap"):
            protocol.encode_frame(FakeLen())

    def test_decode_frame_length_wants_exact_header(self):
        with pytest.raises(IngressProtocolError, match="header"):
            protocol.decode_frame_length(b"\x00\x00")


class TestHandshake:
    def test_round_trip_carries_shard_count(self):
        payload = _payload(protocol.encode_handshake(shards=5))
        assert protocol.decode_handshake(payload) == 5

    def test_client_handshake_is_zero_shards(self):
        assert protocol.decode_handshake(
            _payload(protocol.encode_handshake())
        ) == 0

    def test_bad_magic_is_loud(self):
        payload = struct.pack("!4sHH", b"HTTP", protocol.PROTOCOL_VERSION, 0)
        with pytest.raises(IngressProtocolError, match="magic"):
            protocol.decode_handshake(payload)

    def test_version_mismatch_is_loud(self):
        payload = struct.pack(
            "!4sHH",
            protocol.HANDSHAKE_MAGIC,
            protocol.PROTOCOL_VERSION + 1,
            0,
        )
        with pytest.raises(IngressProtocolError, match="version"):
            protocol.decode_handshake(payload)

    def test_truncated_handshake_is_loud(self):
        with pytest.raises(IngressProtocolError, match="bytes"):
            protocol.decode_handshake(b"RK")


class TestRequestCodec:
    def test_ping_and_metrics_round_trip(self):
        for op in (protocol.OP_PING, protocol.OP_METRICS):
            request = protocol.decode_request(
                _payload(protocol.encode_request(op, 42))
            )
            assert request.op == op
            assert request.request_id == 42
            assert request.sources == ()

    def test_serve_round_trip(self):
        frame = protocol.encode_request(
            protocol.OP_SERVE, 7, key="tenant-a", sources=[3], targets=[901]
        )
        request = protocol.decode_request(_payload(frame))
        assert request.key == "tenant-a"
        assert request.sources == (3,)
        assert request.targets == (901,)
        assert request.deadline == 0.0

    def test_serve_batch_round_trip_with_deadline(self):
        frame = protocol.encode_request(
            protocol.OP_SERVE_BATCH,
            0xFFFF_FFFF,
            key="k",
            sources=[1, 2, 3],
            targets=[9, 8, 7],
            deadline=0.25,
        )
        request = protocol.decode_request(_payload(frame))
        assert request.request_id == 0xFFFF_FFFF
        assert request.sources == (1, 2, 3)
        assert request.targets == (9, 8, 7)
        assert request.deadline == pytest.approx(0.25)

    def test_unicode_key_round_trips(self):
        frame = protocol.encode_request(
            protocol.OP_SERVE_BATCH, 1, key="clé-λ", sources=[1], targets=[2]
        )
        assert protocol.decode_request(_payload(frame)).key == "clé-λ"

    def test_mismatched_batch_lengths_rejected(self):
        with pytest.raises(IngressProtocolError, match="equal length"):
            protocol.encode_request(
                protocol.OP_SERVE_BATCH, 1, key="k",
                sources=[1, 2], targets=[3],
            )

    def test_serve_wants_exactly_one_pair(self):
        with pytest.raises(IngressProtocolError, match="exactly one"):
            protocol.encode_request(
                protocol.OP_SERVE, 1, key="k",
                sources=[1, 2], targets=[3, 4],
            )

    def test_oversized_key_rejected(self):
        with pytest.raises(IngressProtocolError, match="key cap"):
            protocol.encode_request(
                protocol.OP_SERVE, 1, key="x" * 70_000,
                sources=[1], targets=[2],
            )

    def test_unknown_opcode_rejected_both_ways(self):
        with pytest.raises(IngressProtocolError, match="opcode"):
            protocol.encode_request(99, 1)
        payload = struct.pack("!IBd", 1, 99, 0.0)
        with pytest.raises(IngressProtocolError, match="opcode"):
            protocol.decode_request(payload)

    def test_truncated_request_is_loud(self):
        frame = protocol.encode_request(
            protocol.OP_SERVE_BATCH, 1, key="k",
            sources=[1, 2], targets=[3, 4],
        )
        payload = _payload(frame)
        for cut in (2, len(payload) - 3):
            with pytest.raises(IngressProtocolError):
                protocol.decode_request(payload[:cut])


class TestResponseCodec:
    def test_bare_ok_round_trip(self):
        response = protocol.decode_response(
            _payload(protocol.encode_response(3, protocol.STATUS_OK))
        )
        assert response.status == protocol.STATUS_OK
        assert response.totals is None
        assert response.metrics is None

    def test_totals_round_trip(self):
        totals = (12, 345, 67, 2**40)  # links outgrow u32 on long streams
        response = protocol.decode_response(
            _payload(
                protocol.encode_response(
                    9, protocol.STATUS_OK, totals=totals
                )
            )
        )
        assert response.totals == totals

    def test_metrics_round_trip(self):
        metrics = {
            "requests": 100,
            "total_routing": 400,
            "total_rotations": 200,
            "total_links_changed": 900,
            "admitted": 101,
            "served": 99,
            "overloaded": 1,
            "errors": 1,
            "latency_p50_seconds": 0.001,
            "latency_p99_seconds": 0.01,
            "shards": [
                {
                    "shard": 0,
                    "pid": 4242,
                    "health": "healthy",
                    "breaker": "closed",
                    "breaker_opens": 0,
                    "recoveries": 0,
                },
                {
                    "shard": 1,
                    "pid": 4243,
                    "health": "recovering",
                    "breaker": "half_open",
                    "breaker_opens": 3,
                    "recoveries": 2,
                },
            ],
        }
        response = protocol.decode_response(
            _payload(
                protocol.encode_response(
                    5, protocol.STATUS_OK, metrics=metrics
                )
            )
        )
        assert response.metrics == metrics

    def test_metrics_without_shards_round_trips_empty_list(self):
        metrics = {
            "requests": 10,
            "total_routing": 40,
            "total_rotations": 20,
            "total_links_changed": 90,
            "admitted": 10,
            "served": 10,
            "overloaded": 0,
            "errors": 0,
            "latency_p50_seconds": 0.0,
            "latency_p99_seconds": 0.0,
        }
        response = protocol.decode_response(
            _payload(
                protocol.encode_response(
                    6, protocol.STATUS_OK, metrics=metrics
                )
            )
        )
        assert response.metrics == {**metrics, "shards": []}

    def test_overload_carries_retry_after_hint(self):
        response = protocol.decode_response(
            _payload(
                protocol.encode_response(
                    4,
                    protocol.STATUS_OVERLOAD,
                    message="breaker open",
                    retry_after=0.75,
                )
            )
        )
        assert response.status == protocol.STATUS_OVERLOAD
        assert response.message == "breaker open"
        assert response.retry_after == pytest.approx(0.75)

    def test_error_and_overload_carry_message(self):
        for status in (protocol.STATUS_ERROR, protocol.STATUS_OVERLOAD):
            response = protocol.decode_response(
                _payload(
                    protocol.encode_response(8, status, message="why not")
                )
            )
            assert response.status == status
            assert response.message == "why not"

    def test_unknown_status_rejected_both_ways(self):
        with pytest.raises(IngressProtocolError, match="status"):
            protocol.encode_response(1, 9)
        with pytest.raises(IngressProtocolError, match="status"):
            protocol.decode_response(struct.pack("!IB", 1, 9))

    def test_unrecognized_ok_body_is_loud(self):
        payload = struct.pack("!IB", 1, protocol.STATUS_OK) + b"\x00" * 7
        with pytest.raises(IngressProtocolError, match="shape"):
            protocol.decode_response(payload)

    def test_request_id_echo_discipline(self):
        # The id a client packs is the id it gets back — the contract
        # that lets one connection pipeline and match out of order.
        for rid in (0, 1, 2**31, 0xFFFF_FFFF):
            frame = protocol.encode_response(rid, protocol.STATUS_OK)
            assert protocol.decode_response(_payload(frame)).request_id == rid
