"""Property-based checks of the ASCII layout engine on random trees."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import build_random_tree
from repro.viz.ascii import render_kary_network, render_tree


@given(
    n=st.integers(min_value=1, max_value=60),
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_property_every_label_rendered_once(n, k, seed):
    tree = build_random_tree(n, k, seed=seed)
    art = render_kary_network(tree)
    for nid in range(1, n + 1):
        assert art.count(f"({nid})") == 1


@given(
    n=st.integers(min_value=2, max_value=40),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_property_parents_render_above_children(n, k, seed):
    tree = build_random_tree(n, k, seed=seed)
    art = render_kary_network(tree)
    lines = art.split("\n")

    def row_of(nid: int) -> int:
        token = f"({nid})"
        for i, line in enumerate(lines):
            if token in line:
                return i
        raise AssertionError(f"{token} not rendered")

    for parent, child in tree.iter_edges():
        assert row_of(parent) < row_of(child)


@given(
    n=st.integers(min_value=2, max_value=40),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_property_children_of_one_node_share_a_row(n, k, seed):
    tree = build_random_tree(n, k, seed=seed)
    art = render_kary_network(tree)
    lines = art.split("\n")

    def row_of(nid: int) -> int:
        token = f"({nid})"
        return next(i for i, line in enumerate(lines) if token in line)

    for node in tree.root.iter_subtree():
        rows = {row_of(child.nid) for child in node.child_iter()}
        assert len(rows) <= 1  # siblings are laid out side by side


@given(depth=st.integers(min_value=1, max_value=6))
@settings(max_examples=10, deadline=None)
def test_property_deep_chain_renders(depth):
    # degenerate chains (a dict-based tree, exercising the generic adapter)
    chain = {"label": "0", "child": None}
    node = chain
    for i in range(1, depth + 1):
        node["child"] = {"label": str(i), "child": None}
        node = node["child"]

    def kids(node):
        return [node["child"]] if node["child"] else []

    art = render_tree(chain, kids, lambda nd: nd["label"])
    assert art.count("|") == depth  # one connector per edge


def test_random_label_widths_do_not_collide():
    # mixed-width labels must not overlap in the merged rows
    rng = random.Random(5)

    def make(depth):
        node = {"label": "x" * rng.randint(1, 12), "kids": []}
        if depth > 0:
            node["kids"] = [make(depth - 1) for _ in range(rng.randint(1, 3))]
        return node

    root = make(3)
    art = render_tree(root, lambda nd: nd["kids"], lambda nd: nd["label"])
    for line in art.split("\n"):
        # labels are x-runs; two labels colliding would merge runs across
        # the gap, which shows up as a run longer than the max label
        assert all(len(run) <= 12 for run in line.split() if set(run) == {"x"})
