"""Paper-figure regeneration: every schematic builds from live structures
and reflects the claimed topology facts."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.viz.figures import (
    figure1_node_layout,
    figure2_centroid_tree,
    figure3_semi_splay_states,
    figure4_chain_state,
    figure5_k_splay_states,
    figure6_k_splay_close_states,
    figure7_centroid_splaynet,
    figure8_kplus1_splaynet,
    render_all_figures,
)


class TestFigure1:
    def test_cells_match_arity(self):
        art = figure1_node_layout(k=5)
        assert art.count("r") >= 4
        assert "k-1 = 4" in art

    def test_bad_k(self):
        with pytest.raises(ReproError):
            figure1_node_layout(k=1)


class TestFigure2:
    def test_builds_and_mentions_blocks(self):
        art = figure2_centroid_tree(n=30, k=2)
        assert "k+1 = 3" in art
        assert "(1)" in art  # nodes rendered

    def test_various_arity(self):
        art = figure2_centroid_tree(n=40, k=3)
        assert "k=3" in art


class TestRotationFigures:
    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_semi_splay_before_after(self, k):
        art = figure3_semi_splay_states(k=k)
        assert "BEFORE:" in art and "AFTER:" in art

    def test_chain_state(self):
        art = figure4_chain_state(k=3)
        assert "grandparent" in art

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_case1_found_and_applied(self, k):
        art = figure5_k_splay_states(k=k)
        assert "case 1" in art
        assert "BEFORE:" in art and "AFTER:" in art

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_case2_found_and_applied(self, k):
        art = figure6_k_splay_close_states(k=k)
        assert "case 2" in art
        assert "BEFORE:" in art and "AFTER:" in art


class TestCentroidFigures:
    def test_figure7_block_count(self):
        art = figure7_centroid_splaynet(n=30)
        # 3-SplayNet: 2k-1 = 3 blocks
        assert sum(1 for line in art.split("\n") if line.strip().startswith("block")) == 3
        assert "c1" in art and "c2" in art

    def test_figure8_block_count(self):
        art = figure8_kplus1_splaynet(n=50, k=3)
        # (k+1)-SplayNet: 2k-1 = 5 blocks
        assert sum(1 for line in art.split("\n") if line.strip().startswith("block")) == 5

    def test_figure8_sizes_sum(self):
        n = 50
        art = figure8_kplus1_splaynet(n=n, k=3)
        sizes = [
            int(line.split(":")[1].split("nodes")[0])
            for line in art.split("\n")
            if line.strip().startswith("block")
        ]
        assert sum(sizes) == n - 2  # all nodes except the two centroids


class TestGallery:
    def test_all_eight_figures(self):
        figures = render_all_figures()
        assert set(figures) == {f"figure{i}" for i in range(1, 9)}
        assert all(len(text) > 20 for text in figures.values())
