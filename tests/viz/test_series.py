"""Series rendering: recorded-run sparklines and convergence panels."""

from __future__ import annotations

import pytest

from repro.core.splaynet import KArySplayNet
from repro.errors import ReproError
from repro.network.simulator import Simulator
from repro.viz.series import convergence_panel, render_series
from repro.workloads.synthetic import temporal_trace


@pytest.fixture(scope="module")
def recorded_run():
    trace = temporal_trace(32, 1_500, 0.8, 3)
    return Simulator(record_series=True).run(
        KArySplayNet(32, 2), trace, name="demo"
    )


class TestRenderSeries:
    def test_contains_sparkline_and_stats(self, recorded_run):
        text = render_series(recorded_run)
        assert "demo" in text
        assert "warm-up" in text
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")

    def test_bucket_clamping(self, recorded_run):
        text = render_series(recorded_run, buckets=10_000)
        assert len(text.split("\n")) == 3

    def test_requires_series(self):
        trace = temporal_trace(16, 100, 0.5, 1)
        result = Simulator().run(KArySplayNet(16, 2), trace)
        with pytest.raises(ReproError):
            render_series(result)


class TestConvergencePanel:
    def test_aligned_rows(self, recorded_run):
        panel = convergence_panel({"a": recorded_run, "bb": recorded_run})
        lines = panel.split("\n")
        assert len(lines) == 2

        def spark_col(line: str) -> int:
            return min(line.index(ch) for ch in set(line) if ch in "▁▂▃▄▅▆▇█")

        # sparklines start at the same column (labels padded)
        assert spark_col(lines[0]) == spark_col(lines[1])

    def test_empty(self):
        assert convergence_panel({}) == "(no runs)"

    def test_missing_series_rejected(self):
        trace = temporal_trace(16, 100, 0.5, 1)
        bare = Simulator().run(KArySplayNet(16, 2), trace)
        with pytest.raises(ReproError):
            convergence_panel({"x": bare})

    def test_tail_reported(self, recorded_run):
        assert "tail" in convergence_panel({"a": recorded_run})
