"""DOT export: syntax shape, escaping, highlighting, cluster pairs."""

from __future__ import annotations

from repro.core.builders import build_complete_tree
from repro.viz.dot import rotation_pair_dot, tree_to_dot


def _kary_adapter(tree):
    return tree.root, (lambda nd: list(nd.child_iter())), (lambda nd: str(nd.nid))


class TestTreeToDot:
    def test_digraph_shape(self):
        tree = build_complete_tree(7, 2)
        root, children, label = _kary_adapter(tree)
        dot = tree_to_dot(root, children, label)
        assert dot.startswith("digraph tree {")
        assert dot.rstrip().endswith("}")

    def test_all_nodes_and_edges(self):
        tree = build_complete_tree(7, 2)
        root, children, label = _kary_adapter(tree)
        dot = tree_to_dot(root, children, label)
        for nid in range(1, 8):
            assert f'"{nid}"' in dot
        assert dot.count("->") == 6  # n-1 edges

    def test_highlight(self):
        tree = build_complete_tree(3, 2)
        root, children, label = _kary_adapter(tree)
        dot = tree_to_dot(root, children, label, highlight={"1"})
        assert "fillcolor" in dot

    def test_custom_name(self):
        tree = build_complete_tree(3, 2)
        root, children, label = _kary_adapter(tree)
        assert "digraph mygraph {" in tree_to_dot(
            root, children, label, name="mygraph"
        )

    def test_escaping(self):
        dot = tree_to_dot("a\"b", lambda _: [], lambda n: n)
        assert '\\"' in dot


class TestRotationPairDot:
    def test_two_clusters(self):
        before = build_complete_tree(7, 2)
        after = build_complete_tree(7, 3)
        dot = rotation_pair_dot(
            before.root,
            after.root,
            lambda nd: list(nd.child_iter()),
            lambda nd: str(nd.nid),
        )
        assert "cluster_before" in dot
        assert "cluster_after" in dot
        # identities are prefixed so both snapshots coexist
        assert '"before_1"' in dot and '"after_1"' in dot

    def test_touched_highlight(self):
        tree = build_complete_tree(3, 2)
        dot = rotation_pair_dot(
            tree.root,
            tree.root,
            lambda nd: list(nd.child_iter()),
            lambda nd: str(nd.nid),
            touched={"2"},
        )
        assert dot.count("fillcolor") == 2  # once per cluster
