"""ASCII renderer: layout correctness, adapters, charts."""

from __future__ import annotations

import pytest

from repro.core.builders import build_complete_tree, build_path_tree
from repro.datastructures.sherk import SherkKarySplayTree
from repro.datastructures.splay_tree import SplayTree
from repro.errors import ReproError
from repro.viz.ascii import (
    bar_chart,
    render_kary_network,
    render_multiway_tree,
    render_splay_tree,
    render_tree,
    sparkline,
)


class TestRenderTree:
    def test_single_node(self):
        art = render_tree("x", lambda _: [], lambda n: f"({n})")
        assert art == "(x)"

    def test_all_labels_present(self):
        tree = build_complete_tree(15, 2)
        art = render_kary_network(tree)
        for nid in range(1, 16):
            assert f"({nid})" in art

    def test_children_below_parent(self):
        tree = build_complete_tree(7, 2)
        art = render_kary_network(tree)
        lines = art.split("\n")
        root_row = next(i for i, l in enumerate(lines) if f"({tree.root_id})" in l)
        assert root_row == 0

    def test_max_nodes_guard(self):
        tree = build_complete_tree(50, 2)
        with pytest.raises(ReproError):
            render_kary_network(tree, max_nodes=10)

    def test_connector_rows_present(self):
        tree = build_complete_tree(7, 2)
        art = render_kary_network(tree)
        assert "+" in art  # multi-child connector rail

    def test_single_child_pipe(self):
        tree = build_path_tree(3, 2)
        art = render_kary_network(tree)
        assert "|" in art

    def test_wide_fanout(self):
        tree = build_complete_tree(11, 10)
        art = render_kary_network(tree)
        assert all(f"({nid})" in art for nid in range(1, 12))

    def test_show_routing(self):
        tree = build_complete_tree(7, 3)
        art = render_kary_network(tree, show_routing=True)
        assert "[" in art and "|" in art

    def test_no_trailing_whitespace(self):
        tree = build_complete_tree(15, 2)
        for line in render_kary_network(tree).split("\n"):
            assert line == line.rstrip()


class TestAdapters:
    def test_splay_tree(self):
        tree = SplayTree(range(1, 8))
        art = render_splay_tree(tree)
        assert "(4)" in art  # balanced root

    def test_empty_splay_tree(self):
        assert render_splay_tree(SplayTree([])) == "(empty)"

    def test_multiway_tree(self):
        tree = SherkKarySplayTree(range(1, 20), 4)
        art = render_multiway_tree(tree)
        assert "[" in art and "]" in art

    def test_empty_multiway(self):
        assert render_multiway_tree(SherkKarySplayTree([], 3)) == "(empty)"


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_length(self):
        assert len(sparkline(range(10))) == 10


class TestBarChart:
    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_rows_and_values(self):
        chart = bar_chart([("alpha", 10.0), ("beta", 5.0)])
        lines = chart.split("\n")
        assert len(lines) == 2
        assert "alpha" in lines[0] and "10" in lines[0]
        assert lines[0].count("#") > lines[1].count("#")

    def test_unit_suffix(self):
        chart = bar_chart([("x", 3.0)], unit="ms")
        assert "3ms" in chart

    def test_baseline_marker(self):
        chart = bar_chart([("x", 10.0), ("y", 2.0)], baseline=5.0)
        assert "|" in chart

    def test_zero_values(self):
        chart = bar_chart([("x", 0.0)])
        assert "x" in chart

    def test_width_guard(self):
        with pytest.raises(ReproError):
            bar_chart([("x", 1.0)], width=2)

    def test_label_alignment(self):
        chart = bar_chart([("short", 1.0), ("a-longer-label", 2.0)])
        lines = chart.split("\n")
        # bars start at the same column
        assert lines[0].index("#") == lines[1].index("#")
