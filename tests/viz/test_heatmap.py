"""Demand heatmap: shading, pooling, structure visibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz.heatmap import render_demand_heatmap
from repro.workloads.demand import DemandMatrix
from repro.workloads.mixtures import elephant_mice_trace
from repro.workloads.synthetic import uniform_trace


class TestRendering:
    def test_square_output(self):
        demand = DemandMatrix.from_trace(uniform_trace(20, 2_000, 1))
        art = render_demand_heatmap(demand, legend=False)
        lines = art.split("\n")
        assert len(lines) == 20
        assert all(len(line) == 20 for line in lines)

    def test_pooling_large_matrix(self):
        demand = DemandMatrix.from_trace(uniform_trace(200, 5_000, 2))
        art = render_demand_heatmap(demand, cells=32, legend=False)
        assert len(art.split("\n")) == 32

    def test_legend(self):
        demand = DemandMatrix.from_trace(uniform_trace(16, 500, 3))
        art = render_demand_heatmap(demand)
        assert "total 500 requests" in art

    def test_empty_matrix(self):
        demand = DemandMatrix(8, dense=np.zeros((8, 8), dtype=np.int64))
        art = render_demand_heatmap(demand, legend=False)
        assert set("".join(art.split("\n"))) == {" "}

    def test_bad_cells(self):
        demand = DemandMatrix.uniform(4)
        with pytest.raises(ReproError):
            render_demand_heatmap(demand, cells=1)


class TestStructureVisibility:
    def test_elephants_show_as_peaks(self):
        trace = elephant_mice_trace(
            30, 20_000, elephants=2, elephant_share=0.9, seed=4
        )
        demand = DemandMatrix.from_trace(trace)
        art = render_demand_heatmap(demand, legend=False)
        flat = "".join(art.split("\n"))
        # the elephant pair(s) hit the top shades; everything else is faint
        peaks = sum(flat.count(ch) for ch in "%@")
        assert 1 <= peaks <= 2
        assert flat.count(".") + flat.count(":") > 100  # visible mice

    def test_uniform_is_flat(self):
        demand = DemandMatrix.from_trace(uniform_trace(16, 50_000, 5))
        art = render_demand_heatmap(demand, legend=False, log_scale=False)
        shades = {ch for ch in "".join(art.split("\n")) if ch != " "}
        # heavy sampling: all off-diagonal cells within a couple of shades
        assert len(shades) <= 4

    def test_diagonal_is_empty(self):
        demand = DemandMatrix.from_trace(uniform_trace(12, 5_000, 6))
        art = render_demand_heatmap(demand, legend=False).split("\n")
        assert all(art[i][i] == " " for i in range(12))

    def test_log_vs_linear(self):
        trace = elephant_mice_trace(20, 10_000, elephants=1,
                                    elephant_share=0.95, seed=7)
        demand = DemandMatrix.from_trace(trace)
        linear = render_demand_heatmap(demand, legend=False, log_scale=False)
        logscale = render_demand_heatmap(demand, legend=False, log_scale=True)
        # under linear shading the mice vanish; log keeps them visible
        mice_linear = sum(1 for ch in linear if ch not in " @\n")
        mice_log = sum(1 for ch in logscale if ch not in " @\n")
        assert mice_log > mice_linear
