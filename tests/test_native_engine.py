"""Native-engine suite: the compiled kernel must mirror flat and object.

Two worlds are covered.  With the kernel available (a C toolchain or a
cached build), the ``native`` engine is pinned to the other two backends
decision-for-decision: identical per-request cost totals and preorder
topology signatures across arities, block policies and serving
interfaces, plus checkpoint transfer in every engine direction.  Without
it (simulated via ``REPRO_NATIVE=0``), ``engine="native"`` must degrade
to ``flat`` with a single ``RuntimeWarning`` while specs and sessions
keep working — the suite passes in both worlds.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import _native
from repro.core import engine as engine_module
from repro.core.engine import (
    ENGINES,
    best_available_engine,
    engine_tree_class,
    native_available,
    resolve_engine,
)
from repro.core.flat import FlatTree, tree_signature
from repro.core.native import NativeTree
from repro.core.splaynet import KArySplayNet
from repro.errors import EngineError
from repro.net import NetworkSpec, build_network, open_session
from repro.workloads.synthetic import uniform_trace, zipf_trace

needs_kernel = pytest.mark.skipif(
    not native_available(), reason="compiled serve kernel unavailable"
)


def result_tuple(res):
    return (res.routing_cost, res.rotations, res.links_changed)


# ----------------------------------------------------------------------
# availability and resolution
# ----------------------------------------------------------------------
class TestEngineResolution:
    def test_native_registered(self):
        assert "native" in ENGINES

    def test_best_available_engine(self):
        best = best_available_engine()
        assert best in ("native", "flat")
        assert (best == "native") == native_available()

    def test_resolution_matches_availability(self):
        resolved = resolve_engine("native")
        if native_available():
            assert resolved == "native"
        else:
            assert resolved == "flat"

    def test_engine_tree_class_mapping(self):
        assert engine_tree_class("flat") is FlatTree
        assert engine_tree_class("native") is NativeTree
        with pytest.raises(EngineError):
            engine_tree_class("object")

    def test_spec_accepts_native_and_round_trips(self):
        spec = NetworkSpec("kary-splaynet", n=16, k=3, engine="native")
        assert NetworkSpec.from_json(spec.to_json()) == spec


# ----------------------------------------------------------------------
# the no-toolchain world (simulated: REPRO_NATIVE=0)
# ----------------------------------------------------------------------
@pytest.fixture
def no_native(monkeypatch):
    """Make the kernel unavailable and re-arm the one-time warning."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    _native._reset_for_tests()
    monkeypatch.setattr(engine_module, "_native_fallback_warned", False)
    yield
    _native._reset_for_tests()


class TestNoToolchainFallback:
    def test_unavailable_and_reason_recorded(self, no_native):
        assert not native_available()
        assert "REPRO_NATIVE" in _native.build_error()

    def test_native_builds_as_flat_and_warns_once(self, no_native):
        with pytest.warns(RuntimeWarning, match="falling back"):
            net = KArySplayNet(16, 2, engine="native")
        assert net.engine == "flat"
        assert type(net.flat) is FlatTree
        # The warning fires once per process, not once per construction.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = KArySplayNet(16, 2, engine="native")
        assert again.engine == "flat"

    def test_spec_round_trip_still_builds(self, no_native):
        spec = NetworkSpec("kary-splaynet", n=12, k=2, engine="native")
        restored = NetworkSpec.from_json(spec.to_json())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            net = build_network(restored)
        assert net.engine == "flat"
        assert net.serve(1, 9).routing_cost > 0

    def test_best_available_engine_degrades(self, no_native):
        assert best_available_engine() == "flat"

    def test_hotpath_defaults_drop_native(self, no_native):
        from repro.experiments.hotpath import default_hotpath_engines

        assert default_hotpath_engines() == ("object", "flat")


# ----------------------------------------------------------------------
# kernel equivalence (only with the kernel present)
# ----------------------------------------------------------------------
@needs_kernel
class TestNativeEquivalence:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("policy", ["center", "left", "right"])
    def test_per_request_equivalence(self, k, policy):
        """Single-request batches through the kernel mirror the object
        engine request by request, including the evolving topology."""
        n, m = 32, 250
        trace = uniform_trace(n, m, seed=4000 * k + len(policy))
        obj = KArySplayNet(n, k, engine="object", policy=policy)
        nat = KArySplayNet(n, k, engine="native", policy=policy)
        assert nat.engine == "native"
        assert type(nat.flat) is NativeTree
        for i, (u, v) in enumerate(trace.pairs()):
            ra = obj.serve(u, v)
            batch = nat.serve_trace([u], [v])
            assert result_tuple(ra) == (
                batch.total_routing,
                batch.total_rotations,
                batch.total_links_changed,
            ), (k, policy, i)
            if i % 25 == 0:
                assert tree_signature(obj.tree) == nat.flat.signature()
        assert tree_signature(obj.tree) == nat.flat.signature()
        nat.flat.validate()

    @pytest.mark.parametrize("k", [2, 4])
    def test_batched_series_equivalence(self, k):
        n, m = 40, 500
        trace = zipf_trace(n, m, 1.3, seed=k)
        flat = KArySplayNet(n, k, engine="flat")
        nat = KArySplayNet(n, k, engine="native")
        ba = flat.serve_trace(trace, record_series=True)
        bb = nat.serve_trace(trace, record_series=True)
        assert (ba.total_routing, ba.total_rotations, ba.total_links_changed) == (
            bb.total_routing,
            bb.total_rotations,
            bb.total_links_changed,
        )
        assert np.array_equal(ba.routing_series, bb.routing_series)
        assert np.array_equal(ba.rotation_series, bb.rotation_series)
        assert flat.flat.signature() == nat.flat.signature()

    def test_mixed_scalar_and_batched_serving(self):
        """Scalar serves (Python path) interleaved with batches (kernel)
        stay on the one true topology."""
        n, k = 36, 3
        flat = KArySplayNet(n, k, engine="flat")
        nat = KArySplayNet(n, k, engine="native")
        rng = np.random.default_rng(7)
        for round_ in range(6):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n))
            v += v >= u
            assert result_tuple(flat.serve(u, v)) == result_tuple(nat.serve(u, v))
            us = rng.integers(1, n + 1, size=60)
            vs = rng.integers(1, n + 1, size=60)
            ba = flat.serve_trace(us, vs)
            bb = nat.serve_trace(us, vs)
            assert (
                ba.total_routing,
                ba.total_rotations,
                ba.total_links_changed,
            ) == (
                bb.total_routing,
                bb.total_rotations,
                bb.total_links_changed,
            ), round_
        assert flat.flat.signature() == nat.flat.signature()
        nat.flat.validate()

    def test_deep_splay_delegates_to_python(self):
        """depth > 2 is outside the kernel: the native engine must run the
        generalized discipline through the inherited Python path."""
        n, k, m = 28, 3, 150
        trace = uniform_trace(n, m, seed=17)
        obj = KArySplayNet(n, k, engine="object", splay_depth=3)
        nat = KArySplayNet(n, k, engine="native", splay_depth=3)
        ba = obj.serve_trace(trace)
        bb = nat.serve_trace(trace)
        assert (ba.total_routing, ba.total_rotations, ba.total_links_changed) == (
            bb.total_routing,
            bb.total_rotations,
            bb.total_links_changed,
        )
        assert tree_signature(obj.tree) == nat.flat.signature()

    def test_centroid_native_equivalence(self):
        from repro.core.centroid_splaynet import CentroidSplayNet

        n, k, m = 40, 2, 300
        trace = zipf_trace(n, m, 1.2, seed=5)
        flat = CentroidSplayNet(n, k, engine="flat")
        nat = CentroidSplayNet(n, k, engine="native")
        assert nat.engine == "native"
        ba = flat.serve_trace(trace.sources, trace.targets)
        bb = nat.serve_trace(trace.sources, trace.targets)
        assert (ba.total_routing, ba.total_rotations, ba.total_links_changed) == (
            bb.total_routing,
            bb.total_rotations,
            bb.total_links_changed,
        )
        nat.validate()

    def test_session_mid_stream_snapshot_transfer(self):
        """A checkpoint taken mid-stream on the native engine restores on
        flat and object sessions with identical replay costs."""
        n, k = 48, 3
        trace = zipf_trace(n, 600, 1.2, seed=21)
        native_session = open_session(
            "kary-splaynet", n=n, k=k, engine="native"
        )
        native_session.serve_stream(
            trace.sources[:400], trace.targets[:400], chunk=128
        )
        checkpoint = native_session.snapshot()
        tail = (trace.sources[400:].tolist(), trace.targets[400:].tolist())
        reference = [
            result_tuple(native_session.serve(u, v)) for u, v in zip(*tail)
        ]
        for engine in ("object", "flat", "native"):
            session = open_session("kary-splaynet", n=n, k=k, engine=engine)
            session.restore(checkpoint)
            replay = [
                result_tuple(session.serve(u, v)) for u, v in zip(*tail)
            ]
            assert replay == reference, engine


# ----------------------------------------------------------------------
# NativeTree unit behaviour (kernel present)
# ----------------------------------------------------------------------
@needs_kernel
class TestNativeTreeUnit:
    def make_tree(self, n=20, k=3):
        from repro.core.builders import build_balanced_tree

        return NativeTree.from_tree(build_balanced_tree(n, k))

    def test_copy_and_from_flat_preserve_class_and_topology(self):
        nat = self.make_tree()
        assert type(nat.copy()) is NativeTree
        assert nat.copy().signature() == nat.signature()
        as_flat = FlatTree.from_flat(nat)
        assert type(as_flat) is FlatTree
        assert as_flat.signature() == nat.signature()
        back = NativeTree.from_flat(as_flat)
        assert type(back) is NativeTree
        assert back.signature() == nat.signature()

    def test_series_list_buffers_supported(self):
        nat = self.make_tree()
        flat = FlatTree.from_flat(nat)
        sources = [1, 5, 9, 2, 2]
        targets = [12, 1, 4, 2, 17]
        rs_native, qs_native = [0] * 5, [0] * 5
        rs_flat, qs_flat = [0] * 5, [0] * 5
        totals_native = nat.serve_many(
            sources, targets, routing_series=rs_native, rotation_series=qs_native
        )
        totals_flat = flat.serve_many(
            sources, targets, routing_series=rs_flat, rotation_series=qs_flat
        )
        assert totals_native == totals_flat
        assert rs_native == rs_flat
        assert qs_native == qs_flat

    def test_series_buffers_must_come_together(self):
        nat = self.make_tree()
        with pytest.raises(EngineError, match="together"):
            nat.serve_many([1, 2], [2, 3], routing_series=[0, 0])

    def test_out_of_range_identifiers_rejected(self):
        nat = self.make_tree(n=10, k=2)
        with pytest.raises(EngineError, match="1..10"):
            nat.serve_many([1], [11])
        with pytest.raises(EngineError, match="1..10"):
            nat.serve_many([0], [3])

    def test_out_of_range_self_pairs_served_like_flat(self):
        """u == v short-circuits before any array access, so a degenerate
        out-of-range self-pair must serve at cost 0 on both engines."""
        nat = self.make_tree(n=10, k=2)
        flat = FlatTree.from_flat(nat)
        sources, targets = [50, 1], [50, 5]
        assert nat.serve_many(sources, targets) == flat.serve_many(
            sources, targets
        )
        assert nat.signature() == flat.signature()

    def test_validate_after_kernel_batch(self):
        nat = self.make_tree(n=30, k=4)
        trace = zipf_trace(30, 400, 1.3, seed=3)
        nat.serve_many(trace.sources.tolist(), trace.targets.tolist())
        nat.validate()


# ----------------------------------------------------------------------
# the resident runtime (kernel-owned tree state across calls)
# ----------------------------------------------------------------------
@needs_kernel
class TestResidentRuntime:
    """The handle-based kernel API: C-owned buffers, dirty-flag sync.

    A resident NativeTree keeps its authoritative state inside the
    kernel handle between serves; every inspection / snapshot /
    cross-engine path must transparently sync it back.  Disabling
    residency (``set_resident(False)``) restores the marshalled
    per-call round trip — both modes must be request-for-request
    identical to each other and to the flat and object engines.
    """

    def test_scalar_serves_stay_resident_and_match_object(self):
        from repro.core import native as native_module

        n, k = 36, 3
        obj = KArySplayNet(n, k, engine="object")
        nat = KArySplayNet(n, k, engine="native")
        assert native_module.resident_enabled()
        trace = uniform_trace(n, 300, seed=11)
        for i, (u, v) in enumerate(trace.pairs()):
            assert result_tuple(obj.serve(u, v)) == result_tuple(
                nat.serve(u, v)
            ), i
            if i % 40 == 0:
                # Inspection forces a handle -> lists sync mid-stream.
                assert tree_signature(obj.tree) == nat.flat.signature()
        assert tree_signature(obj.tree) == nat.flat.signature()
        nat.flat.validate()

    def test_marshalled_mode_is_identical(self):
        from repro.core.native import set_resident

        n, k = 30, 4
        trace = zipf_trace(n, 250, 1.2, seed=5)
        resident = KArySplayNet(n, k, engine="native")
        marshalled = KArySplayNet(n, k, engine="native")
        for u, v in trace.pairs():
            a = result_tuple(resident.serve(u, v))
            previous = set_resident(False)
            try:
                b = result_tuple(marshalled.serve(u, v))
            finally:
                set_resident(previous)
            assert a == b
        assert resident.flat.signature() == marshalled.flat.signature()

    def test_scalar_out_of_range_rejected_resident(self):
        nat = KArySplayNet(12, 2, engine="native")
        with pytest.raises(EngineError, match="1..12"):
            nat.serve(1, 13)
        # Degenerate out-of-range self-pair short-circuits at cost 0.
        assert result_tuple(nat.serve(50, 50)) == (0, 0, 0)

    def test_mid_stream_snapshot_restore_through_sync(self):
        """A checkpoint cut while the kernel owns the state (dirty-flag
        sync path) must restore identically on every engine."""
        n, k = 32, 3
        first = zipf_trace(n, 200, 1.3, seed=21)
        rest = zipf_trace(n, 200, 1.3, seed=22)
        native_session = open_session(
            "kary-splaynet", n=n, k=k, engine="native"
        )
        native_session.serve_stream(first)  # state now lives in the handle
        checkpoint = native_session.snapshot()
        outcomes = {}
        for engine in ENGINES:
            session = open_session("kary-splaynet", n=n, k=k, engine=engine)
            session.restore(checkpoint)
            batch = session.serve_stream(rest)
            flat = getattr(session.network, "flat", None)
            signature = (
                flat.signature()
                if flat is not None
                else tree_signature(session.network.tree)
            )
            outcomes[engine] = (
                batch.total_routing,
                batch.total_rotations,
                batch.total_links_changed,
                signature,
            )
        native_continue = native_session.serve_stream(rest)
        assert outcomes["native"] == outcomes["flat"] == outcomes["object"]
        assert native_continue.total_routing == outcomes["native"][0]
        assert native_session.network.flat.signature() == outcomes["native"][3]

    def test_cross_engine_adoption_syncs_resident_state(self):
        """FlatTree.from_flat on a resident tree must see the kernel's
        topology, not the stale Python lists."""
        from repro.core.builders import build_balanced_tree

        nat = NativeTree.from_tree(build_balanced_tree(24, 3))
        trace = zipf_trace(24, 150, 1.2, seed=8)
        nat.serve_many(trace.sources.tolist(), trace.targets.tolist())
        as_flat = FlatTree.from_flat(nat)
        assert as_flat.signature() == nat.signature()
        # And the adopted copy serves identically afterwards.
        more = zipf_trace(24, 80, 1.2, seed=9)
        assert nat.serve_many(
            more.sources.tolist(), more.targets.tolist()
        ) == as_flat.serve_many(more.sources.tolist(), more.targets.tolist())
