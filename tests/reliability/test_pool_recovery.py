"""Pool hardening under injected failure: kills, retries, timeouts."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ExperimentError, FaultInjected, ReliabilityError
from repro.parallel.pool import (
    ParallelConfig,
    parallel_map,
    parallel_map_outcomes,
)
from repro.reliability.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
)


def _double(x: int) -> int:
    return 2 * x


def _sleepy(item) -> str:
    name, seconds = item
    time.sleep(seconds)
    return name


def _activate_for_workers(plan: FaultPlan) -> None:
    """Publish a plan the way a pooled campaign sees it: via the env.

    Worker processes inherit ``REPRO_FAULTS`` (and the parent adopts it
    lazily too), so the identical plan replays in every process.
    """
    os.environ[FAULTS_ENV] = plan.to_env()
    clear_fault_plan()  # forget any installed plan; re-examine the env


class TestWorkerKillRecovery:
    def test_killed_worker_respawns_and_campaign_completes(self, tmp_path):
        """A worker hard-exiting mid-task costs one respawn, not the run.

        The ledger makes the kill one-shot: the claim file outlives the
        dead worker, so the resubmitted chunk does not re-fire it.
        """
        plan = FaultPlan(
            specs=(FaultSpec("pool.task", mode="kill", at=(1,)),),
            ledger=str(tmp_path / "ledger"),
        )
        _activate_for_workers(plan)
        config = ParallelConfig(
            jobs=2, on_error="collect", retries=1, backoff=0.0
        )
        outcomes = parallel_map_outcomes(_double, list(range(8)), config=config)
        assert [o.ok for o in outcomes] == [True] * 8
        assert [o.value for o in outcomes] == [2 * i for i in range(8)]
        # The chunk whose worker died was charged a retry attempt.
        assert max(o.attempts for o in outcomes) == 2

    def test_respawn_budget_exhaustion_is_a_reliability_error(self, tmp_path):
        """Every invocation kills its worker; the pool must give up loudly."""
        plan = FaultPlan(
            specs=(FaultSpec("pool.task", mode="kill", at=tuple(range(1, 50))),),
            ledger=str(tmp_path / "ledger"),
        )
        _activate_for_workers(plan)
        config = ParallelConfig(
            jobs=2,
            on_error="collect",
            retries=10,
            backoff=0.0,
            pool_respawns=2,
        )
        with pytest.raises(ReliabilityError, match="gave up after 2 respawn"):
            parallel_map_outcomes(_double, list(range(8)), config=config)

    def test_raise_mode_without_retry_surfaces_the_crash(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec("pool.task", mode="kill", at=(1,)),),
            ledger=str(tmp_path / "ledger"),
        )
        _activate_for_workers(plan)
        config = ParallelConfig(jobs=2, retries=0)
        with pytest.raises(ExperimentError, match="failed after 1 attempt"):
            parallel_map(_double, list(range(8)), config=config)


class TestInjectedErrorRetry:
    def test_transient_injected_fault_is_retried_away_serial(self):
        plan = FaultPlan(specs=(FaultSpec("pool.task", at=(2,)),))
        _activate_for_workers(plan)
        config = ParallelConfig(jobs=1, retries=1, backoff=0.0)
        outcomes = parallel_map_outcomes(_double, [5, 6, 7], config=config)
        assert [o.value for o in outcomes] == [10, 12, 14]
        assert [o.attempts for o in outcomes] == [1, 2, 1]

    def test_match_targets_one_item_only(self):
        plan = FaultPlan(
            specs=(FaultSpec("pool.task", match="6", at=(1, 2, 3, 4)),)
        )
        _activate_for_workers(plan)
        config = ParallelConfig(
            jobs=1, on_error="collect", retries=1, backoff=0.0
        )
        outcomes = parallel_map_outcomes(_double, [5, 6, 7], config=config)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, FaultInjected)
        assert outcomes[1].attempts == 2  # first try + one retry, both injected


class TestTaskTimeout:
    def test_stuck_chunk_times_out_and_the_rest_complete(self):
        items = [("fast-a", 0.0), ("stuck", 5.0), ("fast-b", 0.0)]
        config = ParallelConfig(
            jobs=2,
            on_error="collect",
            task_timeout=0.5,
            retries=0,
            pool_respawns=3,
        )
        start = time.monotonic()
        outcomes = parallel_map_outcomes(_sleepy, items, config=config)
        assert time.monotonic() - start < 4.0, "timeout did not preempt"
        by_ok = {o.index: o.ok for o in outcomes}
        assert by_ok[0] and by_ok[2]
        assert not by_ok[1]
        assert isinstance(outcomes[1].error, ReliabilityError)
        assert "task_timeout" in str(outcomes[1].error)

    def test_timeout_config_validation(self):
        with pytest.raises(ExperimentError):
            ParallelConfig(task_timeout=0.0)
        with pytest.raises(ExperimentError):
            ParallelConfig(pool_respawns=-1)
        with pytest.raises(ExperimentError):
            ParallelConfig(retries=-1)
