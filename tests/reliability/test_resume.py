"""Crash-safe campaign resume: torn sinks, killed workers, equality."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import ExperimentError, FaultInjected
from repro.parallel.pool import ParallelConfig
from repro.reliability.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
    inject_faults,
)
from repro.results import SqliteStore, open_store
from repro.scenarios import JsonlResultSink, read_results_jsonl, run_specs
from repro.scenarios.spec import ScenarioSpec

#: Both results backends, drilled identically where the contract is shared.
BACKENDS = ("jsonl", "sqlite")


def _store_path(base: Path, backend: str, stem: str = "campaign") -> Path:
    return base / f"{stem}.{'jsonl' if backend == 'jsonl' else 'sqlite'}"


def _stored(backend: str, path: Path) -> list:
    """Every committed record, read through the store protocol."""
    if not path.exists():
        return []
    store = open_store(path, backend=backend)
    try:
        return list(store)
    finally:
        store.close()


def _campaign(count: int = 6) -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            workload="uniform",
            n=16,
            m=40,
            seed=seed,
            algorithm="kary-splaynet",
            k=2,
            group="resume-test",
        )
        for seed in range(count)
    ]


def _summaries(results) -> list[tuple]:
    """Cell-for-cell comparison key: spec + totals, minus wall-clock."""
    return [
        (r.spec, r.total_routing, r.total_rotations, r.total_links_changed)
        for r in results
    ]


class TestTolerantRead:
    def test_truncated_trailing_line_is_skipped_with_a_warning(self, tmp_path):
        specs = _campaign(3)
        path = tmp_path / "partial.jsonl"
        with JsonlResultSink(path) as sink:
            clean = run_specs(specs, sink=sink, cache=False)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        # Tear the file mid-record, as a SIGKILL mid-write would.
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        with pytest.warns(RuntimeWarning, match="truncated trailing line"):
            loaded = read_results_jsonl(path)
        assert _summaries(loaded) == _summaries(clean[:2])

    def test_truncated_line_without_newline_terminator(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"not even clos')
        with pytest.warns(RuntimeWarning):
            assert read_results_jsonl(path) == []

    def test_mid_file_corruption_still_raises(self, tmp_path):
        specs = _campaign(2)
        path = tmp_path / "corrupt.jsonl"
        with JsonlResultSink(path) as sink:
            run_specs(specs, sink=sink, cache=False)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(["{bad json", *lines[1:]]) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_results_jsonl(path)

    def test_append_repairs_a_torn_tail(self, tmp_path):
        """A resumed writer must not glue records onto a torn fragment."""
        specs = _campaign(2)
        path = tmp_path / "repair.jsonl"
        with JsonlResultSink(path) as sink:
            clean = run_specs(specs, sink=sink, cache=False)
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n" + lines[1][:10])
        with JsonlResultSink(path) as sink:
            run_specs([specs[1]], sink=sink, cache=False)
        assert _summaries(read_results_jsonl(path)) == _summaries(clean)


class TestResumeValidation:
    def test_resume_needs_a_path_backed_sink(self):
        with pytest.raises(ExperimentError, match="path-backed sink"):
            run_specs(_campaign(1), resume=True, cache=False)

    def test_resume_rejects_overwrite_sinks(self, tmp_path):
        sink = JsonlResultSink(tmp_path / "x.jsonl", overwrite=True)
        with pytest.raises(ExperimentError, match="overwrite"):
            run_specs(_campaign(1), sink=sink, resume=True, cache=False)

    def test_resume_with_no_prior_file_runs_everything(self, tmp_path):
        specs = _campaign(3)
        path = tmp_path / "fresh.jsonl"
        with JsonlResultSink(path) as sink:
            results = run_specs(specs, sink=sink, resume=True, cache=False)
        assert len(results) == 3
        assert _summaries(read_results_jsonl(path)) == _summaries(results)


class TestKillAndResumeEquality:
    """ISSUE acceptance: interrupted + resumed == uninterrupted, cell for cell.

    Parameterized over both results backends: the injected ``sink.write``
    truncate fault tears a JSONL line mid-write and leaves a SQLite row
    uncommitted — either way, resume must seed exactly the committed
    cells and recompute the rest to cell-for-cell equality.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ["object", "flat"])
    def test_torn_sink_write_then_resume_serial(self, tmp_path, engine, backend):
        """Flavor 1: simulated SIGKILL tears the store mid-write."""
        specs = [s.replace(engine=engine) for s in _campaign(6)]
        clean = run_specs(specs, cache=False)

        path = _store_path(tmp_path, backend)
        plan = FaultPlan(
            specs=(FaultSpec("sink.write", mode="truncate", at=(3,)),)
        )
        sink = open_store(path, backend=backend)
        with inject_faults(plan):
            with pytest.raises(FaultInjected, match="torn write"):
                run_specs(specs, sink=sink, cache=False)
        sink.close()
        if backend == "jsonl":
            # Two whole records landed; the third line is torn.
            assert not path.read_text().endswith("\n")
            with pytest.warns(RuntimeWarning, match="truncated trailing line"):
                assert len(read_results_jsonl(path)) == 2
        else:
            # The faulted row was never committed: two rows survive.
            assert len(_stored(backend, path)) == 2

        with open_store(path, backend=backend) as resumed_sink:
            resumed = run_specs(
                specs, sink=resumed_sink, resume=True, cache=False
            )
        assert _summaries(resumed) == _summaries(clean)
        # The repaired record now holds exactly one cell per spec.
        assert _summaries(_stored(backend, path)) == _summaries(clean)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_killed_worker_then_resume_pooled(self, tmp_path, backend):
        """Flavor 2: an injected worker crash aborts a pooled campaign."""
        specs = _campaign(6)
        clean = run_specs(specs, cache=False)

        path = _store_path(tmp_path, backend, "pooled")
        plan = FaultPlan(
            specs=(FaultSpec("pool.task", mode="kill", at=(2,)),),
            ledger=str(tmp_path / "ledger"),
        )
        os.environ[FAULTS_ENV] = plan.to_env()
        clear_fault_plan()
        config = ParallelConfig(jobs=2, retries=0, pool_respawns=2)
        sink = open_store(path, backend=backend)
        try:
            with pytest.raises(ExperimentError, match="failed after 1 attempt"):
                run_specs(specs, config=config, sink=sink, cache=False)
        finally:
            sink.close()
            del os.environ[FAULTS_ENV]
            clear_fault_plan()
        # How many cells landed before the abort is timing-dependent —
        # possibly none (both stores open lazily on the first write).
        assert len(_stored(backend, path)) < len(specs)

        with open_store(path, backend=backend) as resumed_sink:
            resumed = run_specs(
                specs,
                config=ParallelConfig(jobs=2),
                sink=resumed_sink,
                resume=True,
                cache=False,
            )
        assert _summaries(resumed) == _summaries(clean)
        recorded = _stored(backend, path)
        assert sorted(_summaries(recorded), key=repr) == sorted(
            _summaries(clean), key=repr
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resumed_cells_are_not_recomputed(self, tmp_path, backend):
        """Cells already on disk are trusted verbatim, not re-run."""
        specs = _campaign(4)
        path = _store_path(tmp_path, backend, "skip")
        with open_store(path, backend=backend) as sink:
            first = run_specs(specs[:2], sink=sink, cache=False)
        poisoned = FaultPlan(specs=(FaultSpec("pool.task", at=(1, 2)),))
        with inject_faults(poisoned):
            # The two resumed cells never reach pool.task; only the two
            # genuinely new cells do — and the plan fails exactly those,
            # proving resumed work is served from the record.
            with pytest.raises(ExperimentError):
                with open_store(path, backend=backend) as sink:
                    run_specs(specs, sink=sink, resume=True, cache=False)
        with open_store(path, backend=backend) as sink:
            resumed = run_specs(specs, sink=sink, resume=True, cache=False)
        assert _summaries(resumed[:2]) == _summaries(first)
        assert len(resumed) == 4


class TestSqliteWalRecovery:
    """A real SIGKILL mid-transaction: WAL recovery must seed resume."""

    def test_sigkill_mid_transaction_then_resume(self, tmp_path):
        """ISSUE acceptance: the killed writer's uncommitted row vanishes,
        every committed row survives, and resume completes the campaign to
        cell-for-cell equality with a clean run."""
        path = tmp_path / "wal.sqlite"
        src = Path(__file__).resolve().parents[2] / "src"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.results import SqliteStore
            from repro.results.sqlite import _INSERT
            from repro.scenarios import run_specs
            from repro.scenarios.spec import ScenarioSpec

            specs = [
                ScenarioSpec(workload="uniform", n=16, m=40, seed=seed,
                             algorithm="kary-splaynet", k=2, group="resume-test")
                for seed in range(6)
            ]

            class KilledMidTransaction(SqliteStore):
                def write(self, result):
                    if self.count == 2:
                        # Start the third transaction, then die before
                        # COMMIT — the row sits only in the WAL.
                        conn = self._connect(write=True)
                        conn.execute(_INSERT, self._row(result))
                        os.kill(os.getpid(), signal.SIGKILL)
                    super().write(result)

            run_specs(specs, sink=KilledMidTransaction({str(path)!r}), cache=False)
            raise SystemExit("unreachable: the store should have died")
            """
        )
        env = dict(os.environ, PYTHONPATH=str(src))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            cwd=tmp_path,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # WAL recovery on the next open: both committed rows, nothing else.
        survivors = _stored("sqlite", path)
        assert len(survivors) == 2

        specs = _campaign(6)
        clean = run_specs(specs, cache=False)
        assert _summaries(survivors) == _summaries(clean[:2])
        with SqliteStore(path) as sink:
            resumed = run_specs(specs, sink=sink, resume=True, cache=False)
            assert sink.preexisting == 2
            assert sink.count == 4
        assert _summaries(resumed) == _summaries(clean)
        assert _summaries(_stored("sqlite", path)) == _summaries(clean)
