"""Native kernel loader hardening: corrupted caches, injected load failure."""

from __future__ import annotations

import pytest

import repro.core._native as _native
from repro.reliability.faults import FaultPlan, FaultSpec, inject_faults

needs_toolchain = pytest.mark.skipif(
    _native._find_compiler() is None, reason="no C compiler on PATH"
)


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """An empty kernel cache directory + a re-armed loader, both worlds."""
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    _native._reset_for_tests()
    yield tmp_path / "cache"
    _native._reset_for_tests()


def _cache_entry_path():
    """Where the loader will look for the cached shared object.

    Computed without :func:`load_kernel`, so tests can plant corruption
    *before* this process ever maps the library — the real crash shape
    (a prior process died mid-publish; this one finds the wreckage).
    """
    source = _native.kernel_source_path().read_bytes()
    return _native._so_path(source, _native._find_compiler())


@needs_toolchain
class TestCorruptedCacheRecovery:
    def test_corrupted_cached_so_triggers_rebuild(self, fresh_cache):
        """Garbage in the content-addressed cache must rebuild, not crash."""
        plan = FaultPlan(
            specs=(FaultSpec("native.load", mode="corrupt", at=(1,)),)
        )
        with inject_faults(plan):
            kernel = _native.load_kernel()
        assert kernel is not None, _native.build_error()
        assert _native.build_error() is None

    def test_zero_size_cache_entry_treated_as_missing(self, fresh_cache):
        out = _cache_entry_path()
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(b"")
        assert _native.load_kernel() is not None, _native.build_error()
        assert out.stat().st_size > 0  # rebuilt in place

    def test_stale_garbage_on_disk_is_rebuilt(self, fresh_cache):
        out = _cache_entry_path()
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(b"\x7fELF not really a library")
        assert _native.load_kernel() is not None, _native.build_error()


class TestInjectedLoadFailure:
    @needs_toolchain
    def test_error_mode_degrades_to_unavailable_not_unhandled(
        self, fresh_cache
    ):
        """An injected load failure lands in build_error(), never raises."""
        plan = FaultPlan(specs=(FaultSpec("native.load", at=(1,)),))
        with inject_faults(plan):
            kernel = _native.load_kernel()
        assert kernel is None
        assert "injected" in (_native.build_error() or "")

    def test_engine_layer_falls_back_to_flat(self, fresh_cache, monkeypatch):
        import repro.core.engine as engine_module

        monkeypatch.setattr(engine_module, "_native_fallback_warned", True)
        plan = FaultPlan(specs=(FaultSpec("native.load", at=(1,)),))
        with inject_faults(plan):
            from repro.net import open_session

            session = open_session("kary-splaynet", n=8, k=2, engine="native")
            result = session.serve(1, 5)
        assert result.routing_cost >= 0
        session.validate()
