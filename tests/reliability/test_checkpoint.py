"""Session auto-checkpointing: cadence, recovery, audit-on-restore."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError, ReliabilityError
from repro.net import open_session
from repro.reliability.faults import FaultPlan, FaultSpec, inject_faults
from repro.workloads.synthetic import uniform_trace


def _session(engine: str = "flat", every=None, **kwargs):
    return open_session(
        "kary-splaynet",
        n=32,
        k=3,
        engine=engine,
        checkpoint_every=every,
        **kwargs,
    )


class TestCadence:
    def test_no_checkpointing_by_default(self):
        session = _session()
        session.serve_stream(uniform_trace(32, 50, seed=1))
        assert session.last_checkpoint is None
        with pytest.raises(ReliabilityError, match="no auto-checkpoint"):
            session.recover()

    def test_checkpoint_every_validation(self):
        with pytest.raises(ExperimentError, match="checkpoint_every"):
            _session(every=0)

    def test_stream_cuts_checkpoints_at_chunk_granularity(self):
        session = _session(every=10)
        trace = uniform_trace(32, 47, seed=2)
        session.serve_stream(trace, chunk=10)
        checkpoint = session.last_checkpoint
        assert checkpoint is not None
        # Chunks of 10 over 47 requests: the last checkpoint covers 40.
        assert checkpoint.metrics.requests == 40
        assert session.metrics.requests == 47
        assert session._since_checkpoint == 7

    def test_single_serves_count_toward_checkpoints(self):
        session = _session(every=3)
        pairs = [(1, 2), (3, 4), (5, 6), (7, 8)]
        for u, v in pairs:
            session.serve(u, v)
        assert session.last_checkpoint is not None
        assert session.last_checkpoint.metrics.requests == 3

    def test_checkpoint_metrics_cover_the_checkpointed_chunk(self):
        session = _session(every=5)
        session.serve_stream(uniform_trace(32, 5, seed=3), chunk=5)
        checkpoint = session.last_checkpoint
        assert checkpoint.metrics.requests == 5
        assert checkpoint.metrics.total_routing == session.metrics.total_routing


class TestRecover:
    @pytest.mark.parametrize("engine", ["object", "flat"])
    def test_recover_rewinds_and_replay_matches_straight_run(self, engine):
        trace = uniform_trace(32, 60, seed=4)
        straight = _session(engine)
        straight.serve_stream(trace)
        expected = straight.metrics.to_dict()

        crashy = _session(engine, every=20)
        crashy.serve_stream(
            (
                (int(trace.sources[i]), int(trace.targets[i]))
                for i in range(40)
            ),
            chunk=20,
        )
        # "Crash": serve junk past the checkpoint, then rewind to it.
        crashy.serve(9, 10)
        crashy.serve(11, 12)
        recovered = crashy.recover()
        assert recovered.metrics.requests == 40
        assert crashy.metrics.requests == 40
        # Replay the tail; totals must match the uninterrupted run.
        crashy.serve_stream(
            (
                (int(trace.sources[i]), int(trace.targets[i]))
                for i in range(40, 60)
            )
        )
        assert crashy.metrics.to_dict() == expected

    def test_recover_returns_the_snapshot_recovered_to(self):
        session = _session(every=4)
        session.serve_stream(uniform_trace(32, 8, seed=5), chunk=4)
        assert session.recover() is session.last_checkpoint

    def test_restore_resets_the_checkpoint_counter(self):
        session = _session(every=10)
        session.serve_stream(uniform_trace(32, 17, seed=6), chunk=10)
        assert session._since_checkpoint == 7
        session.recover()
        assert session._since_checkpoint == 0


class TestAudit:
    def test_audit_passes_on_a_healthy_session(self):
        for engine in ("object", "flat"):
            session = _session(engine)
            session.serve_stream(uniform_trace(32, 30, seed=7))
            session.audit()  # must not raise

    def test_audit_detects_a_corrupted_snapshot_on_restore(self):
        """The ``session.snapshot`` corrupt fault must never serve silently."""
        session = _session("flat", every=5)
        plan = FaultPlan(
            specs=(FaultSpec("session.snapshot", mode="corrupt", at=(1,)),)
        )
        with inject_faults(plan):
            snapshot = session.snapshot()  # corrupted in flight
        with pytest.raises(ReliabilityError, match="audit"):
            session.restore(snapshot)

    def test_corrupted_auto_checkpoint_is_caught_by_recover(self):
        session = _session("flat", every=5)
        plan = FaultPlan(
            specs=(FaultSpec("session.snapshot", mode="corrupt", at=(1,)),)
        )
        with inject_faults(plan):
            session.serve_stream(uniform_trace(32, 5, seed=8), chunk=5)
        with pytest.raises(ReliabilityError, match="audit"):
            session.recover()

    def test_snapshot_error_mode_fails_the_snapshot(self):
        from repro.errors import FaultInjected

        session = _session("flat")
        plan = FaultPlan(specs=(FaultSpec("session.snapshot", at=(1,)),))
        with inject_faults(plan):
            with pytest.raises(FaultInjected):
                session.snapshot()

    def test_audit_flags_mismatched_series_length(self):
        session = _session("flat", record_series=True)
        session.serve_stream(uniform_trace(32, 10, seed=9))
        session.metrics.routing_series.append(0)  # tamper
        with pytest.raises(ReliabilityError, match="series length"):
            session.audit()

    def test_audit_flags_negative_totals(self):
        session = _session("flat")
        session.serve_stream(uniform_trace(32, 10, seed=10))
        session.metrics.total_routing = -1  # tamper
        with pytest.raises(ReliabilityError, match="negative metrics"):
            session.audit()
