"""The chaos soak harness: schedule determinism plus one live mini-soak.

The deterministic tests pin the pieces the reproducibility story depends
on (the per-key lanes, contiguous round slicing, the seeded fault
schedule).  The live test is a miniature of the CI soak: a real ``repro
serve`` subprocess, every shard SIGKILLed under concurrent client load
plus injected ingress/farm faults, gated on the end-state invariants.
"""

from __future__ import annotations

import pytest

from repro.errors import ReliabilityError
from repro.reliability.chaos import (
    ChaosConfig,
    _keyed_lanes,
    _round_slice,
    _storm_plan,
    run_chaos,
)


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ReliabilityError):
            ChaosConfig(rounds=0)
        with pytest.raises(ReliabilityError):
            ChaosConfig(shards=0)
        with pytest.raises(ReliabilityError):
            ChaosConfig(keys=10, requests_per_round=5)
        with pytest.raises(ReliabilityError):
            ChaosConfig(faults_per_point=-1)


class TestDeterminism:
    def test_lanes_are_seed_stable_and_cover_the_stream(self):
        config = ChaosConfig(keys=4, rounds=2, requests_per_round=40, seed=7)
        lanes = _keyed_lanes(config)
        assert lanes == _keyed_lanes(config)
        assert sorted(lanes) == [f"key-{i}" for i in range(4)]
        assert sum(len(pairs) for pairs in lanes.values()) == 80
        other = _keyed_lanes(
            ChaosConfig(keys=4, rounds=2, requests_per_round=40, seed=8)
        )
        assert other != lanes

    def test_round_slices_partition_in_order(self):
        pairs = [(i, i) for i in range(10)]
        slices = [_round_slice(pairs, rnd, 3) for rnd in range(3)]
        assert slices[0] == pairs[0:3]
        assert slices[1] == pairs[3:6]
        assert slices[2] == pairs[6:10]  # the last round takes the tail
        assert [p for s in slices for p in s] == pairs

    def test_storm_plan_is_seeded_and_ledger_backed(self, tmp_path):
        config = ChaosConfig(seed=3)
        plan = _storm_plan(config, ledger=str(tmp_path / "ledger"))
        again = _storm_plan(config, ledger=str(tmp_path / "ledger"))
        assert [s.to_dict() for s in plan.specs] == [
            s.to_dict() for s in again.specs
        ]
        assert plan.ledger is not None
        assert {s.point for s in plan.specs} == {
            "ingress.accept",
            "ingress.dispatch",
            "farm.serve",
        }
        for spec in plan.specs:
            assert spec.mode == "error"
            assert len(spec.at) == config.faults_per_point
            assert all(i >= 2 for i in spec.at)
        differently = _storm_plan(
            ChaosConfig(seed=4), ledger=str(tmp_path / "ledger")
        )
        assert [s.to_dict() for s in differently.specs] != [
            s.to_dict() for s in plan.specs
        ]


class TestLiveSoak:
    def test_mini_soak_passes_all_invariants(self):
        """Every shard killed once under load; invariants hold at drain."""
        report = run_chaos(
            ChaosConfig(
                n=64,
                keys=4,
                shards=2,
                rounds=2,
                requests_per_round=120,
                seed=11,
                checkpoint_every=32,
            )
        )
        assert report["rounds_survived"] == 2, report["rounds"]
        killed = {r["victim_shard"] for r in report["rounds"]}
        assert killed == {0, 1}  # round-robin reached every shard
        assert report["totals_match"], (
            report["clean_totals"],
            report["observed_totals"],
        )
        assert report["no_dropped_requests"], (
            report["lane_failures"],
            report["server"],
        )
        assert report["all_shards_healthy"], report["final_shards"]
        assert report["clean_exit"]
        assert report["passed"]
        assert report["mean_time_to_recover_seconds"] < 10.0
        for rnd in report["rounds"]:
            assert rnd["new_pid"] != rnd["old_pid"]
