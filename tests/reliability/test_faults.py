"""The fault-injection harness itself: plans, counters, ledger, retry."""

from __future__ import annotations

import os

import pytest

from repro.errors import FaultInjected, ReliabilityError, ReproError
from repro.reliability import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active_fault_plan,
    backoff_delays,
    call_with_retries,
    clear_fault_plan,
    fire_fault,
    inject_faults,
    install_fault_plan,
)


class TestFaultSpec:
    def test_defaults_fire_first_invocation_only(self):
        spec = FaultSpec("pool.task")
        assert spec.mode == "error"
        assert spec.at == (1,)
        assert spec.match == ""

    def test_rejects_unknown_mode(self):
        with pytest.raises(ReliabilityError, match="unknown fault mode"):
            FaultSpec("pool.task", mode="explode")

    def test_rejects_zero_based_indices(self):
        with pytest.raises(ReliabilityError, match="1-based"):
            FaultSpec("pool.task", at=(0,))

    def test_rejects_empty_point(self):
        with pytest.raises(ReliabilityError):
            FaultSpec("")

    def test_dict_round_trip(self):
        spec = FaultSpec("sink.write", mode="truncate", at=(2, 5), match="seed")
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ReliabilityError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"point": "x", "when": 3})

    def test_errors_are_repro_errors(self):
        assert issubclass(ReliabilityError, ReproError)
        assert issubclass(FaultInjected, ReliabilityError)


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec("pool.task", mode="kill", at=(3,)),
                FaultSpec("sink.write", mode="truncate"),
            ),
            ledger=str(tmp_path / "ledger"),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip_inline_json(self):
        plan = FaultPlan(specs=(FaultSpec("native.load", mode="corrupt"),))
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_env_at_path_indirection(self, tmp_path):
        plan = FaultPlan(specs=(FaultSpec("pool.task"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_env(f"@{path}") == plan

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ReliabilityError):
            FaultPlan.from_json("[1, 2]")

    def test_for_point_filters(self):
        plan = FaultPlan(
            specs=(FaultSpec("a.b"), FaultSpec("c.d"), FaultSpec("a.b", at=(2,)))
        )
        assert len(plan.for_point("a.b")) == 2
        assert plan.for_point("nope") == ()


class TestFiring:
    def test_no_plan_is_a_no_op(self):
        assert active_fault_plan() is None
        assert fire_fault("pool.task", context="anything") is None

    def test_error_mode_raises_at_the_named_invocation(self):
        plan = FaultPlan(specs=(FaultSpec("pool.task", at=(2,)),))
        with inject_faults(plan):
            assert fire_fault("pool.task") is None  # invocation 1
            with pytest.raises(FaultInjected, match="invocation 2"):
                fire_fault("pool.task")  # invocation 2
            assert fire_fault("pool.task") is None  # invocation 3

    def test_non_error_modes_return_the_spec_for_the_site(self):
        plan = FaultPlan(specs=(FaultSpec("sink.write", mode="truncate"),))
        with inject_faults(plan):
            fired = fire_fault("sink.write")
            assert fired is not None and fired.mode == "truncate"
            assert fire_fault("sink.write") is None

    def test_match_narrows_to_context(self):
        plan = FaultPlan(specs=(FaultSpec("pool.task", match="seed=3"),))
        with inject_faults(plan):
            # Non-matching contexts do not even count as invocations.
            assert fire_fault("pool.task", context="seed=1") is None
            assert fire_fault("pool.task", context="seed=2") is None
            with pytest.raises(FaultInjected):
                fire_fault("pool.task", context="cell seed=3 of 9")

    def test_points_count_independently(self):
        plan = FaultPlan(
            specs=(FaultSpec("a.b", at=(1,)), FaultSpec("c.d", at=(1,)))
        )
        with inject_faults(plan):
            with pytest.raises(FaultInjected):
                fire_fault("a.b")
            with pytest.raises(FaultInjected):
                fire_fault("c.d")

    def test_install_resets_counters(self):
        plan = FaultPlan(specs=(FaultSpec("a.b", at=(1,)),))
        install_fault_plan(plan)
        with pytest.raises(FaultInjected):
            fire_fault("a.b")
        install_fault_plan(plan)
        with pytest.raises(FaultInjected):
            fire_fault("a.b")
        clear_fault_plan()

    def test_context_manager_deactivates_on_exit(self):
        with inject_faults(FaultPlan(specs=(FaultSpec("a.b"),))):
            pass
        assert active_fault_plan() is None
        assert fire_fault("a.b") is None

    def test_plan_adopted_from_environment(self):
        plan = FaultPlan(specs=(FaultSpec("pool.task", at=(1,)),))
        os.environ[FAULTS_ENV] = plan.to_env()
        clear_fault_plan()  # forget, so the env is (re)examined
        try:
            assert active_fault_plan() == plan
            with pytest.raises(FaultInjected):
                fire_fault("pool.task")
        finally:
            del os.environ[FAULTS_ENV]
            clear_fault_plan()


class TestLedger:
    def test_ledger_counts_survive_counter_reset(self, tmp_path):
        """The file-backed ledger is what keeps a killed worker killed once.

        Re-installing the plan wipes in-process counters — the stand-in
        for a freshly respawned worker process — yet the invocation index
        keeps advancing because claims live on disk.
        """
        plan = FaultPlan(
            specs=(FaultSpec("pool.task", at=(1,)),),
            ledger=str(tmp_path / "ledger"),
        )
        install_fault_plan(plan)
        with pytest.raises(FaultInjected):
            fire_fault("pool.task")
        install_fault_plan(plan)  # "new process": counters gone, ledger not
        assert fire_fault("pool.task") is None  # index 2: does not re-fire
        clear_fault_plan()

    def test_ledger_markers_are_per_point_and_match(self, tmp_path):
        ledger = tmp_path / "ledger"
        plan = FaultPlan(
            specs=(FaultSpec("a.b", at=(2,)), FaultSpec("c.d", at=(1,))),
            ledger=str(ledger),
        )
        with inject_faults(plan):
            assert fire_fault("a.b") is None
            with pytest.raises(FaultInjected):
                fire_fault("c.d")
            with pytest.raises(FaultInjected):
                fire_fault("a.b")
            # Markers are namespaced under this run's id.
            run_dir = plan.ledger_dir()
            assert run_dir == ledger / plan.run_id
            names = sorted(p.name for p in run_dir.iterdir())
            assert names == ["a.b..1", "a.b..2", "c.d..1"]
        # Teardown swept the run's markers away.
        assert not run_dir.exists()

    def test_run_id_round_trips_so_workers_share_the_namespace(self, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec("a.b", at=(1,)),), ledger=str(tmp_path / "ledger")
        )
        assert plan.run_id  # auto-generated alongside the ledger
        clone = FaultPlan.from_env(plan.to_env())
        assert clone == plan
        assert clone.ledger_dir() == plan.ledger_dir()

    def test_consecutive_drills_do_not_see_each_others_ledger(self, tmp_path):
        """Regression: marker files used to accumulate across runs.

        A second drill reusing the same ledger directory would find the
        first drill's claims and count its own invocations from the
        wrong index, silently skipping the fault it was asked to fire.
        """
        ledger = tmp_path / "ledger"

        def drill() -> None:
            plan = FaultPlan(
                specs=(FaultSpec("a.b", at=(1,)),), ledger=str(ledger)
            )
            with inject_faults(plan):
                with pytest.raises(FaultInjected):
                    fire_fault("a.b")  # must be invocation 1, every drill

        drill()
        drill()


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        assert backoff_delays(0) == []
        assert backoff_delays(3, base=0.1, factor=2.0, cap=0.3) == [
            0.1,
            0.2,
            0.3,
        ]

    def test_backoff_rejects_negative_retries(self):
        with pytest.raises(ReliabilityError):
            backoff_delays(-1)

    def test_policy_delay_matches_schedule(self):
        policy = RetryPolicy(retries=3, base=0.05, factor=2.0, cap=2.0)
        assert policy.delays() == [policy.delay(i) for i in (1, 2, 3)]

    def test_policy_validation(self):
        with pytest.raises(ReliabilityError):
            RetryPolicy(retries=-1)
        with pytest.raises(ReliabilityError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ReliabilityError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReliabilityError):
            backoff_delays(1, jitter=-0.1)

    def test_jitter_defaults_off(self):
        # No jitter argument → byte-identical to the classic schedule, so
        # existing campaigns reproduce unchanged.
        assert RetryPolicy(retries=3).delays() == backoff_delays(3)

    def test_jitter_stays_within_bounds(self):
        bare = backoff_delays(6, base=0.1, factor=2.0, cap=1.0)
        for seed in range(20):
            wobbled = backoff_delays(
                6, base=0.1, factor=2.0, cap=1.0, jitter=0.5, seed=seed
            )
            for d, j in zip(bare, wobbled):
                assert d * 0.5 <= j <= d * 1.5
                assert j >= 0.0

    def test_jitter_is_seed_stable(self):
        kwargs = dict(base=0.1, factor=2.0, cap=1.0, jitter=0.3, seed=42)
        first = backoff_delays(5, **kwargs)
        assert backoff_delays(5, **kwargs) == first  # same seed, same sleeps
        assert backoff_delays(5, **{**kwargs, "seed": 43}) != first
        policy = RetryPolicy(retries=5, **kwargs)
        assert policy.delays() == first
        assert [policy.delay(i) for i in (1, 2, 3, 4, 5)] == first

    def test_is_transient_respects_retry_on(self):
        policy = RetryPolicy(retries=1, retry_on=(ValueError,))
        assert policy.is_transient(ValueError("x"))
        assert not policy.is_transient(KeyError("x"))

    def test_call_with_retries_recovers_then_gives_up(self):
        calls = {"n": 0}
        sleeps: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return "ok"

        policy = RetryPolicy(retries=2, base=0.01)
        assert call_with_retries(flaky, policy, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert sleeps == policy.delays()[:2]

        calls["n"] = -10  # now needs 13 attempts; budget allows 3
        with pytest.raises(ValueError):
            call_with_retries(flaky, policy, sleep=sleeps.append)

    def test_call_with_retries_non_transient_fails_fast(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("permanent")

        policy = RetryPolicy(retries=5, retry_on=(ValueError,))
        with pytest.raises(KeyError):
            call_with_retries(broken, policy, sleep=lambda _: None)
        assert calls["n"] == 1
