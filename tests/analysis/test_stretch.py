"""Local-routing stretch: exactness on built trees, boundedness after
rotation storms — the quantitative side of DESIGN.md's local-routing note."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stretch import measure_stretch, stretch_after_storm
from repro.core.builders import (
    build_balanced_tree,
    build_complete_tree,
    build_path_tree,
    build_random_tree,
)
from repro.core.centroid import build_centroid_tree
from repro.errors import ReproError


class TestExactOnBuiltTrees:
    """Builders produce segment-contiguous subtrees, so greedy local
    routing must equal the tree path on every pair."""

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_complete_tree(self, k):
        report = measure_stretch(build_complete_tree(40, k))
        assert report.max_stretch == 1.0
        assert report.backtrack_fraction == 0.0

    def test_balanced_tree(self):
        report = measure_stretch(build_balanced_tree(30, 3))
        assert report.max_stretch == 1.0

    def test_path_tree(self):
        report = measure_stretch(build_path_tree(20, 2))
        assert report.max_stretch == 1.0
        assert report.mean_distance > 5  # sanity: paths are long

    def test_centroid_tree(self):
        report = measure_stretch(build_centroid_tree(40, 2))
        assert report.max_stretch == 1.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_trees(self, seed):
        report = measure_stretch(build_random_tree(25, 3, seed=seed))
        assert report.max_stretch == 1.0


class TestSampling:
    def test_sampled_pairs(self):
        report = measure_stretch(build_complete_tree(100, 3), sample=200, seed=4)
        assert report.pairs == 200
        assert report.max_stretch == 1.0

    def test_explicit_pairs(self):
        report = measure_stretch(
            build_complete_tree(10, 2), pairs=[(1, 10), (5, 7)]
        )
        assert report.pairs == 2

    def test_empty_pairs_rejected(self):
        with pytest.raises(ReproError):
            measure_stretch(build_complete_tree(10, 2), pairs=[])

    def test_single_node_rejected(self):
        with pytest.raises(ReproError):
            measure_stretch(build_complete_tree(1, 2))

    def test_report_str(self):
        text = str(measure_stretch(build_complete_tree(10, 2)))
        assert "stretch" in text and "max" in text


class TestAfterStorm:
    """After arbitrary rotations, local routing may backtrack but stays
    bounded (each edge at most twice → hops < 2n) and delivers."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_bounded_stretch(self, k):
        n = 60
        report = stretch_after_storm(n, k, serves=300, sample=300, seed=k)
        assert report.max_hops <= 2 * n
        assert report.mean_stretch < 1.5  # near-exact on average

    def test_storm_keeps_mean_low(self):
        report = stretch_after_storm(80, 3, serves=500, sample=400, seed=9)
        assert report.mean_stretch < 1.2

    def test_deterministic(self):
        a = stretch_after_storm(30, 2, serves=100, sample=100, seed=3)
        b = stretch_after_storm(30, 2, serves=100, sample=100, seed=3)
        assert a == b


@given(
    n=st.integers(min_value=4, max_value=40),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_property_storm_routing_always_delivers(n, k, seed):
    # delivery (no RoutingError) and the 2n bound for any storm
    report = stretch_after_storm(n, k, serves=40, sample=60, seed=seed)
    assert report.max_hops <= 2 * n
