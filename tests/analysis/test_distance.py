"""Tests for the distance oracle and total-distance helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance import (
    TreeDistanceOracle,
    all_pairs_total_distance,
    total_demand_distance,
    total_distance_via_potentials,
    trace_static_cost,
)
from repro.core.builders import build_complete_tree, build_path_tree, build_random_tree
from repro.errors import InvalidTreeError
from repro.network.static import StaticTreeNetwork
from repro.network.simulator import simulate
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import uniform_trace


class TestOracle:
    @pytest.mark.parametrize("n,k", [(1, 2), (2, 2), (30, 2), (50, 4), (77, 7)])
    def test_distances_match_tree_walks(self, n, k, rng):
        tree = build_random_tree(n, k, seed=n * 3 + k)
        oracle = TreeDistanceOracle.from_tree(tree)
        for _ in range(60):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            assert oracle.distance(u, v) == tree.distance(u, v)

    def test_lca_matches_tree(self, rng):
        tree = build_random_tree(60, 3, seed=9)
        oracle = TreeDistanceOracle.from_tree(tree)
        for _ in range(60):
            u = int(rng.integers(1, 61))
            v = int(rng.integers(1, 61))
            assert oracle.lca(u, v) == tree.lca(u, v)[0].nid

    def test_vectorized_batch(self, rng):
        tree = build_random_tree(40, 2, seed=5)
        oracle = TreeDistanceOracle.from_tree(tree)
        us = rng.integers(1, 41, 200)
        vs = rng.integers(1, 41, 200)
        batch = oracle.distances(us, vs)
        for u, v, d in zip(us.tolist(), vs.tolist(), batch.tolist()):
            assert d == tree.distance(u, v)

    def test_symmetry(self, rng):
        tree = build_random_tree(40, 3, seed=6)
        oracle = TreeDistanceOracle.from_tree(tree)
        us = rng.integers(1, 41, 100)
        vs = rng.integers(1, 41, 100)
        assert np.array_equal(oracle.distances(us, vs), oracle.distances(vs, us))

    def test_deep_path_tree(self):
        tree = build_path_tree(200, 2)
        oracle = TreeDistanceOracle.from_tree(tree)
        ends = sorted([tree.root_id])
        depths = tree.depths()
        deepest = max(depths, key=depths.get)
        assert oracle.distance(tree.root_id, deepest) == 199

    def test_from_parent_map(self):
        oracle = TreeDistanceOracle.from_parent_map({2: 1, 3: 1, 4: 2}, 4)
        assert oracle.distance(3, 4) == 3

    def test_two_roots_rejected(self):
        with pytest.raises(InvalidTreeError):
            TreeDistanceOracle.from_parent_map({3: 1}, 3)

    def test_cycle_rejected(self):
        parent = np.array([0, 2, 1])  # 1 <-> 2 cycle, no root... n=2
        with pytest.raises(InvalidTreeError):
            TreeDistanceOracle(parent, 1)


class TestTotals:
    def test_total_demand_distance_matches_simulation(self):
        tree = build_complete_tree(40, 3)
        trace = uniform_trace(40, 800, seed=2)
        simulated = simulate(StaticTreeNetwork(tree), trace).total_routing
        computed = total_demand_distance(tree, DemandMatrix.from_trace(trace))
        assert simulated == computed

    def test_trace_static_cost_equivalent(self):
        tree = build_complete_tree(40, 3)
        trace = uniform_trace(40, 800, seed=2)
        assert trace_static_cost(tree, trace) == total_demand_distance(
            tree, DemandMatrix.from_trace(trace)
        )

    @pytest.mark.parametrize("n,k", [(2, 2), (17, 2), (40, 3), (64, 8)])
    def test_potentials_equal_all_pairs(self, n, k):
        tree = build_random_tree(n, k, seed=n)
        assert total_distance_via_potentials(tree) == all_pairs_total_distance(tree)

    def test_empty_demand(self):
        tree = build_complete_tree(5, 2)
        demand = DemandMatrix(5, dense=np.zeros((5, 5), dtype=np.int64))
        assert total_demand_distance(tree, demand) == 0

    def test_singleton_tree(self):
        tree = build_complete_tree(1, 2)
        assert all_pairs_total_distance(tree) == 0
        assert total_distance_via_potentials(tree) == 0
