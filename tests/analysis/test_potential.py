"""Access Lemma audits: the paper's Theorem 12 potential argument, checked
on live rotation sequences for both the binary and the k-ary structures."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.potential import (
    AccessAudit,
    audit_splaynet_accesses,
    audit_splaytree_accesses,
    subtree_sizes,
    tree_potential,
    worst_margin,
)
from repro.core.builders import build_complete_tree, build_path_tree
from repro.core.splaynet import KArySplayNet
from repro.datastructures.splay_tree import SplayTree
from repro.errors import ReproError


def _kary_children(node):
    return list(node.child_iter())


class TestSubtreeSizes:
    def test_complete_tree_root_size(self):
        tree = build_complete_tree(15, 2)
        sizes = subtree_sizes(tree.root, _kary_children)
        assert sizes[id(tree.root)] == 15

    def test_leaf_sizes_are_one(self):
        tree = build_complete_tree(15, 2)
        sizes = subtree_sizes(tree.root, _kary_children)
        leaves = [
            node for node in tree.root.iter_subtree()
            if not list(node.child_iter())
        ]
        assert all(sizes[id(leaf)] == 1 for leaf in leaves)

    def test_path_tree_sizes(self):
        tree = build_path_tree(6, 2)
        sizes = sorted(subtree_sizes(tree.root, _kary_children).values())
        assert sizes == [1, 2, 3, 4, 5, 6]

    def test_potential_of_single_node(self):
        tree = build_complete_tree(1, 2)
        assert tree_potential(tree.root, _kary_children) == 0.0

    def test_path_potential_is_log_factorial(self):
        tree = build_path_tree(8, 2)
        expected = sum(math.log2(i) for i in range(1, 9))
        assert tree_potential(tree.root, _kary_children) == pytest.approx(expected)


class TestAuditMechanics:
    def test_audit_fields(self):
        audit = AccessAudit(
            key=1, steps=2, phi_before=10.0, phi_after=9.0,
            rank_root=5.0, rank_node=2.0,
        )
        assert audit.amortized == pytest.approx(1.0)
        assert audit.bound == pytest.approx(10.0)
        assert audit.margin == pytest.approx(9.0)
        assert audit.holds

    def test_violation_detected(self):
        audit = AccessAudit(
            key=1, steps=50, phi_before=0.0, phi_after=0.0,
            rank_root=1.0, rank_node=0.0,
        )
        assert not audit.holds

    def test_worst_margin_empty(self):
        assert worst_margin([]) is None

    def test_semi_splay_tree_rejected(self):
        with pytest.raises(ReproError):
            audit_splaytree_accesses(SplayTree([1, 2, 3], semi=True), [1])


class TestBinaryAccessLemma:
    def test_holds_on_random_sequence(self):
        rng = random.Random(1)
        tree = SplayTree(range(1, 128))
        audits = audit_splaytree_accesses(
            tree, [rng.randint(1, 127) for _ in range(300)]
        )
        assert all(a.holds for a in audits)

    def test_holds_on_adversarial_scan(self):
        tree = SplayTree(range(1, 100))
        audits = audit_splaytree_accesses(tree, list(range(1, 100)) * 2)
        assert all(a.holds for a in audits)

    def test_bound_is_meaningful(self):
        # the bound must not be vacuous: margins stay bounded, not huge
        rng = random.Random(5)
        tree = SplayTree(range(1, 256))
        audits = audit_splaytree_accesses(
            tree, [rng.randint(1, 255) for _ in range(200)]
        )
        assert worst_margin(audits) <= 3 * math.log2(256)


class TestKAryAccessLemma:
    """The paper's claim: k-semi-splay ~ zig, k-splay case 1 ~ zig-zag,
    k-splay case 2 ~ zig-zig — so the lemma transfers verbatim."""

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8])
    def test_holds_on_random_sequence(self, k):
        rng = random.Random(k)
        net = KArySplayNet(100, k, initial="complete")
        audits = audit_splaynet_accesses(
            net, [rng.randint(1, 100) for _ in range(200)]
        )
        assert all(a.holds for a in audits), worst_margin(audits)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_holds_from_path_initial(self, k):
        # worst-case starting shape: a path
        net = KArySplayNet(initial=build_path_tree(60, k))
        audits = audit_splaynet_accesses(net, [1, 60, 30, 1, 60, 15, 45])
        assert all(a.holds for a in audits)

    @pytest.mark.parametrize("policy", ["center", "left", "right"])
    def test_holds_under_all_block_policies(self, policy):
        rng = random.Random(9)
        net = KArySplayNet(80, 4, initial="complete", policy=policy)
        audits = audit_splaynet_accesses(
            net, [rng.randint(1, 80) for _ in range(150)]
        )
        assert all(a.holds for a in audits)

    def test_margin_tightness(self):
        # the +1 constant is achieved (margin reaches down to about 1.0):
        # the audit is sharp, not a loose upper estimate
        rng = random.Random(3)
        net = KArySplayNet(127, 3, initial="complete")
        audits = audit_splaynet_accesses(
            net, [rng.randint(1, 127) for _ in range(400)]
        )
        assert worst_margin(audits) <= 2.0

    def test_potential_telescopes(self):
        # sum of amortized costs = total steps + Φ_final − Φ_initial
        rng = random.Random(4)
        net = KArySplayNet(64, 3, initial="complete")
        phi_initial = tree_potential(net.tree.root, _kary_children)
        audits = audit_splaynet_accesses(
            net, [rng.randint(1, 64) for _ in range(100)]
        )
        phi_final = tree_potential(net.tree.root, _kary_children)
        total_steps = sum(a.steps for a in audits)
        assert sum(a.amortized for a in audits) == pytest.approx(
            total_steps + phi_final - phi_initial, rel=1e-9, abs=1e-6
        )


@given(
    n=st.integers(min_value=4, max_value=64),
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_property_access_lemma_never_violated(n, k, seed):
    rng = random.Random(seed)
    net = KArySplayNet(n, k, initial="complete")
    keys = [rng.randint(1, n) for _ in range(20)]
    audits = audit_splaynet_accesses(net, keys)
    assert all(a.holds for a in audits)
