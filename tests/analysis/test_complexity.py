"""Complexity-map estimators: calibration on known generators, bias
documentation, and the substitution audit for the datacenter stand-ins."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    classify_trace,
    complexity_report,
    lz78_phrase_count,
    lz_complexity,
    markov_temporal_ratio,
    recurrence_excess,
    repeat_excess,
    spatial_complexity,
    temporal_complexity,
)
from repro.errors import WorkloadError
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.synthetic import (
    hotspot_trace,
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace


def _constant_pair_trace(n: int, m: int) -> Trace:
    return Trace(
        sources=np.full(m, 1, dtype=np.int64),
        targets=np.full(m, 2, dtype=np.int64),
        n=n,
    )


class TestSpatialComplexity:
    def test_uniform_is_near_one(self):
        assert spatial_complexity(uniform_trace(50, 30_000, 1)) > 0.9

    def test_single_pair_is_zero(self):
        assert spatial_complexity(_constant_pair_trace(50, 500)) == 0.0

    def test_skew_ordering(self):
        uniform = spatial_complexity(uniform_trace(100, 20_000, 2))
        mild = spatial_complexity(zipf_trace(100, 20_000, alpha=1.0, seed=2))
        heavy = spatial_complexity(zipf_trace(100, 20_000, alpha=2.0, seed=2))
        assert uniform > mild > heavy

    def test_needs_two_nodes(self):
        with pytest.raises(WorkloadError):
            spatial_complexity(_constant_pair_trace(1, 10))

    def test_bounded(self):
        value = spatial_complexity(hotspot_trace(60, 5_000, seed=3))
        assert 0.0 <= value <= 1.0


class TestRepeatExcess:
    @pytest.mark.parametrize("p", [0.25, 0.5, 0.75, 0.9])
    def test_recovers_generator_knob(self, p):
        trace = temporal_trace(255, 30_000, p, seed=5)
        assert repeat_excess(trace) == pytest.approx(p, abs=0.05)

    def test_uniform_near_zero(self):
        assert repeat_excess(uniform_trace(100, 30_000, 1)) < 0.02

    def test_constant_pair_is_one(self):
        assert repeat_excess(_constant_pair_trace(10, 100)) == 1.0

    def test_needs_two_requests(self):
        with pytest.raises(WorkloadError):
            repeat_excess(_constant_pair_trace(10, 1))


class TestTemporalComplexity:
    def test_complement_of_repeat_excess(self):
        trace = temporal_trace(100, 10_000, 0.6, seed=7)
        assert temporal_complexity(trace) == pytest.approx(
            1.0 - repeat_excess(trace)
        )

    def test_ordering_across_p(self):
        values = [
            temporal_complexity(temporal_trace(255, 20_000, p, seed=1))
            for p in (0.25, 0.5, 0.75, 0.9)
        ]
        assert values == sorted(values, reverse=True)

    def test_uniform_is_one(self):
        assert temporal_complexity(uniform_trace(100, 20_000, 1)) > 0.98


class TestRecurrenceExcess:
    def test_bursty_beats_uniform(self):
        bursty = recurrence_excess(hpc_trace(216, 20_000, 1), window=64)
        flat = recurrence_excess(uniform_trace(216, 20_000, 1), window=64)
        assert bursty > flat + 0.1

    def test_grows_with_p(self):
        low = recurrence_excess(temporal_trace(255, 20_000, 0.25, 1), window=64)
        high = recurrence_excess(temporal_trace(255, 20_000, 0.9, 1), window=64)
        assert high > low

    def test_bad_window(self):
        with pytest.raises(WorkloadError):
            recurrence_excess(uniform_trace(10, 100, 1), window=0)

    def test_window_longer_than_trace(self):
        with pytest.raises(WorkloadError):
            recurrence_excess(uniform_trace(10, 50, 1), window=50)


class TestMarkovRatioBias:
    """The plug-in conditional-entropy estimator collapses on large
    alphabets — recorded as a test so nobody 'fixes' temporal_complexity
    back to it."""

    def test_bias_on_large_alphabet(self):
        trace = uniform_trace(100, 20_000, 1)  # ~10⁴ pairs ≈ m
        assert markov_temporal_ratio(trace) < 0.5  # grossly biased low

    def test_reasonable_on_small_alphabet(self):
        # 6 nodes → 30 pairs, m = 30000 transitions: well-sampled chain
        trace = uniform_trace(6, 30_000, 1)
        assert markov_temporal_ratio(trace) > 0.9

    def test_detects_determinism(self):
        assert markov_temporal_ratio(_constant_pair_trace(5, 200)) == 0.0


class TestLZComplexity:
    def test_phrase_count_known_sequence(self):
        # LZ78 parse of 1,1,1,1,1,1: (1)(1,1)(1,1,1) → 3 phrases
        assert lz78_phrase_count([1, 1, 1, 1, 1, 1]) == 3

    def test_phrase_count_all_distinct(self):
        assert lz78_phrase_count([1, 2, 3, 4]) == 4

    def test_empty(self):
        assert lz78_phrase_count([]) == 0

    def test_random_scores_higher_than_repetitive(self):
        random_score = lz_complexity(uniform_trace(50, 10_000, 3))
        repetitive_score = lz_complexity(temporal_trace(50, 10_000, 0.9, 3))
        assert random_score > repetitive_score

    def test_single_pair_zero(self):
        assert lz_complexity(_constant_pair_trace(10, 100)) == 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(Exception):
            lz_complexity(Trace(np.array([], dtype=np.int64), np.array([], dtype=np.int64), n=5))


class TestComplexityReport:
    def test_fields(self):
        report = complexity_report(uniform_trace(40, 5_000, 1))
        assert report.n == 40
        assert report.m == 5_000
        assert report.distinct_pairs > 100
        assert 0 <= report.spatial <= 1
        assert 0 <= report.temporal <= 1
        assert 0 <= report.lz <= 1

    def test_str(self):
        text = str(complexity_report(uniform_trace(40, 5_000, 1)))
        assert "spatial=" in text and "temporal=" in text

    def test_quadrants_on_clear_cases(self):
        assert classify_trace(uniform_trace(100, 20_000, 1)) == "uniform-like"
        assert (
            classify_trace(temporal_trace(255, 20_000, 0.9, 1))
            == "temporally-local"
        )
        assert (
            classify_trace(zipf_trace(100, 20_000, alpha=2.0, seed=1))
            == "spatially-skewed"
        )

    def test_locality_property(self):
        report = complexity_report(temporal_trace(100, 10_000, 0.8, 1))
        assert report.locality >= 0.7


class TestSubstitutionAudit:
    """DESIGN.md's substitution table, checked quantitatively: each
    datacenter stand-in must land in the regime the paper's trace occupies
    (per the characterization in [2] that Section 5 relies on)."""

    def test_hpc_has_strong_burst_locality(self):
        report = complexity_report(hpc_trace(216, 20_000, 1))
        assert report.locality > 0.25  # bursty phase repetition
        assert report.spatial < 0.8    # structured, not all-to-all

    def test_projector_is_skew_heavy_low_locality(self):
        report = complexity_report(projector_trace(100, 20_000, 1))
        assert report.spatial < 0.6    # elephants dominate
        assert report.locality < 0.35  # mice background keeps it mixed

    def test_facebook_is_wide_and_low_locality(self):
        report = complexity_report(facebook_trace(512, 20_000, 1))
        assert report.distinct_pairs > 5_000  # wide working set
        assert report.locality < 0.2

    def test_hpc_more_local_than_facebook(self):
        hpc = complexity_report(hpc_trace(216, 20_000, 1))
        fb = complexity_report(facebook_trace(512, 20_000, 1))
        assert hpc.locality > fb.locality

    def test_projector_more_skewed_than_facebook(self):
        projector = complexity_report(projector_trace(100, 20_000, 1))
        fb = complexity_report(facebook_trace(512, 20_000, 1))
        assert projector.spatial < fb.spatial


@given(
    n=st.integers(min_value=2, max_value=40),
    m=st.integers(min_value=16, max_value=400),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_property_all_scores_bounded(n, m, seed):
    trace = uniform_trace(n, m, seed)
    assert 0.0 <= spatial_complexity(trace) <= 1.0
    assert 0.0 <= temporal_complexity(trace) <= 1.0
    assert 0.0 <= lz_complexity(trace) <= 1.0
