"""Working-set and static-finger bounds: exact combinatorics on small
cases, then empirical checks against live splay structures."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    compare_with_bound,
    static_finger_bound,
    working_set_bound,
    working_set_sizes,
)
from repro.datastructures.sherk import SherkKarySplayTree
from repro.datastructures.splay_tree import SplayTree
from repro.errors import WorkloadError


class TestWorkingSetSizes:
    def test_repeated_key_is_one(self):
        assert working_set_sizes([5, 5, 5]).tolist() == [1, 1, 1]

    def test_alternating_pair(self):
        # a b a b: first a sees {a}; first b sees {a, b}; then each sees the
        # other + itself
        assert working_set_sizes([1, 2, 1, 2]).tolist() == [1, 2, 2, 2]

    def test_scan(self):
        # all distinct: ws_t = t
        assert working_set_sizes([3, 1, 4, 2]).tolist() == [1, 2, 3, 4]

    def test_return_after_window(self):
        # 1 2 3 1: the final access to 1 saw {2, 3} since its last visit
        assert working_set_sizes([1, 2, 3, 1]).tolist()[-1] == 3

    def test_reaccess_resets(self):
        sizes = working_set_sizes([1, 2, 3, 1, 1])
        assert sizes.tolist()[-1] == 1

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            working_set_sizes([])

    def test_brute_force_agreement(self):
        rng = random.Random(3)
        accesses = [rng.randint(1, 8) for _ in range(200)]
        fast = working_set_sizes(accesses)
        # brute force: distinct keys since previous occurrence (inclusive)
        for t, key in enumerate(accesses):
            prev = -1
            for s in range(t - 1, -1, -1):
                if accesses[s] == key:
                    prev = s
                    break
            window = accesses[prev + 1 : t] if prev >= 0 else accesses[:t]
            assert fast[t] == len(set(window)) + 1


class TestBounds:
    def test_working_set_bound_value(self):
        # ws([1, 2, 2]) = [1, 2, 1]: Σ log2(ws+1) = 1 + log2(3) + 1
        assert working_set_bound([1, 2, 2]) == pytest.approx(
            2.0 + math.log2(3)
        )

    def test_finger_bound_value(self):
        assert static_finger_bound([5, 7], finger=5) == pytest.approx(
            math.log2(2) + math.log2(4)
        )

    def test_finger_bound_empty(self):
        with pytest.raises(WorkloadError):
            static_finger_bound([], finger=1)

    def test_comparison_str_and_within(self):
        comparison = compare_with_bound(100.0, 80.0, n=10, m=20)
        assert comparison.within(2.0)
        assert "ratio" in str(comparison)

    def test_comparison_bad_sizes(self):
        with pytest.raises(WorkloadError):
            compare_with_bound(1.0, 1.0, n=0, m=1)


class TestAgainstLiveStructures:
    """The working-set theorem shape: splay cost tracks the ws bound."""

    def test_splay_tree_obeys_working_set_shape(self):
        n = 255
        rng = random.Random(5)
        # high-locality sequence: small rotating working set
        base = rng.sample(range(1, n + 1), 8)
        accesses = [base[rng.randrange(8)] for _ in range(3_000)]
        tree = SplayTree(range(1, n + 1))
        measured = sum(tree.access(key).cost for key in accesses)
        comparison = compare_with_bound(
            measured, working_set_bound(accesses), n=n, m=len(accesses)
        )
        assert comparison.within(3.0)

    def test_working_set_separates_locality_regimes(self):
        n = 255
        rng = random.Random(6)
        local = [rng.choice([3, 7, 11]) for _ in range(2_000)]
        scattered = [rng.randint(1, n) for _ in range(2_000)]
        assert working_set_bound(local) < working_set_bound(scattered) / 3

    def test_kary_sherk_also_tracks_working_set(self):
        n = 255
        rng = random.Random(7)
        base = rng.sample(range(1, n + 1), 6)
        accesses = [base[rng.randrange(6)] for _ in range(2_000)]
        tree = SherkKarySplayTree(range(1, n + 1), 4)
        measured = sum(tree.access(key).cost for key in accesses)
        comparison = compare_with_bound(
            measured, working_set_bound(accesses), n=n, m=len(accesses)
        )
        assert comparison.within(3.0)

    def test_finger_bound_tracks_neighborhood_accesses(self):
        n = 511
        rng = random.Random(8)
        near = [max(1, min(n, 50 + rng.randint(-4, 4))) for _ in range(1_000)]
        far = [rng.randint(1, n) for _ in range(1_000)]
        assert static_finger_bound(near, 50) < static_finger_bound(far, 50) / 2


@given(
    keys=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=80)
)
@settings(max_examples=40, deadline=None)
def test_property_working_set_sizes_bounded(keys):
    sizes = working_set_sizes(keys)
    distinct = len(set(keys))
    assert (sizes >= 1).all()
    assert (sizes <= distinct).all()
    assert int(sizes[0]) == 1
