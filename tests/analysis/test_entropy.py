"""Tests for the Theorem 13 entropy bound."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.entropy import entropy_bound, entropy_bound_report
from repro.workloads.synthetic import uniform_trace, zipf_trace
from repro.workloads.trace import Trace


class TestEntropyBound:
    def test_uniform_trace_bound_is_2m_log_n(self):
        n, m = 64, 20000
        bound = entropy_bound(uniform_trace(n, m, 0))
        # sources and destinations each contribute ≈ m·log2(n)
        assert bound == pytest.approx(2 * m * math.log2(n), rel=0.02)

    def test_single_pair_bound_is_zero(self):
        tr = Trace(4, np.full(100, 1), np.full(100, 2))
        assert entropy_bound(tr) == 0.0

    def test_skew_reduces_bound(self):
        n, m = 100, 20000
        uni = entropy_bound(uniform_trace(n, m, 1))
        skew = entropy_bound(zipf_trace(n, m, 1.5, 1))
        assert skew < uni

    def test_empty_trace(self):
        tr = Trace(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert entropy_bound(tr) == 0.0


class TestReport:
    def test_ratio(self):
        tr = uniform_trace(32, 1000, 0)
        report = entropy_bound_report(tr, measured_cost=5000)
        assert report.ratio == pytest.approx(5000 / report.bound)
        assert "ratio=" in str(report)

    def test_zero_bound_ratio(self):
        tr = Trace(4, np.full(10, 1), np.full(10, 2))
        assert entropy_bound_report(tr, 100).ratio == 0.0
