"""Tests for the closed-form results (Lemma 9, Theorem 33, Remark 34)."""

from __future__ import annotations

import pytest

from repro.analysis.distance import total_distance_via_potentials
from repro.analysis.theory import (
    centroid_approximation_gap,
    full_tree_edge_level_counts,
    lemma9_estimate,
    tree_levels,
)
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree


class TestTreeLevels:
    def test_known_values(self):
        assert tree_levels(1, 2) == 1
        assert tree_levels(7, 2) == 3
        assert tree_levels(8, 2) == 4
        assert tree_levels(13, 3) == 3


class TestEdgeLevelCounts:
    def test_sum_is_n_minus_one(self):
        for n, k in ((100, 2), (121, 3), (500, 5)):
            assert sum(full_tree_edge_level_counts(n, k)) == n - 1

    def test_full_levels(self):
        counts = full_tree_edge_level_counts(7, 2)
        assert counts == [2, 4]


class TestLemma9:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("n", [128, 512, 1024])
    def test_full_tree_total_distance_matches_leading_term(self, n, k):
        """Lemma 9: total distance = n² log_k n + O(n²), unordered pairs."""
        measured = total_distance_via_potentials(build_complete_tree(n, k)) / 2
        estimate = lemma9_estimate(n, k)
        # |measured - n² log_k n| must be O(n²): check a generous constant.
        assert abs(measured - estimate) <= 4.0 * n * n

    @pytest.mark.parametrize("k", [2, 3])
    def test_centroid_tree_matches_leading_term(self, k):
        n = 700
        measured = total_distance_via_potentials(build_centroid_tree(n, k)) / 2
        assert abs(measured - lemma9_estimate(n, k)) <= 4.0 * n * n

    def test_degenerate(self):
        assert lemma9_estimate(1, 2) == 0.0


class TestApproximationGap:
    def test_shrinks_with_n(self):
        assert centroid_approximation_gap(1000) < centroid_approximation_gap(10)

    def test_degenerate(self):
        assert centroid_approximation_gap(2) == 1.0
