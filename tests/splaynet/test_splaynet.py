"""Tests for the classic SplayNet baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.splaynet import KArySplayNet
from repro.network.simulator import Simulator, simulate
from repro.splaynet.splaynet import SplayNet
from repro.workloads.synthetic import sequential_trace, temporal_trace, uniform_trace


class TestServeSemantics:
    @pytest.mark.parametrize("n", [2, 3, 10, 64])
    def test_endpoints_adjacent_after_serve(self, n, rng):
        net = SplayNet(n)
        for _ in range(100):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            if u == v:
                continue
            net.serve(u, v)
            assert net.distance(u, v) == 1

    def test_repeated_request_costs_one(self):
        net = SplayNet(64)
        net.serve(5, 40)
        for _ in range(5):
            assert net.serve(5, 40).routing_cost == 1

    def test_self_request_free(self):
        assert SplayNet(10).serve(3, 3).routing_cost == 0

    def test_routing_cost_is_pre_adjustment_distance(self, rng):
        net = SplayNet(50)
        for _ in range(50):
            u = int(rng.integers(1, 51))
            v = int(rng.integers(1, 51))
            if u == v:
                continue
            before = net.distance(u, v)
            assert net.serve(u, v).routing_cost == before

    def test_zigzig_counts_two_rotations(self):
        """Primitive-rotation accounting (see EXPERIMENTS.md discussion)."""
        net = SplayNet(7)
        # ask for the deepest pair: forces double rotations
        res = net.serve(1, 7)
        assert res.rotations >= 2

    def test_tree_stays_valid(self):
        net = SplayNet(100)
        Simulator(validate_every=100).run(net, uniform_trace(100, 600, seed=1))

    def test_explicit_tree(self):
        from repro.splaynet.tree import BSTNetwork

        net = SplayNet(initial=BSTNetwork.balanced(10))
        assert net.n == 10 and net.k == 2

    def test_missing_n_raises(self):
        with pytest.raises(ValueError):
            SplayNet()


class TestAgainstKAry:
    def test_comparable_to_2ary_ksplaynet(self):
        """The paper treats 2-ary k-SplayNet == SplayNet; costs must be close."""
        n, m = 100, 5000
        trace = uniform_trace(n, m, seed=11)
        classic = simulate(SplayNet(n), trace).total_routing
        kary = simulate(KArySplayNet(n, 2), trace).total_routing
        assert 0.75 <= kary / classic <= 1.25

    def test_locality_exploited(self):
        n, m = 64, 4000
        hot = simulate(SplayNet(n), temporal_trace(n, m, 0.9, seed=2))
        cold = simulate(SplayNet(n), uniform_trace(n, m, seed=2))
        assert hot.total_routing < 0.55 * cold.total_routing
