"""Tests for the optimal static BST network (k=2 case of Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance import total_demand_distance
from repro.optimal.reference import brute_force_optimal_cost
from repro.splaynet.optimal import optimal_static_bst
from repro.splaynet.tree import BSTNetwork
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import zipf_trace


class TestOptimalBST:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_matches_brute_force(self, n, rng):
        d = rng.integers(0, 5, (n, n))
        np.fill_diagonal(d, 0)
        result = optimal_static_bst(DemandMatrix(n, dense=d))
        assert result.cost == brute_force_optimal_cost(d, 2)

    def test_result_is_valid_bst(self, rng):
        d = rng.integers(0, 4, (20, 20))
        np.fill_diagonal(d, 0)
        result = optimal_static_bst(DemandMatrix(20, dense=d))
        result.network.validate()
        assert isinstance(result.network, BSTNetwork)

    def test_cost_matches_measured_distance(self, rng):
        d = rng.integers(0, 4, (25, 25))
        np.fill_diagonal(d, 0)
        demand = DemandMatrix(25, dense=d)
        result = optimal_static_bst(demand)
        assert total_demand_distance(result.network, demand) == result.cost

    def test_beats_balanced_bst_on_skew(self):
        trace = zipf_trace(40, 5000, 1.6, seed=3)
        demand = DemandMatrix.from_trace(trace)
        optimal = optimal_static_bst(demand)
        balanced = total_demand_distance(BSTNetwork.balanced(40), demand)
        assert optimal.cost < balanced

    def test_single_hot_pair_becomes_adjacent(self):
        d = np.zeros((10, 10), dtype=np.int64)
        d[2, 7] = 1000  # nodes 3 and 8, 1-indexed
        d[0, 1] = 1
        result = optimal_static_bst(DemandMatrix(10, dense=d))
        assert result.network.distance(3, 8) == 1
