"""Tests for the binary search tree network substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance import TreeDistanceOracle
from repro.errors import InvalidTreeError
from repro.splaynet.tree import BSTNetwork, BSTNode


class TestBalancedConstruction:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 100, 255, 256])
    def test_valid_and_complete(self, n):
        net = BSTNetwork.balanced(n)
        net.validate()
        assert net.n == n
        assert net.height() == max(0, (n).bit_length() - 1)

    def test_small_shapes(self):
        net = BSTNetwork.balanced(3)
        assert net.root.key == 2
        assert net.root.left.key == 1 and net.root.right.key == 3

    def test_invalid_n(self):
        with pytest.raises(InvalidTreeError):
            BSTNetwork.balanced(0)


class TestQueries:
    def test_lca_and_distance_match_oracle(self, rng):
        net = BSTNetwork.balanced(127)
        oracle = TreeDistanceOracle.from_tree(net)
        for _ in range(100):
            u = int(rng.integers(1, 128))
            v = int(rng.integers(1, 128))
            assert net.distance(u, v) == oracle.distance(u, v)
            if u != v:
                assert net.lca(u, v).key == oracle.lca(u, v)

    def test_search_steps(self):
        net = BSTNetwork.balanced(7)
        assert net.search_steps(net.root, net.root.key) == 0
        assert net.search_steps(net.root, 1) == 2

    def test_depth(self):
        net = BSTNetwork.balanced(7)
        assert net.depth(net.root.key) == 0
        assert net.depth(1) == 2

    def test_missing_key(self):
        with pytest.raises(InvalidTreeError):
            BSTNetwork.balanced(7).node(8)


class TestRotations:
    def test_rotate_preserves_bst(self, rng):
        net = BSTNetwork.balanced(63)
        for _ in range(200):
            key = int(rng.integers(1, 64))
            node = net.node(key)
            if node.parent is None:
                continue
            net.rotate_up(node)
            assert node.parent is None or True
        net.validate()

    def test_rotate_root_raises(self):
        net = BSTNetwork.balanced(7)
        with pytest.raises(InvalidTreeError):
            net.rotate_up(net.root)

    def test_rotation_makes_node_the_parent(self):
        net = BSTNetwork.balanced(7)
        child = net.root.left
        old_root = net.root
        net.rotate_up(child)
        assert net.root is child
        assert old_root.parent is child

    def test_link_churn_counts(self, rng):
        net = BSTNetwork.balanced(63)
        for _ in range(100):
            key = int(rng.integers(1, 64))
            node = net.node(key)
            if node.parent is None:
                continue
            before = net.edge_set()
            links = net.rotate_up(node)
            after = net.edge_set()
            assert links == len(before ^ after)


class TestIndexIntegrity:
    def test_duplicate_keys_rejected(self):
        root = BSTNode(1)
        dup = BSTNode(1)
        root.right = dup
        dup.parent = root
        with pytest.raises(InvalidTreeError):
            BSTNetwork(root, validate=False)

    def test_non_contiguous_rejected(self):
        root = BSTNode(2)
        with pytest.raises(InvalidTreeError):
            BSTNetwork(root, validate=False)

    def test_validate_catches_bst_violation(self):
        net = BSTNetwork.balanced(7)
        # swap two keys illegally
        net.root.left.key, net.root.right.key = (
            net.root.right.key,
            net.root.left.key,
        )
        with pytest.raises(InvalidTreeError):
            net.validate()
