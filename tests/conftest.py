"""Shared fixtures: paranoid rotations and seeded RNGs for every test."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.core.rotations as rotations_module


@pytest.fixture(scope="session", autouse=True)
def isolated_results_dir(tmp_path_factory):
    """Point result files and the result cache at a session temp dir.

    Result paths anchor to the repository root (repro.scenarios.sink), so
    without this a test run would write sink/cache files into the real
    ``benchmarks/results/`` — and, when ``REPRO_RESULT_CACHE`` is on,
    could serve cells from a stale on-disk cache across code changes.
    An explicit ``REPRO_RESULTS_DIR`` from the caller wins (CI sets one).
    """
    if not os.environ.get("REPRO_RESULTS_DIR"):
        os.environ["REPRO_RESULTS_DIR"] = str(
            tmp_path_factory.mktemp("repro-results")
        )
    yield


@pytest.fixture(autouse=True)
def paranoid_rotations():
    """Run every test with rotation-level invariant checking enabled."""
    old = rotations_module.PARANOID
    rotations_module.PARANOID = True
    yield
    rotations_module.PARANOID = old


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


def random_pair(rng: np.random.Generator, n: int) -> tuple[int, int]:
    u = int(rng.integers(1, n + 1))
    v = int(rng.integers(1, n))
    if v >= u:
        v += 1
    return u, v
