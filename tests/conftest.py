"""Shared fixtures: paranoid rotations and seeded RNGs for every test."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.rotations as rotations_module


@pytest.fixture(autouse=True)
def paranoid_rotations():
    """Run every test with rotation-level invariant checking enabled."""
    old = rotations_module.PARANOID
    rotations_module.PARANOID = True
    yield
    rotations_module.PARANOID = old


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


def random_pair(rng: np.random.Generator, n: int) -> tuple[int, int]:
    u = int(rng.integers(1, n + 1))
    v = int(rng.integers(1, n))
    if v >= u:
        v += 1
    return u, v
