"""The construction registry: built-ins, user registration, policy chains."""

from __future__ import annotations

import pytest

from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.net import (
    NetworkSpec,
    PolicySpec,
    build_network,
    network_algorithm,
    network_algorithms,
    online_algorithms,
    register_network,
    register_policy,
    static_algorithms,
    unregister_network,
)
from repro.net.registry import POLICY_WRAPPERS, engine_capable_algorithms
from repro.network.lazy import LazyRebuildNetwork
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)
from repro.network.simulator import simulate
from repro.network.static import StaticTreeNetwork
from repro.splaynet.splaynet import SplayNet
from repro.workloads.synthetic import uniform_trace

BUILTINS = {
    "kary-splaynet",
    "centroid-splaynet",
    "splaynet",
    "lazy",
    "full-tree",
    "centroid-tree",
    "optimal-tree",
    "optimal-bst",
}


class TestBuiltinCoverage:
    def test_all_builtins_registered(self):
        assert BUILTINS <= set(network_algorithms())

    def test_kinds_partition(self):
        assert online_algorithms() & static_algorithms() == frozenset()
        assert {"kary-splaynet", "centroid-splaynet", "splaynet", "lazy"} <= (
            online_algorithms()
        )
        assert {"full-tree", "centroid-tree", "optimal-tree", "optimal-bst"} <= (
            static_algorithms()
        )

    def test_engine_capable(self):
        assert engine_capable_algorithms() == frozenset(
            {"kary-splaynet", "centroid-splaynet"}
        )

    @pytest.mark.parametrize(
        "algorithm,cls",
        [
            ("kary-splaynet", KArySplayNet),
            ("centroid-splaynet", CentroidSplayNet),
            ("splaynet", SplayNet),
            ("lazy", LazyRebuildNetwork),
        ],
    )
    def test_online_builds(self, algorithm, cls):
        net = build_network(algorithm, n=16, k=3)
        assert isinstance(net, cls)
        assert net.n == 16

    @pytest.mark.parametrize(
        "algorithm", ["full-tree", "centroid-tree", "optimal-tree", "optimal-bst"]
    )
    def test_static_builds_are_serving_networks(self, algorithm):
        trace = uniform_trace(12, 80, seed=3)
        net = build_network(algorithm, n=12, k=3, trace=trace)
        assert isinstance(net, StaticTreeNetwork)
        result = simulate(net, trace)
        assert result.total_routing > 0
        assert result.total_rotations == 0

    def test_demand_aware_requires_demand(self):
        with pytest.raises(ExperimentError, match="demand-aware"):
            build_network("optimal-tree", n=8, k=2)

    def test_full_tree_ignores_missing_trace(self):
        net = build_network("full-tree", n=9, k=3)
        assert net.n == 9


class TestBuildNetworkInputs:
    def test_spec_object(self):
        net = build_network(NetworkSpec("kary-splaynet", n=8, k=4))
        assert net.k == 4

    def test_mapping(self):
        net = build_network({"algorithm": "kary-splaynet", "n": 8, "k": 3})
        assert net.k == 3

    def test_name_plus_kwargs(self):
        net = build_network("kary-splaynet", n=8, k=3, engine="flat")
        assert net.engine == "flat"

    def test_kwargs_only(self):
        net = build_network(algorithm="splaynet", n=8)
        assert net.n == 8

    def test_spec_with_override(self):
        spec = NetworkSpec("kary-splaynet", n=8, k=2)
        net = build_network(spec, k=5)
        assert net.k == 5

    def test_params_threaded(self):
        net = build_network("lazy", n=8, k=2, params={"alpha": 123.0})
        assert net.alpha == 123.0

    def test_no_algorithm_rejected(self):
        with pytest.raises(ExperimentError):
            build_network(n=8)

    def test_bad_spec_type_rejected(self):
        with pytest.raises(ExperimentError):
            build_network(42)


class TestPolicyChain:
    def test_single_policy(self):
        net = build_network(
            "kary-splaynet", n=16, k=3,
            policies=[PolicySpec("thresholded", {"threshold": 2})],
        )
        assert isinstance(net, ThresholdedNetwork)
        assert net.threshold == 2
        assert isinstance(net.inner, KArySplayNet)

    def test_chain_order_innermost_first(self):
        net = build_network(
            "kary-splaynet", n=16, k=3,
            policies=[
                PolicySpec("probabilistic", {"q": 0.5, "seed": 1}),
                PolicySpec("frozen"),
            ],
        )
        assert isinstance(net, FrozenNetwork)
        assert isinstance(net.inner, ProbabilisticNetwork)
        assert isinstance(net.inner.inner, KArySplayNet)

    def test_wrapped_network_serves(self):
        trace = uniform_trace(16, 100, seed=5)
        net = build_network(
            "kary-splaynet", n=16, k=3, policies=["frozen"],
        )
        result = simulate(net, trace)
        assert result.total_routing > 0
        assert result.total_rotations == 0

    def test_unknown_policy(self):
        spec = NetworkSpec("kary-splaynet", n=8, policies=["teleport"])
        with pytest.raises(ExperimentError, match="unknown policy"):
            build_network(spec)

    def test_builtin_wrappers_registered(self):
        assert {"thresholded", "probabilistic", "frozen"} <= set(POLICY_WRAPPERS)


class _ToyNetwork:
    """Minimal SelfAdjustingNetwork for registration tests."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.requests = 0

    def serve(self, u, v):
        from repro.network.protocols import ServeResult

        self.requests += 1
        return ServeResult(1 if u != v else 0, 0, 0)

    def distance(self, u, v):
        return 1 if u != v else 0


class TestUserRegistration:
    def test_register_build_unregister(self):
        register_network(
            "toy", lambda spec, context: _ToyNetwork(spec.n),
            description="toy", replace=True,
        )
        try:
            assert "toy" in online_algorithms()
            net = build_network("toy", n=5)
            assert isinstance(net, _ToyNetwork)
            spec = NetworkSpec("toy", n=5)
            assert NetworkSpec.from_json(spec.to_json()) == spec
        finally:
            unregister_network("toy")
        with pytest.raises(ExperimentError):
            build_network("toy", n=5)

    def test_duplicate_registration_rejected(self):
        register_network("toy2", lambda spec, context: _ToyNetwork(spec.n))
        try:
            with pytest.raises(ExperimentError, match="already registered"):
                register_network("toy2", lambda spec, context: _ToyNetwork(spec.n))
        finally:
            unregister_network("toy2")

    def test_bad_kind_rejected(self):
        with pytest.raises(ExperimentError):
            register_network(
                "toy3", lambda spec, context: _ToyNetwork(spec.n), kind="offline"
            )

    def test_registered_policy_applies(self):
        register_policy("identity", lambda inner: inner, replace=True)
        try:
            net = build_network("kary-splaynet", n=8, policies=["identity"])
            assert isinstance(net, KArySplayNet)
        finally:
            POLICY_WRAPPERS.pop("identity", None)

    def test_network_algorithm_lookup(self):
        entry = network_algorithm("lazy")
        assert entry.kind == "online"
        assert not entry.engine_capable

    def test_registered_algorithm_schedulable_as_scenario(self):
        """A registered algorithm is immediately valid in ScenarioSpec."""
        from repro.scenarios.spec import ScenarioSpec

        register_network(
            "toy-scenario", lambda spec, context: _ToyNetwork(spec.n),
            replace=True,
        )
        try:
            spec = ScenarioSpec("uniform", 8, 50, 1, "toy-scenario")
            assert spec.kind == "online"
            from repro.scenarios.core import run_scenario

            result = run_scenario(spec)
            assert result.total_routing > 0
        finally:
            unregister_network("toy-scenario")
