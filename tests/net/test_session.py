"""Online serving sessions: per-request, streamed, metrics, batched paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.net import NetworkSpec, Session, build_network, open_session
from repro.workloads.synthetic import uniform_trace, zipf_trace


def _zipf(n=1024, m=20_000, seed=0):
    return zipf_trace(n, m, alpha=1.2, seed=seed)


class TestOpenSession:
    def test_from_name(self):
        session = open_session("kary-splaynet", n=32, k=3)
        assert session.n == 32
        assert session.spec == NetworkSpec("kary-splaynet", n=32, k=3)

    def test_from_spec(self):
        spec = NetworkSpec("lazy", n=16, params={"alpha": 200.0})
        session = open_session(spec)
        assert session.network.alpha == 200.0

    def test_from_prebuilt_network(self):
        net = build_network("kary-splaynet", n=16, k=2)
        session = open_session(network=net)
        assert session.network is net
        assert session.spec is None

    def test_network_and_spec_conflict(self):
        net = build_network("kary-splaynet", n=16, k=2)
        with pytest.raises(ExperimentError):
            open_session("kary-splaynet", network=net, n=16)

    def test_rejects_non_network(self):
        with pytest.raises(ExperimentError):
            Session(object())

    def test_context_manager(self):
        with open_session("kary-splaynet", n=8) as session:
            session.serve(1, 5)
        assert session.metrics.requests == 1


class TestServeMetrics:
    def test_serve_accumulates(self):
        session = open_session("kary-splaynet", n=16, k=2)
        first = session.serve(2, 13)
        second = session.serve(2, 13)
        metrics = session.metrics
        assert metrics.requests == 2
        assert metrics.total_routing == first.routing_cost + second.routing_cost
        assert metrics.total_rotations == first.rotations + second.rotations
        assert second.routing_cost == 1  # endpoints splayed adjacent

    def test_average_routing(self):
        session = open_session("kary-splaynet", n=16, k=2)
        session.serve(1, 16)
        assert session.metrics.average_routing == session.metrics.total_routing

    def test_record_series(self):
        trace = _zipf(n=64, m=500)
        session = open_session("kary-splaynet", n=64, k=3, record_series=True)
        session.serve_stream(trace, chunk=100)
        routing, rotations = session.metrics.series_arrays()
        assert len(routing) == 500
        assert routing.sum() == session.metrics.total_routing
        assert rotations.sum() == session.metrics.total_rotations


class TestServeStream:
    def test_matches_serve_trace_totals_exactly(self):
        """Acceptance: chunked streaming == one-shot serve_trace on the
        Zipf n=1024 / k=4 reference workload, on both engines."""
        trace = _zipf()
        for engine in ("object", "flat"):
            reference = build_network(
                "kary-splaynet", n=trace.n, k=4, engine=engine
            ).serve_trace(trace.sources, trace.targets)
            session = open_session(
                "kary-splaynet", n=trace.n, k=4, engine=engine
            )
            streamed = session.serve_stream(trace, chunk=1024)
            assert streamed.m == reference.m
            assert streamed.total_routing == reference.total_routing
            assert streamed.total_rotations == reference.total_rotations
            assert streamed.total_links_changed == reference.total_links_changed
            assert session.metrics.total_routing == reference.total_routing

    def test_pair_iterable_matches_arrays(self):
        trace = _zipf(n=128, m=2_000)
        by_arrays = open_session("kary-splaynet", n=128, k=3)
        by_pairs = open_session("kary-splaynet", n=128, k=3)
        a = by_arrays.serve_stream(trace.sources, trace.targets, chunk=256)
        pair_generator = ((int(u), int(v)) for u, v in zip(trace.sources, trace.targets))
        b = by_pairs.serve_stream(pair_generator, chunk=256)
        assert (a.total_routing, a.total_rotations) == (
            b.total_routing, b.total_rotations,
        )

    def test_chunk_size_invariant(self):
        trace = _zipf(n=64, m=1_500)
        totals = []
        for chunk in (1, 7, 256, 10_000):
            session = open_session("kary-splaynet", n=64, k=3)
            batch = session.serve_stream(trace, chunk=chunk)
            totals.append((batch.total_routing, batch.total_rotations))
        assert len(set(totals)) == 1

    def test_incremental_streams_accumulate(self):
        trace = _zipf(n=64, m=1_000)
        whole = open_session("kary-splaynet", n=64, k=3)
        whole.serve_stream(trace)
        split = open_session("kary-splaynet", n=64, k=3)
        split.serve_stream(trace.sources[:400], trace.targets[:400])
        split.serve_stream(trace.sources[400:], trace.targets[400:])
        assert split.metrics.to_dict() == whole.metrics.to_dict()

    def test_serve_then_stream_mix(self):
        session = open_session("kary-splaynet", n=32, k=2)
        session.serve(1, 20)
        session.serve_stream([(2, 9), (9, 2), (1, 20)])
        assert session.metrics.requests == 4

    def test_stream_matches_per_request_serve(self):
        trace = _zipf(n=64, m=800)
        streamed = open_session("kary-splaynet", n=64, k=3, engine="flat")
        streamed.serve_stream(trace, chunk=128)
        scalar = open_session("kary-splaynet", n=64, k=3, engine="flat")
        for u, v in zip(trace.sources.tolist(), trace.targets.tolist()):
            scalar.serve(u, v)
        assert scalar.metrics.to_dict() == streamed.metrics.to_dict()

    def test_bad_chunk(self):
        session = open_session("kary-splaynet", n=8)
        with pytest.raises(ExperimentError):
            session.serve_stream([(1, 2)], chunk=0)

    def test_mismatched_arrays(self):
        session = open_session("kary-splaynet", n=8)
        with pytest.raises(ExperimentError):
            session.serve_stream(np.array([1, 2]), np.array([3]))

    def test_network_without_serve_trace_falls_back(self):
        class Scalar:
            n = 8

            def serve(self, u, v):
                from repro.network.protocols import ServeResult

                return ServeResult(2 if u != v else 0, 1, 0)

        session = open_session(network=Scalar())
        batch = session.serve_stream([(1, 2), (3, 3), (4, 5)])
        assert batch.total_routing == 4
        assert batch.total_rotations == 3


class TestWrappedSessionsTakeBatchedPath:
    def test_thresholded_session_uses_serve_trace(self):
        """Acceptance: a wrapped (ThresholdedNetwork) session drives the
        batched path, not the per-request fallback."""
        trace = _zipf(n=128, m=1_000)
        net = build_network(
            "kary-splaynet", n=128, k=4,
            policies=[{"policy": "thresholded", "params": {"threshold": 2}}],
        )
        calls = []
        original = net.serve_trace

        def spying_serve_trace(sources, targets=None, **kwargs):
            calls.append(len(sources))
            return original(sources, targets, **kwargs)

        net.serve_trace = spying_serve_trace
        session = open_session(network=net)
        batch = session.serve_stream(trace, chunk=250)
        assert calls == [250, 250, 250, 250]
        assert batch.total_routing > 0
        assert net.served == 1_000

    def test_thresholded_simulator_fast_path(self):
        """Simulator.run consumes the wrapper's serve_trace (no per-request
        ServeResult loop) and reproduces the per-request totals."""
        from repro.network.simulator import Simulator

        trace = _zipf(n=128, m=2_000)
        batched_net = build_network(
            "kary-splaynet", n=128, k=4,
            policies=[{"policy": "thresholded", "params": {"threshold": 2}}],
        )
        assert hasattr(batched_net, "serve_trace")
        batched = Simulator().run(batched_net, trace)
        scalar_net = build_network(
            "kary-splaynet", n=128, k=4,
            policies=[{"policy": "thresholded", "params": {"threshold": 2}}],
        )
        total = [scalar_net.serve(int(u), int(v)) for u, v in trace.pairs()]
        assert batched.total_routing == sum(r.routing_cost for r in total)
        assert batched.total_rotations == sum(r.rotations for r in total)


class TestLatencyStats:
    def test_percentiles_from_histogram(self):
        from repro.net import LatencyStats

        stats = LatencyStats()
        assert stats.total == 0
        assert stats.p50 == 0.0 and stats.p99 == 0.0
        for _ in range(90):
            stats.record(1e-6)
        for _ in range(10):
            stats.record(1e-3)
        assert stats.total == 100
        # Bucketed percentiles: right order of magnitude, monotone.
        assert 5e-7 < stats.p50 < 5e-6
        assert 2e-4 < stats.p99 < 5e-3
        assert stats.p50 <= stats.p99

    def test_merge_is_exact_and_copy_independent(self):
        from repro.net import LatencyStats

        a, b, combined = LatencyStats(), LatencyStats(), LatencyStats()
        for i in range(1, 50):
            seconds = i * 3.7e-6
            (a if i % 2 else b).record(seconds)
            combined.record(seconds)
        merged = a.copy()
        merged.merge(b)
        assert merged.to_dict() == combined.to_dict()
        assert a.total == 25  # the copy did not alias a

    def test_weighted_record_counts(self):
        from repro.net import LatencyStats

        stats = LatencyStats()
        stats.record(2e-6, 500)
        assert stats.total == 500
        assert stats.p50 == stats.p99

    def test_bad_quantile_rejected(self):
        from repro.net import LatencyStats

        stats = LatencyStats()
        stats.record(1e-6)
        with pytest.raises(ExperimentError):
            stats.percentile(1.5)
        with pytest.raises(ExperimentError):
            stats.percentile(-0.1)


class TestSessionLatency:
    def test_scalar_serve_records_latency(self):
        session = open_session("kary-splaynet", n=16, k=2, engine="flat")
        for _ in range(10):
            session.serve(1, 9)
        assert session.metrics.latency.total == 10
        assert session.metrics.latency_p99 >= session.metrics.latency_p50 > 0

    def test_stream_records_per_request_latency(self):
        session = open_session("kary-splaynet", n=32, k=3, engine="flat")
        trace = uniform_trace(32, 200, seed=3)
        session.serve_stream(trace, chunk=50)
        assert session.metrics.latency.total == 200
        assert session.metrics.latency_p50 > 0

    def test_latency_excluded_from_deterministic_view(self):
        """to_dict is compared cell-for-cell across differently-timed
        runs (reliability suites), so timing must stay out of it."""
        session = open_session("kary-splaynet", n=16, k=2, engine="flat")
        session.serve(1, 9)
        assert "latency" not in session.metrics.to_dict()
        copied = session.metrics.copy()
        assert copied.latency.total == 1
        copied.latency.record(1.0)
        assert session.metrics.latency.total == 1  # copy did not alias


class TestAutoChunk:
    def test_default_chunk_is_auto_sized(self):
        from repro.net.session import DEFAULT_CHUNK

        session = open_session("kary-splaynet", n=16, k=2, engine="flat")
        assert session._auto_chunk() == DEFAULT_CHUNK
        capped = open_session(
            "kary-splaynet", n=16, k=2, engine="flat", checkpoint_every=100
        )
        assert capped._auto_chunk() == 100

    def test_auto_chunk_honours_checkpoint_cadence(self):
        session = open_session(
            "kary-splaynet", n=32, k=2, engine="flat", checkpoint_every=25
        )
        trace = uniform_trace(32, 100, seed=7)
        session.serve_stream(trace)  # chunk=None -> auto
        # Four auto-checkpoints were cut, one per 25 requests.
        assert session.metrics.requests == 100
        assert session.last_checkpoint is not None

    def test_explicit_bad_chunk_still_rejected(self):
        session = open_session("kary-splaynet", n=16, k=2, engine="flat")
        with pytest.raises(ExperimentError):
            session.serve_stream([(1, 2)], chunk=0)
