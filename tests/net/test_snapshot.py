"""Snapshot/restore: topology-identical checkpoints on both engines.

The session checkpoint contract: ``snapshot()`` then ``restore()``
reproduces (1) the exact topology, (2) the exact costs of any subsequent
request sequence, (3) identically on the ``object`` and ``flat`` engines —
including mid-stream for the lazy-rebuild network, whose rebuild schedule
depends on accumulated state beyond the tree.  The randomized sweep is a
hypothesis property test (skipped, like the DP exactness test, when
hypothesis is unavailable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ENGINES
from repro.core.flat import tree_signature
from repro.net import build_network, open_session
from repro.workloads.synthetic import zipf_trace


def _topology_signature(network):
    """An engine-independent topology fingerprint of a (k-ary) network."""
    flat = getattr(network, "flat", None)
    if flat is not None:
        return flat.signature()
    return tree_signature(network.tree)


def _request_block(n, m, seed):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, n + 1, size=m).tolist(),
        rng.integers(1, n + 1, size=m).tolist(),
    )


def _serve_costs(session, sources, targets):
    return [
        (result.routing_cost, result.rotations, result.links_changed)
        for result in (session.serve(u, v) for u, v in zip(sources, targets))
    ]


class TestKArySnapshotBothEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("k", [2, 4])
    def test_restore_reproduces_topology_and_costs(self, engine, k):
        n = 64
        session = open_session("kary-splaynet", n=n, k=k, engine=engine)
        warmup = _request_block(n, 200, seed=1)
        session.serve_stream(*warmup)
        checkpoint = session.snapshot()
        reference_topology = _topology_signature(session.network)

        tail = _request_block(n, 150, seed=2)
        first_costs = _serve_costs(session, *tail)
        assert _topology_signature(session.network) != reference_topology

        session.restore(checkpoint)
        assert _topology_signature(session.network) == reference_topology
        session.validate()
        assert _serve_costs(session, *tail) == first_costs

    def test_snapshot_transfers_across_engines(self):
        """A mid-stream checkpoint taken on any engine restores on any
        other — all engines represent the identical topology."""
        n, k = 48, 3
        warmup = _request_block(n, 300, seed=3)
        tail = _request_block(n, 120, seed=4)

        checkpoints = {}
        costs = {}
        for engine in ENGINES:
            session = open_session("kary-splaynet", n=n, k=k, engine=engine)
            session.serve_stream(*warmup)
            checkpoints[engine] = session.snapshot()
            costs[engine] = _serve_costs(session, *tail)
        reference = costs[ENGINES[0]]
        assert all(c == reference for c in costs.values())

        for source_engine in ENGINES:
            for target_engine in ENGINES:
                if source_engine == target_engine:
                    continue
                session = open_session(
                    "kary-splaynet", n=n, k=k, engine=target_engine
                )
                session.restore(checkpoints[source_engine])
                assert (
                    _topology_signature(session.network)
                    == _topology_signature(
                        build_restored(n, k, checkpoints[source_engine])
                    )
                ), (source_engine, target_engine)
                assert _serve_costs(session, *tail) == reference, (
                    source_engine,
                    target_engine,
                )

    def test_restore_resets_metrics(self):
        session = open_session("kary-splaynet", n=16, k=2)
        session.serve(1, 9)
        checkpoint = session.snapshot()
        session.serve(2, 14)
        session.restore(checkpoint)
        assert session.metrics.requests == 1

    def test_snapshot_is_immutable_under_serving(self):
        session = open_session("kary-splaynet", n=32, k=3, engine="flat")
        session.serve_stream(*_request_block(32, 100, seed=5))
        checkpoint = session.snapshot()
        frozen_signature = checkpoint.state.signature()
        session.serve_stream(*_request_block(32, 100, seed=6))
        assert checkpoint.state.signature() == frozen_signature


def build_restored(n, k, checkpoint):
    net = build_network("kary-splaynet", n=n, k=k, engine="flat")
    net.restore_state(checkpoint.state)
    return net


class TestOtherNetworksSnapshot:
    def test_centroid_both_engines(self):
        n, k = 40, 3
        tail = _request_block(n, 100, seed=8)
        for engine in ENGINES:
            session = open_session("centroid-splaynet", n=n, k=k, engine=engine)
            session.serve_stream(*_request_block(n, 200, seed=7))
            checkpoint = session.snapshot()
            costs = _serve_costs(session, *tail)
            session.restore(checkpoint)
            assert _serve_costs(session, *tail) == costs
            session.validate()

    def test_binary_splaynet(self):
        session = open_session("splaynet", n=32)
        session.serve_stream(*_request_block(32, 150, seed=9))
        checkpoint = session.snapshot()
        tail = _request_block(32, 80, seed=10)
        costs = _serve_costs(session, *tail)
        session.restore(checkpoint)
        assert _serve_costs(session, *tail) == costs

    def test_lazy_mid_stream(self):
        """Mid-stream restore of the lazy-rebuild network: the accumulated
        demand, window history and cost-toward-threshold all rewind, so
        the replay reproduces the identical rebuild schedule and costs."""
        n = 24
        session = open_session(
            "lazy", n=n, k=2, params={"alpha": 150.0, "window": 300}
        )
        trace = zipf_trace(n, 2_000, alpha=1.4, seed=11)
        # Stop mid-stream, between rebuilds.
        session.serve_stream(trace.sources[:900], trace.targets[:900])
        assert session.network.rebuilds > 0
        checkpoint = session.snapshot()
        rebuilds_at_checkpoint = session.network.rebuilds

        tail = (trace.sources[900:].tolist(), trace.targets[900:].tolist())
        first = _serve_costs(session, *tail)
        first_rebuilds = session.network.rebuilds

        session.restore(checkpoint)
        assert session.network.rebuilds == rebuilds_at_checkpoint
        assert _serve_costs(session, *tail) == first
        assert session.network.rebuilds == first_rebuilds

    def test_lazy_streamed_replay_after_restore(self):
        n = 24
        session = open_session("lazy", n=n, k=2, params={"alpha": 120.0})
        trace = zipf_trace(n, 1_500, alpha=1.4, seed=12)
        session.serve_stream(trace.sources[:700], trace.targets[:700])
        checkpoint = session.snapshot()
        tail_batch = session.serve_stream(trace.sources[700:], trace.targets[700:])
        session.restore(checkpoint)
        replay = session.serve_stream(trace.sources[700:], trace.targets[700:])
        assert replay.total_routing == tail_batch.total_routing
        assert replay.total_rotations == tail_batch.total_rotations
        assert replay.total_links_changed == tail_batch.total_links_changed

    def test_static_network_snapshot_trivial(self):
        session = open_session("full-tree", n=16, k=2)
        checkpoint = session.snapshot()
        session.serve(1, 16)
        session.restore(checkpoint)
        assert session.metrics.requests == 0

    def test_probabilistic_wrapper_rng_checkpointed(self):
        """Restoring a probabilistic policy replays identical coin flips."""
        session = open_session(
            "kary-splaynet", n=32, k=3,
            policies=[{"policy": "probabilistic", "params": {"q": 0.5, "seed": 2}}],
        )
        session.serve_stream(*_request_block(32, 200, seed=13))
        checkpoint = session.snapshot()
        tail = _request_block(32, 100, seed=14)
        first = _serve_costs(session, *tail)
        adjusted_first = session.network.adjusted
        session.restore(checkpoint)
        assert _serve_costs(session, *tail) == first
        assert session.network.adjusted == adjusted_first

    def test_unsupported_network_raises(self):
        from repro.errors import ExperimentError

        class Bare:
            n = 4

            def serve(self, u, v):
                from repro.network.protocols import ServeResult

                return ServeResult(1)

        session = open_session(network=Bare())
        with pytest.raises(ExperimentError, match="snapshot"):
            session.snapshot()


# ----------------------------------------------------------------------
# randomized property sweep (hypothesis, optional like the DP test)
# ----------------------------------------------------------------------
pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=2, max_value=5),
    split=st.integers(min_value=0, max_value=200),
)
def test_snapshot_restore_property(seed, k, split):
    """Property: for any request sequence and any checkpoint position, the
    restored session replays the tail at identical costs with identical
    final topology, and every engine (object, flat and — where the kernel
    is available — native) agrees on both."""
    n = 32
    rng = np.random.default_rng(seed)
    sources = rng.integers(1, n + 1, size=250).tolist()
    targets = rng.integers(1, n + 1, size=250).tolist()
    head = (sources[:split], targets[:split])
    tail = (sources[split:], targets[split:])

    outcomes = []
    for engine in ENGINES:
        session = open_session("kary-splaynet", n=n, k=k, engine=engine)
        session.serve_stream(*head)
        checkpoint = session.snapshot()
        costs = _serve_costs(session, *tail)
        final = _topology_signature(session.network)
        session.restore(checkpoint)
        assert _serve_costs(session, *tail) == costs
        assert _topology_signature(session.network) == final
        outcomes.append((costs, final))
    assert all(outcome == outcomes[0] for outcome in outcomes)
