"""NetworkSpec / PolicySpec: validation, normalization, JSON round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.net import NetworkSpec, PolicySpec
from repro.net.spec import freeze_params


class TestFreezeParams:
    def test_mapping_sorted(self):
        assert freeze_params({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_none(self):
        assert freeze_params(None) == ()

    def test_idempotent(self):
        frozen = freeze_params({"x": 1.5})
        assert freeze_params(frozen) == frozen

    def test_rejects_non_scalar(self):
        with pytest.raises(ExperimentError):
            freeze_params({"x": [1, 2]})

    def test_rejects_non_string_name(self):
        with pytest.raises(ExperimentError):
            freeze_params({1: "x"}.items())

    def test_rejects_duplicates(self):
        with pytest.raises(ExperimentError):
            freeze_params([("a", 1), ("a", 2)])


class TestPolicySpec:
    def test_params_normalized(self):
        spec = PolicySpec("thresholded", {"threshold": 2})
        assert spec.params == (("threshold", 2),)
        assert spec.params_dict() == {"threshold": 2}

    def test_round_trip(self):
        spec = PolicySpec("probabilistic", {"q": 0.5, "seed": 7})
        assert PolicySpec.from_dict(spec.to_dict()) == spec

    def test_empty_name_rejected(self):
        with pytest.raises(ExperimentError):
            PolicySpec("")

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ExperimentError):
            PolicySpec.from_dict({"policy": "frozen", "extra": 1})


class TestNetworkSpec:
    def test_defaults(self):
        spec = NetworkSpec("kary-splaynet", n=64)
        assert spec.k == 2
        assert spec.engine is None
        assert spec.initial == "complete"
        assert spec.params == ()
        assert spec.policies == ()

    def test_hashable(self):
        a = NetworkSpec("kary-splaynet", n=64, params={"policy": "center"})
        b = NetworkSpec("kary-splaynet", n=64, params={"policy": "center"})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_unknown_algorithm(self):
        with pytest.raises(ExperimentError):
            NetworkSpec("teleport", n=8)

    def test_bad_n(self):
        with pytest.raises(ExperimentError):
            NetworkSpec("kary-splaynet", n=0)

    def test_bad_k(self):
        with pytest.raises(ExperimentError):
            NetworkSpec("kary-splaynet", n=8, k=1)

    def test_bad_engine(self):
        with pytest.raises(ExperimentError):
            NetworkSpec("kary-splaynet", n=8, engine="gpu")

    def test_policies_accept_names_and_dicts(self):
        spec = NetworkSpec(
            "kary-splaynet",
            n=8,
            policies=["frozen", {"policy": "thresholded", "params": {"threshold": 1}}],
        )
        assert spec.policies == (
            PolicySpec("frozen"),
            PolicySpec("thresholded", {"threshold": 1}),
        )

    def test_json_round_trip(self):
        spec = NetworkSpec(
            "lazy",
            n=32,
            k=3,
            params={"alpha": 500.0, "window": 100},
            policies=[PolicySpec("thresholded", {"threshold": 2})],
        )
        assert NetworkSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_engine(self):
        spec = NetworkSpec("centroid-splaynet", n=16, k=2, engine="flat")
        rebuilt = NetworkSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.engine == "flat"

    def test_from_dict_strict(self):
        with pytest.raises(ExperimentError):
            NetworkSpec.from_dict({"algorithm": "lazy", "n": 8, "m": 100})

    def test_replace_and_bare(self):
        spec = NetworkSpec("kary-splaynet", n=8, policies=["frozen"])
        assert spec.replace(k=4).k == 4
        assert spec.bare().policies == ()
        assert spec.bare().algorithm == spec.algorithm
