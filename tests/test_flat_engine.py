"""Engine-equivalence suite: the flat engine must mirror the object engine.

The flat structure-of-arrays engine (:mod:`repro.core.flat`) reimplements
the serving discipline with index arithmetic; these tests pin it to the
object engine decision-for-decision: identical per-request cost totals,
identical preorder topology signatures after every request, across
arities, block policies, deep-splay depths and serving interfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import build_balanced_tree, build_random_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.engine import ENGINES, resolve_engine, set_default_engine
from repro.core.flat import FlatTree, tree_signature
from repro.core.splaynet import KArySplayNet
from repro.errors import EngineError, InvalidTreeError
from repro.network.lazy import LazyRebuildNetwork
from repro.network.simulator import Simulator
from repro.network.static import StaticTreeNetwork
from repro.workloads.synthetic import uniform_trace, zipf_trace


def result_tuple(res):
    return (res.routing_cost, res.rotations, res.links_changed)


def make_pair(n, k, **kwargs):
    return (
        KArySplayNet(n, k, engine="object", **kwargs),
        KArySplayNet(n, k, engine="flat", **kwargs),
    )


class TestFlatTreeConversion:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_roundtrip_preserves_topology(self, k):
        tree = build_random_tree(40, k, seed=k)
        flat = FlatTree.from_tree(tree)
        assert flat.signature() == tree_signature(tree)
        back = flat.to_tree(validate=True)
        assert tree_signature(back) == tree_signature(tree)

    def test_flat_validate_catches_bad_wiring(self):
        flat = FlatTree.from_tree(build_balanced_tree(10, 2))
        flat.validate()
        # corrupt the parent mirror of some non-root child
        for nid in range(1, 11):
            if flat.parent[nid]:
                flat.parent[nid] = nid
                break
        with pytest.raises(InvalidTreeError):
            flat.validate()


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError):
            KArySplayNet(8, 2, engine="turbo")

    def test_resolve_and_default(self):
        assert resolve_engine(None) in ENGINES
        set_default_engine("flat")
        try:
            assert KArySplayNet(8, 2).engine == "flat"
        finally:
            set_default_engine("object")
        assert KArySplayNet(8, 2).engine == "object"

    def test_arity_conflict_rejected_even_without_n(self):
        # Satellite fix: the k-vs-tree arity check must not depend on n.
        tree = build_balanced_tree(20, 3)
        with pytest.raises(InvalidTreeError, match="conflicts"):
            KArySplayNet(initial=tree, k=2)
        with pytest.raises(InvalidTreeError, match="conflicts"):
            KArySplayNet(20, 2, initial=tree)
        # Omitting k adopts the tree's arity.
        assert KArySplayNet(initial=tree).k == 3
        assert KArySplayNet(initial=tree, k=3).k == 3

    def test_flat_engine_adopts_explicit_tree(self):
        tree = build_balanced_tree(15, 3)
        net = KArySplayNet(initial=tree, engine="flat")
        assert net.n == 15 and net.k == 3
        assert tree_signature(net.tree) == tree_signature(tree)


class TestScalarEquivalence:
    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("policy", ["center", "left", "right"])
    def test_serve_equivalence_per_request(self, k, policy, rng):
        n, m = 32, 250
        trace = uniform_trace(n, m, seed=1000 * k + len(policy))
        obj, flat = make_pair(n, k, policy=policy)
        for i, (u, v) in enumerate(trace.pairs()):
            ra, rb = obj.serve(u, v), flat.serve(u, v)
            assert result_tuple(ra) == result_tuple(rb), (k, policy, i)
            if i % 25 == 0:
                assert tree_signature(obj.tree) == flat.flat.signature()
        assert tree_signature(obj.tree) == flat.flat.signature()
        flat.validate()
        obj.validate()

    @pytest.mark.parametrize("k", [2, 3, 5])
    @pytest.mark.parametrize("depth", [3, 4])
    def test_deep_splay_equivalence(self, k, depth):
        n, m = 28, 150
        trace = uniform_trace(n, m, seed=k * depth)
        obj, flat = make_pair(n, k, splay_depth=depth)
        for i, (u, v) in enumerate(trace.pairs()):
            ra, rb = obj.serve(u, v), flat.serve(u, v)
            assert result_tuple(ra) == result_tuple(rb), (k, depth, i)
        assert tree_signature(obj.tree) == flat.flat.signature()
        flat.validate()

    @pytest.mark.parametrize("k", [2, 4])
    def test_access_and_semi_equivalence(self, k, rng):
        n = 24
        obj, flat = make_pair(n, k)
        for _ in range(120):
            x = int(rng.integers(1, n + 1))
            assert result_tuple(obj.access(x)) == result_tuple(flat.access(x))
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n))
            v += v >= u
            assert result_tuple(obj.serve_semi(u, v)) == result_tuple(
                flat.serve_semi(u, v)
            )
        assert tree_signature(obj.tree) == flat.flat.signature()
        flat.validate()

    def test_distance_and_depth_agree(self, rng):
        n, k = 30, 3
        obj, flat = make_pair(n, k)
        for _ in range(60):
            u = int(rng.integers(1, n + 1))
            v = int(rng.integers(1, n + 1))
            obj.serve(u, v) if u != v else None
            flat.serve(u, v) if u != v else None
            assert obj.distance(u, v) == flat.distance(u, v)
            assert obj.depth(u) == flat.depth(u)


class TestBatchedEquivalence:
    def test_all_engines_batched_equivalence(self):
        """Every registered engine — object, flat and native (which is
        flat's silent stand-in when the kernel is unavailable) — produces
        the identical topology and cost totals on one batched trace."""
        n, k, m = 40, 4, 400
        trace = zipf_trace(n, m, 1.25, seed=8)
        totals = {}
        signatures = {}
        for engine in ENGINES:
            net = KArySplayNet(n, k, engine=engine)
            batch = net.serve_trace(trace)
            totals[engine] = (
                batch.total_routing,
                batch.total_rotations,
                batch.total_links_changed,
            )
            signatures[engine] = tree_signature(net.tree)
        reference_totals = totals["object"]
        reference_signature = signatures["object"]
        assert all(t == reference_totals for t in totals.values()), totals
        assert all(s == reference_signature for s in signatures.values())

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_serve_trace_matches_scalar_loop(self, k):
        n, m = 32, 300
        trace = uniform_trace(n, m, seed=k)
        for engine in ENGINES:
            scalar = KArySplayNet(n, k, engine=engine)
            batched = KArySplayNet(n, k, engine=engine)
            totals = [0, 0, 0]
            for u, v in trace.pairs():
                r = scalar.serve(u, v)
                totals[0] += r.routing_cost
                totals[1] += r.rotations
                totals[2] += r.links_changed
            batch = batched.serve_trace(trace.sources, trace.targets)
            assert (
                batch.total_routing,
                batch.total_rotations,
                batch.total_links_changed,
            ) == tuple(totals), engine
            assert tree_signature(scalar.tree) == tree_signature(batched.tree)

    def test_serve_trace_series_and_cross_engine(self):
        n, k, m = 40, 3, 400
        trace = zipf_trace(n, m, 1.3, seed=5)
        obj, flat = make_pair(n, k)
        ba = obj.serve_trace(trace, record_series=True)
        bb = flat.serve_trace(trace.sources, trace.targets, record_series=True)
        assert ba.m == bb.m == m
        assert ba.total_routing == bb.total_routing
        assert ba.total_rotations == bb.total_rotations
        assert ba.total_links_changed == bb.total_links_changed
        assert np.array_equal(ba.routing_series, bb.routing_series)
        assert np.array_equal(ba.rotation_series, bb.rotation_series)
        flat.validate()

    def test_simulator_fast_path_matches_validated_loop(self):
        n, k, m = 24, 3, 200
        trace = uniform_trace(n, m, seed=9)
        for engine in ENGINES:
            fast = Simulator().run(KArySplayNet(n, k, engine=engine), trace)
            slow = Simulator(validate_every=50).run(
                KArySplayNet(n, k, engine=engine), trace
            )
            assert fast.total_routing == slow.total_routing
            assert fast.total_rotations == slow.total_rotations
            assert fast.total_links_changed == slow.total_links_changed


class TestCentroidEngineEquivalence:
    @pytest.mark.parametrize("k", [2, 3])
    def test_centroid_serve_equivalence(self, k):
        n, m = 40, 250
        trace = uniform_trace(n, m, seed=k)
        obj = CentroidSplayNet(n, k, engine="object")
        flat = CentroidSplayNet(n, k, engine="flat")
        for i, (u, v) in enumerate(trace.pairs()):
            ra, rb = obj.serve(u, v), flat.serve(u, v)
            assert result_tuple(ra) == result_tuple(rb), (k, i)
            assert obj.distance(u, v) == flat.distance(u, v)
        flat.validate()
        obj.validate()

    def test_centroid_serve_trace_matches_loop(self):
        n, k, m = 36, 2, 300
        trace = zipf_trace(n, m, 1.2, seed=3)
        loop = CentroidSplayNet(n, k, engine="flat")
        batched = CentroidSplayNet(n, k, engine="flat")
        totals = [0, 0, 0]
        for u, v in trace.pairs():
            r = loop.serve(u, v)
            totals[0] += r.routing_cost
            totals[1] += r.rotations
            totals[2] += r.links_changed
        batch = batched.serve_trace(trace.sources, trace.targets)
        assert (
            batch.total_routing,
            batch.total_rotations,
            batch.total_links_changed,
        ) == tuple(totals)
        batched.validate()


class TestStaticAndLazyBatched:
    def test_static_serve_trace_matches_scalar(self):
        from repro.core.builders import build_complete_tree

        n, m = 30, 200
        trace = uniform_trace(n, m, seed=4)
        net = StaticTreeNetwork(build_complete_tree(n, 3))
        scalar_total = sum(net.serve(u, v).routing_cost for u, v in trace.pairs())
        batch = net.serve_trace(trace.sources, trace.targets, record_series=True)
        assert batch.total_routing == scalar_total
        assert batch.total_rotations == 0
        assert int(batch.routing_series.sum()) == scalar_total

    @pytest.mark.parametrize("window", [None, 40])
    def test_lazy_serve_trace_matches_scalar(self, window):
        n, m = 16, 300
        trace = zipf_trace(n, m, 1.4, seed=7)
        scalar = LazyRebuildNetwork(n, 2, alpha=120.0, window=window)
        batched = LazyRebuildNetwork(n, 2, alpha=120.0, window=window)
        totals = [0, 0, 0]
        for u, v in trace.pairs():
            r = scalar.serve(u, v)
            totals[0] += r.routing_cost
            totals[1] += r.rotations
            totals[2] += r.links_changed
        batch = batched.serve_trace(trace.sources, trace.targets)
        assert (
            batch.total_routing,
            batch.total_rotations,
            batch.total_links_changed,
        ) == tuple(totals)
        assert scalar.rebuilds == batched.rebuilds
        assert np.array_equal(scalar._counts, batched._counts)
        assert scalar.tree.edge_set() == batched.tree.edge_set()


class TestReviewRegressions:
    def test_serve_many_requires_both_series_buffers(self):
        flat = KArySplayNet(10, 2, engine="flat").flat
        with pytest.raises(EngineError, match="together"):
            flat.serve_many([1, 2], [2, 3], routing_series=np.zeros(2, np.int64))

    def test_lazy_serve_trace_skips_self_pairs_like_serve(self):
        scalar = LazyRebuildNetwork(8, 2, alpha=50.0, window=10)
        batched = LazyRebuildNetwork(8, 2, alpha=50.0, window=10)
        us = [1, 3, 3, 5, 2, 2]
        vs = [2, 3, 4, 5, 7, 1]  # two self-pairs mixed in
        for u, v in zip(us, vs):
            scalar.serve(u, v)
        batched.serve_trace(np.array(us), np.array(vs))
        assert np.array_equal(scalar._counts, batched._counts)
        assert list(scalar._history) == list(batched._history)

    def test_potential_audit_works_on_flat_engine(self):
        from repro.analysis.potential import audit_splaynet_accesses

        net = KArySplayNet(20, 3, engine="flat")
        audits = audit_splaynet_accesses(net, [5, 12, 5, 19])
        assert len(audits) == 4


class TestFlatLongRun:
    def test_zipf_long_run_structural_integrity(self):
        n, k, m = 64, 4, 2_000
        trace = zipf_trace(n, m, 1.2, seed=11)
        obj, flat = make_pair(n, k)
        ba = obj.serve_trace(trace)
        bb = flat.serve_trace(trace)
        assert (ba.total_routing, ba.total_rotations, ba.total_links_changed) == (
            bb.total_routing,
            bb.total_rotations,
            bb.total_links_changed,
        )
        assert tree_signature(obj.tree) == flat.flat.signature()
        flat.validate()
