"""Tests for report rendering and the run_all orchestrator."""

from __future__ import annotations

import json

import pytest

from repro.experiments.presets import SMOKE
from repro.experiments.report import (
    render_kary_table,
    render_remark10,
    render_table8,
)
from repro.experiments.runner import run_all
from repro.experiments.tables import run_kary_table, run_remark10, run_table8
from repro.network.cost import UNIT_ROTATIONS


class TestRenderers:
    def test_kary_table_layout(self):
        result = run_kary_table("temporal-0.9", scale=SMOKE, ks=(2, 3))
        text = render_kary_table(result)
        assert "SplayNet" in text and "Full Tree" in text and "Optimal Tree" in text
        assert str(result.base_cost) in text

    def test_table8_layout(self):
        result = run_table8(scale=SMOKE, workloads=("uniform",))
        text = render_table8(result)
        assert "uniform" in text and "3-SplayNet" in text
        rotations_text = render_table8(result, model=UNIT_ROTATIONS)
        assert rotations_text != text

    def test_remark10_layout(self):
        result = run_remark10(ns=(5, 20), ks=(2, 3))
        text = render_remark10(result)
        assert "OPT" in text
        assert "optimal on the whole grid" in text


class TestRunAll:
    def test_smoke_run_all_writes_reports(self, tmp_path):
        report = run_all(
            scale=SMOKE,
            tables=(6,),
            include_table8=False,
            include_remark10=False,
            output_dir=tmp_path,
            verbose=False,
        )
        assert 6 in report.kary_tables
        text = (tmp_path / "report_smoke.txt").read_text()
        assert "Table 6" in text
        summary = json.loads((tmp_path / "summary_smoke.json").read_text())
        assert summary["scale"] == "smoke"
        assert "6" in summary["tables"]

    def test_report_render_contains_all_sections(self):
        report = run_all(
            scale=SMOKE,
            tables=(7,),
            include_table8=True,
            include_remark10=True,
            verbose=False,
        )
        text = report.render()
        assert "Table 7" in text
        assert "Table 8" in text
        assert "Remark 10" in text
        summary = report.summary()
        assert summary["remark10_all_optimal"] is True
        assert summary["table8"] is not None
