"""Smoke tests for the reproduce-pipeline benchmark and its CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.pipelinebench import (
    reproduce_pipeline_benchmark,
    write_pipeline_record,
)


class TestReproducePipelineBenchmark:
    def test_smoke_run_shape_and_equivalence(self):
        from repro.experiments.hotpath import default_hotpath_engines

        record = reproduce_pipeline_benchmark("smoke", tables=(6,), repeats=1)
        assert record["benchmark"] == "reproduce_pipeline"
        assert set(record["engines"]) == set(default_hotpath_engines())
        assert {"object", "flat"} <= set(record["engines"])
        for stats in record["engines"].values():
            assert stats["cpu_seconds"] > 0
            assert stats["wall_seconds"] > 0
        # The benchmark doubles as a pipeline-scale engine cross-check.
        assert record["summaries_match"] is True
        assert record["speedup_flat_over_object"] > 0

    def test_bad_repeats_rejected(self):
        with pytest.raises(ExperimentError):
            reproduce_pipeline_benchmark("smoke", tables=(6,), repeats=0)

    def test_unknown_or_empty_tables_rejected(self):
        with pytest.raises(ExperimentError):
            reproduce_pipeline_benchmark("smoke", tables=(8,))
        with pytest.raises(ExperimentError):
            reproduce_pipeline_benchmark("smoke", tables=())

    def test_cli_rejects_unknown_table_cleanly(self, capsys):
        rc = main(["bench-pipeline", "--scale", "smoke", "--tables", "9"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_record_writer(self, tmp_path):
        record = reproduce_pipeline_benchmark(
            "smoke", tables=(7,), repeats=1, engines=("flat",)
        )
        out = write_pipeline_record(record, tmp_path / "rec" / "bench.json")
        loaded = json.loads(out.read_text())
        assert loaded["config"]["scale"] == "smoke"
        assert loaded["config"]["tables"] == [7]


class TestBenchPipelineCli:
    def test_cli_emits_json_and_record(self, capsys, tmp_path):
        out_path = tmp_path / "pipeline.json"
        rc = main(
            [
                "bench-pipeline",
                "--scale", "smoke",
                "--tables", "6",
                "--repeats", "1",
                "--quiet",
                "--output", str(out_path),
            ]
        )
        assert rc == 0
        record = json.loads(out_path.read_text())
        assert record["summaries_match"] is True
        assert "speedup_flat_over_object" in record
