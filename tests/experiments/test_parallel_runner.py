"""The parallel table runners must reproduce the serial results exactly."""

from __future__ import annotations

import pytest

from repro.experiments.parallel_runner import (
    run_kary_table_parallel,
    run_table8_parallel,
)
from repro.experiments.presets import SMOKE, Scale
from repro.experiments.tables import run_kary_table, run_table8

TINY = Scale(
    name="tiny",
    m=600,
    uniform_n=24,
    hpc_n=27,
    projector_n=24,
    facebook_n=32,
    temporal_n=31,
    ks=(2, 3),
    optimal_tree_max_n=64,
)


class TestKAryTableParallel:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_matches_serial(self, jobs):
        serial = run_kary_table("temporal-0.5", scale=TINY)
        parallel = run_kary_table_parallel("temporal-0.5", scale=TINY, jobs=jobs)
        assert parallel.splaynet == serial.splaynet
        assert parallel.rotations == serial.rotations
        assert parallel.fulltree == serial.fulltree
        assert parallel.optimal == serial.optimal
        assert parallel.n == serial.n and parallel.m == serial.m

    def test_optimal_skipped_above_budget(self):
        scale = Scale(
            name="tiny2",
            m=300,
            uniform_n=24,
            hpc_n=27,
            projector_n=24,
            facebook_n=32,
            temporal_n=31,
            ks=(2,),
            optimal_tree_max_n=8,  # below every workload n
        )
        result = run_kary_table_parallel("uniform", scale=scale)
        assert result.optimal == {2: None}

    def test_include_optimal_false(self):
        result = run_kary_table_parallel(
            "uniform", scale=TINY, include_optimal=False
        )
        assert all(v is None for v in result.optimal.values())

    def test_custom_ks(self):
        result = run_kary_table_parallel("uniform", scale=TINY, ks=(2, 4))
        assert set(result.splaynet) == {2, 4}


class TestTable8Parallel:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_matches_serial(self, jobs):
        workloads = ("uniform", "temporal-0.9")
        serial = run_table8(scale=TINY, workloads=workloads)
        parallel = run_table8_parallel(scale=TINY, workloads=workloads, jobs=jobs)
        for workload in workloads:
            s, p = serial.row(workload), parallel.row(workload)
            assert p.centroid3.total_routing == s.centroid3.total_routing
            assert p.splaynet.total_routing == s.splaynet.total_routing
            assert p.full_binary_cost == s.full_binary_cost
            assert p.optimal_bst_cost == s.optimal_bst_cost

    def test_row_shape(self):
        result = run_table8_parallel(scale=TINY, workloads=("uniform",))
        row = result.row("uniform")
        assert row.m == TINY.m
        assert row.average_cost() > 0
        assert row.ratio_splaynet() > 0

    def test_all_workloads_smoke(self):
        # every paper workload builds and reduces at smoke scale
        result = run_table8_parallel(
            scale=SMOKE, workloads=("hpc", "projector"), include_optimal=False
        )
        assert len(result.rows) == 2
        assert all(r.optimal_bst_cost is None for r in result.rows)
