"""Claim-verification layer: synthetic results exercise both verdicts, and
a real smoke-scale run must pass the core claims."""

from __future__ import annotations

import pytest

from repro.experiments.presets import Scale
from repro.experiments.runner import ReproductionReport, run_all
from repro.experiments.tables import KAryTableResult, Remark10Result
from repro.experiments.verify import (
    ClaimCheck,
    check_kary_table,
    verify_reproduction,
)


def _fake_table(workload: str, *, falling: bool = True, crossing: bool = True):
    """A synthetic KAryTableResult with controllable shapes."""
    ks = (2, 3, 5)
    result = KAryTableResult(workload=workload, n=64, m=1000, ks=ks)
    base = 10_000
    for i, k in enumerate(ks):
        drop = (0.85**i) if falling else (1.05**i)
        result.splaynet[k] = int(base * drop)
        # full k-ary trees get shallower with k; when `crossing`, they
        # improve faster than the SplayNet, so the ratio rises with k
        full_drop = (0.6**i) if crossing else 1.0 / drop
        result.fulltree[k] = int(base * 0.9 * full_drop)
        result.optimal[k] = int(result.splaynet[k] / 1.5)
        result.rotations[k] = 100
        result.links[k] = 200
    return result


class TestClaimCheck:
    def test_str_pass_fail(self):
        ok = ClaimCheck(claim="c", source="s", passed=True)
        bad = ClaimCheck(claim="c", source="s", passed=False, detail="d")
        assert "PASS" in str(ok)
        assert "FAIL" in str(bad) and "(d)" in str(bad)


class TestCheckKAryTable:
    def test_good_shape_passes(self):
        checks = check_kary_table(_fake_table("temporal-0.5"))
        assert all(check.passed for check in checks)

    def test_rising_cost_fails_claim1(self):
        checks = check_kary_table(_fake_table("temporal-0.5", falling=False))
        claim1 = [c for c in checks if "falls with k" in c.claim][0]
        assert not claim1.passed

    def test_no_crossover_fails_claim2(self):
        checks = check_kary_table(_fake_table("temporal-0.5", crossing=False))
        claim2 = [c for c in checks if "full-tree ratio grows" in c.claim][0]
        assert not claim2.passed

    def test_high_locality_gets_extra_claim(self):
        checks = check_kary_table(_fake_table("temporal-0.9"))
        assert any("every k (high locality)" in c.claim for c in checks)

    def test_optimal_bound_claim(self):
        table = _fake_table("hpc")
        for k in table.ks:
            table.optimal[k] = table.splaynet[k] // 10  # ratio 10: too far
        checks = check_kary_table(table)
        bound = [c for c in checks if "bounded constant" in c.claim][0]
        assert not bound.passed

    def test_missing_optimal_skips_claim(self):
        table = _fake_table("facebook")
        for k in table.ks:
            table.optimal[k] = None
        checks = check_kary_table(table)
        assert not any("bounded constant" in c.claim for c in checks)


class TestVerifyReproduction:
    def test_remark10_claim(self):
        report = ReproductionReport(scale="test")
        report.remark10 = Remark10Result(entries=[(10, 2, 100, 100, 110)])
        summary = verify_reproduction(report)
        assert summary.passed
        report.remark10 = Remark10Result(entries=[(10, 2, 105, 100, 110)])
        assert not verify_reproduction(report).passed

    def test_render(self):
        report = ReproductionReport(scale="test")
        report.kary_tables[4] = _fake_table("temporal-0.25")
        summary = verify_reproduction(report)
        text = summary.render()
        assert "claims checked" in text or "FAILED" in text

    def test_failures_listed(self):
        report = ReproductionReport(scale="test")
        report.kary_tables[4] = _fake_table("temporal-0.25", falling=False)
        summary = verify_reproduction(report)
        assert summary.failures()


@pytest.mark.slow
class TestOnRealRun:
    def test_smoke_run_passes_core_claims(self):
        scale = Scale(
            name="verify-smoke",
            m=4_000,
            uniform_n=40,
            hpc_n=64,
            projector_n=40,
            facebook_n=64,
            temporal_n=63,
            ks=(2, 3, 5),
            optimal_tree_max_n=128,
        )
        report = run_all(
            scale=scale,
            tables=(6, 7),            # the high-locality tables
            include_table8=False,
            include_remark10=False,
            verbose=False,
        )
        summary = verify_reproduction(report)
        assert summary.passed, summary.render()
