"""Paper-scale readiness: the PAPER preset's workloads must *generate* at
full size (10⁶ requests) in reasonable time — running the full tables at
that scale is hours of compute, but generation and the first simulation
steps must not be the blocker."""

from __future__ import annotations

import time

import pytest

from repro.experiments.presets import PAPER, make_workload


@pytest.mark.slow
class TestPaperScaleGeneration:
    @pytest.mark.parametrize(
        "workload", ["uniform", "hpc", "projector", "temporal-0.9"]
    )
    def test_million_request_generation(self, workload):
        start = time.perf_counter()
        trace = make_workload(workload, PAPER)
        elapsed = time.perf_counter() - start
        assert trace.m == 1_000_000
        assert elapsed < 60.0, f"{workload} generation took {elapsed:.1f}s"

    def test_facebook_at_ten_thousand_nodes(self):
        trace = make_workload("facebook", PAPER)
        assert trace.n == 10_000
        assert trace.m == 1_000_000

    def test_paper_preset_matches_paper_setup(self):
        # Section 5 "Setup and data"
        assert PAPER.m == 1_000_000
        assert PAPER.hpc_n == 500
        assert PAPER.projector_n == 100
        assert PAPER.facebook_n == 10_000
        assert PAPER.temporal_n == 1023
        assert PAPER.uniform_n == 100
        assert PAPER.ks == tuple(range(2, 11))
