"""Tests for the table-regeneration harness (smoke scale)."""

from __future__ import annotations

import pytest

from repro.experiments.presets import SMOKE
from repro.experiments.tables import (
    TABLE_WORKLOAD,
    run_kary_table,
    run_remark10,
    run_table8_row,
)
from repro.network.cost import ROUTING_ONLY, UNIT_ROTATIONS


@pytest.fixture(scope="module")
def kary_result():
    return run_kary_table("temporal-0.5", scale=SMOKE)


class TestKAryTable:
    def test_all_cells_present(self, kary_result):
        for k in SMOKE.ks:
            assert kary_result.splaynet[k] > 0
            assert kary_result.fulltree[k] > 0
            assert kary_result.optimal[k] is not None
            assert kary_result.rotations[k] > 0

    def test_base_cost_is_k2(self, kary_result):
        assert kary_result.base_cost == kary_result.splaynet[2]
        assert kary_result.splaynet_ratio(2) == 1.0

    def test_paper_trend_cost_decreases_with_k(self, kary_result):
        ks = sorted(SMOKE.ks)
        assert kary_result.splaynet_ratio(ks[-1]) < 1.0

    def test_optimal_tree_lower_bounds_static_full(self, kary_result):
        """The optimal static tree can never lose to the full tree."""
        for k in SMOKE.ks:
            assert kary_result.optimal[k] <= kary_result.fulltree[k]

    def test_optimal_skipped_beyond_cap(self):
        import dataclasses

        tiny_cap = dataclasses.replace(SMOKE, optimal_tree_max_n=10)
        result = run_kary_table("temporal-0.5", scale=tiny_cap, ks=(2, 3))
        assert result.optimal[2] is None
        assert result.optimal_ratio(2) is None

    def test_table_workload_mapping_is_complete(self):
        assert set(TABLE_WORKLOAD) == set(range(1, 8))


class TestTable8Row:
    @pytest.fixture(scope="class")
    def row(self):
        return run_table8_row("uniform", scale=SMOKE)

    def test_fields(self, row):
        assert row.n == SMOKE.uniform_n and row.m == SMOKE.m
        assert row.centroid3.total_routing > 0
        assert row.splaynet.total_routing > 0
        assert row.full_binary_cost > 0
        assert row.optimal_bst_cost is not None

    def test_ratios_positive(self, row):
        for model in (ROUTING_ONLY, UNIT_ROTATIONS):
            assert row.average_cost(model) > 0
            assert row.ratio_splaynet(model) > 0
            assert row.ratio_full(model) > 0
            assert row.ratio_optimal(model) > 0

    def test_optimal_bst_beats_full_binary(self, row):
        assert row.optimal_bst_cost <= row.full_binary_cost

    def test_static_trees_have_no_rotation_costs(self, row):
        # under UNIT_ROTATIONS, static ratios shrink relative to ROUTING_ONLY
        assert row.ratio_full(UNIT_ROTATIONS) < row.ratio_full(ROUTING_ONLY)


class TestRemark10:
    def test_centroid_optimal_on_small_grid(self):
        result = run_remark10(ns=(5, 17, 60, 128), ks=(2, 3, 5))
        assert result.all_optimal
        assert result.mismatches() == []
        assert len(result.entries) == 12

    def test_full_tree_never_beats_centroid(self):
        result = run_remark10(ns=(20, 90), ks=(2, 4))
        for _, _, centroid, _, full in result.entries:
            assert centroid <= full
