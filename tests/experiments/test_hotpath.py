"""Smoke tests for the engine hot-path benchmark and its CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.engine import native_available
from repro.errors import ExperimentError
from repro.experiments.hotpath import (
    default_hotpath_engines,
    hotpath_benchmark,
    write_hotpath_record,
)


class TestHotpathBenchmark:
    def test_tiny_run_shape_and_equivalence(self):
        result = hotpath_benchmark(n=32, k=3, m=250, seed=1)
        assert result["benchmark"] == "engine_hotpath"
        assert set(result["engines"]) == set(default_hotpath_engines())
        assert {"object", "flat"} <= set(result["engines"])
        for engine, stats in result["engines"].items():
            assert stats["seconds"] > 0
            assert stats["cpu_seconds"] >= 0
            assert stats["requests_per_second"] > 0
            assert stats["total_routing"] > 0
        # The benchmark doubles as an engine cross-check.
        assert result["totals_match"] is True
        assert result["speedup_flat_over_object"] > 0
        assert result["speedup_flat_over_object_wall"] > 0
        if native_available():
            assert "native" in result["engines"]
            assert result["speedup_native_over_object"] > 0

    def test_engine_subset_selection(self):
        result = hotpath_benchmark(n=24, k=2, m=120, engines=("flat",))
        assert set(result["engines"]) == {"flat"}
        assert "totals_match" not in result
        assert "speedup_flat_over_object" not in result

    def test_interleaved_repeats_keep_best(self):
        result = hotpath_benchmark(
            n=24, k=2, m=120, repeats=2, engines=("object", "flat")
        )
        assert result["config"]["repeats"] == 2
        assert result["config"]["interleaved"] is True
        assert result["totals_match"] is True

    def test_centroid_network_variant(self):
        result = hotpath_benchmark(n=30, k=2, m=150, network="centroid-splaynet")
        assert result["totals_match"] is True

    def test_bad_config_rejected(self):
        with pytest.raises(ExperimentError):
            hotpath_benchmark(n=16, k=2, m=50, repeats=0)
        with pytest.raises(ExperimentError):
            hotpath_benchmark(n=16, k=2, m=50, network="nope")
        with pytest.raises(ExperimentError):
            hotpath_benchmark(n=16, k=2, m=50, engines=())
        with pytest.raises(ExperimentError):
            hotpath_benchmark(n=16, k=2, m=50, engines=("warp",))

    def test_native_request_honest_when_unavailable(self, monkeypatch):
        """Requesting the native engine without a kernel must error, not
        silently record a mislabeled flat measurement."""
        from repro.core import _native

        monkeypatch.setenv("REPRO_NATIVE", "0")
        _native._reset_for_tests()
        try:
            with pytest.raises(ExperimentError, match="unavailable"):
                hotpath_benchmark(n=16, k=2, m=50, engines=("native",))
            assert default_hotpath_engines() == ("object", "flat")
        finally:
            _native._reset_for_tests()

    def test_record_writer(self, tmp_path):
        result = hotpath_benchmark(n=16, k=2, m=80)
        out = write_hotpath_record(result, tmp_path / "rec" / "bench.json")
        loaded = json.loads(out.read_text())
        assert loaded["config"]["n"] == 16


class TestBenchHotpathCli:
    def test_cli_emits_json(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        rc = main(
            [
                "bench-hotpath",
                "-n", "24",
                "-k", "2",
                "-m", "120",
                "--output", str(out_path),
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["n"] == 24
        assert payload["totals_match"] is True
        assert json.loads(out_path.read_text()) == payload

    def test_cli_engine_selection(self, capsys):
        rc = main(
            [
                "bench-hotpath",
                "-n", "20",
                "-k", "2",
                "-m", "80",
                "--engines", "flat",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["engines"]) == {"flat"}
