"""Tests for experiment presets and the workload registry."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.presets import (
    PAPER,
    QUICK,
    SMOKE,
    WORKLOADS,
    get_scale,
    make_workload,
)


class TestScales:
    def test_get_scale_by_name(self):
        assert get_scale("quick") is QUICK
        assert get_scale("smoke") is SMOKE
        assert get_scale("paper") is PAPER

    def test_get_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale() is SMOKE

    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() is QUICK

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            get_scale("galactic")

    def test_paper_scale_matches_section5(self):
        assert PAPER.m == 1_000_000
        assert PAPER.hpc_n == 500
        assert PAPER.projector_n == 100
        assert PAPER.facebook_n == 10_000
        assert PAPER.temporal_n == 1023
        assert PAPER.uniform_n == 100
        assert PAPER.ks == tuple(range(2, 11))


class TestWorkloadRegistry:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_all_workloads_instantiable(self, name):
        trace = make_workload(name, SMOKE)
        assert trace.m == SMOKE.m
        assert trace.n == SMOKE.workload_n(name)

    def test_temporal_parameter_parsed(self):
        trace = make_workload("temporal-0.75", SMOKE)
        assert trace.meta["p"] == 0.75

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError):
            make_workload("quantum", SMOKE)

    def test_deterministic(self):
        import numpy as np

        a = make_workload("hpc", SMOKE)
        b = make_workload("hpc", SMOKE)
        assert np.array_equal(a.sources, b.sources)
