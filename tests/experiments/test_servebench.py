"""Smoke tests for the serve-farm benchmark, report, and their CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.engine import native_available
from repro.errors import ExperimentError
from repro.experiments.servebench import (
    default_scalar_modes,
    servefarm_benchmark,
    write_servefarm_record,
)
from repro.experiments.trajectory import (
    load_benchmark_records,
    record_checks,
    record_metrics,
    render_trajectory,
)


class TestServefarmBenchmark:
    def test_tiny_run_shape_and_equivalence(self):
        result = servefarm_benchmark(
            n=24,
            k=3,
            scalar_m=80,
            farm_m=300,
            shard_counts=(1, 2),
            keys=4,
            window=100,
            seed=2,
        )
        assert result["benchmark"] == "servefarm"
        assert set(result["scalar"]["modes"]) == set(default_scalar_modes())
        for stats in result["scalar"]["modes"].values():
            assert stats["seconds"] > 0
            assert stats["requests_per_second"] > 0
            assert stats["total_routing"] > 0
        assert set(result["farm"]["shards"]) == {"1", "2"}
        for stats in result["farm"]["shards"].values():
            assert stats["requests_per_second"] > 0
            assert stats["capacity_requests_per_second"] > 0
            assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]
        # The benchmark doubles as a serving-mode equivalence check.
        assert result["farm"]["totals_match"] is True
        assert "scaling_2_over_1" in result["farm"]
        if native_available():
            assert result["scalar"]["totals_match"] is True
            assert result["scalar"]["speedup_resident_over_marshalled"] > 0

    def test_parts_can_be_skipped(self):
        scalar_only = servefarm_benchmark(
            n=16, k=2, scalar_m=40, farm_m=0, scalar_modes=("flat",)
        )
        assert scalar_only["farm"]["shards"] == {}
        assert set(scalar_only["scalar"]["modes"]) == {"flat"}
        assert "totals_match" not in scalar_only["scalar"]
        farm_only = servefarm_benchmark(
            n=16, k=2, scalar_m=0, farm_m=120, shard_counts=(1,), keys=2
        )
        assert farm_only["scalar"]["modes"] == {}
        assert set(farm_only["farm"]["shards"]) == {"1"}

    def test_bad_config_rejected(self):
        with pytest.raises(ExperimentError):
            servefarm_benchmark(n=16, repeats=0)
        with pytest.raises(ExperimentError):
            servefarm_benchmark(n=16, scalar_modes=("warp",))
        with pytest.raises(ExperimentError):
            servefarm_benchmark(n=16, shard_counts=())
        with pytest.raises(ExperimentError):
            servefarm_benchmark(n=16, keys=0)

    def test_record_writer_and_cli(self, tmp_path, capsys):
        out = tmp_path / "BENCH_servefarm.json"
        code = main(
            [
                "bench-servefarm",
                "-n", "16",
                "-k", "2",
                "--scalar-requests", "30",
                "--farm-requests", "80",
                "--shards", "1",
                "--keys", "2",
                "--modes", "flat",
                "--output", str(out),
            ]
        )
        assert code == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "servefarm"
        assert json.loads(capsys.readouterr().out)["config"]["n"] == 16


class TestTrajectoryReport:
    def _write_records(self, directory):
        directory.mkdir(parents=True, exist_ok=True)
        write_servefarm_record(
            {
                "benchmark": "demo",
                "speedup_fast_over_slow": 12.5,
                "totals_match": True,
                "nested": {
                    "requests_per_second": 1_500_000.0,
                    "latency_p99_seconds": 3.4e-5,
                    "summaries_match": False,
                },
            },
            directory / "BENCH_demo.json",
        )
        write_servefarm_record(
            {"benchmark": "empty", "config": {"n": 4}},
            directory / "BENCH_empty.json",
        )

    def test_metric_and_check_extraction(self, tmp_path):
        self._write_records(tmp_path)
        records = load_benchmark_records(tmp_path)
        assert list(records) == ["BENCH_demo.json", "BENCH_empty.json"]
        demo = records["BENCH_demo.json"]
        metrics = dict(record_metrics(demo))
        assert metrics["speedup_fast_over_slow"] == "12.50x"
        assert metrics["nested.requests_per_second"] == "1.50M req/s"
        assert metrics["nested.latency_p99_seconds"] == "34.0 us"
        assert dict(record_checks(demo)) == {
            "totals_match": True,
            "nested.summaries_match": False,
        }

    def test_rendered_markdown(self, tmp_path):
        self._write_records(tmp_path)
        text = render_trajectory(tmp_path)
        assert text.startswith("# Performance trajectory")
        assert "| BENCH_demo.json | `nested.latency_p99_seconds` |" in text
        assert "(no trajectory metrics)" in text  # the empty record
        assert "- PASS `BENCH_demo.json` `totals_match`" in text
        assert "- **FAIL** `BENCH_demo.json` `nested.summaries_match`" in text

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            render_trajectory(tmp_path / "nope")

    def test_cli_bench_report(self, tmp_path, capsys):
        self._write_records(tmp_path / "results")
        out = tmp_path / "report.md"
        code = main(
            [
                "bench-report",
                "--results-dir", str(tmp_path / "results"),
                "-o", str(out),
            ]
        )
        assert code == 0
        assert out.read_text().startswith("# Performance trajectory")
        assert "12.50x" in capsys.readouterr().out

    def test_repo_results_directory_renders(self):
        """The checked-in benchmarks/results records stay renderable."""
        text = render_trajectory()
        assert "BENCH_servefarm.json" in text
        assert "scaling_2_over_1" in text
