"""Backend equivalence: same campaign, same cells, either store."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.presets import get_scale
from repro.results import (
    JsonlStore,
    SqliteStore,
    copy_results,
    open_store,
)
from repro.scenarios import expand, run_specs
from repro.scenarios.core import ScenarioResult

from .conftest import make_result


def _summaries(results) -> list[tuple]:
    return [
        (r.spec, r.total_routing, r.total_rotations, r.total_links_changed)
        for r in results
    ]


class TestSameCampaignBothBackends:
    def test_identical_result_sets(self, tmp_path):
        """ISSUE acceptance: JsonlStore and SqliteStore record the same cells."""
        specs = expand("table4", get_scale("smoke"))
        jsonl = JsonlStore(tmp_path / "c.jsonl")
        sqlite = SqliteStore(tmp_path / "c.sqlite")
        with jsonl, sqlite:
            first = run_specs(specs, sink=jsonl, cache=False)
            second = run_specs(specs, sink=sqlite, cache=False)
        assert _summaries(first) == _summaries(second)
        assert _summaries(list(JsonlStore(tmp_path / "c.jsonl"))) == _summaries(
            list(SqliteStore(tmp_path / "c.sqlite"))
        )

    def test_store_protocol_shape(self, tmp_path):
        from repro.results import ResultStore

        for store in (
            JsonlStore(tmp_path / "p.jsonl"),
            SqliteStore(tmp_path / "p.sqlite"),
        ):
            assert isinstance(store, ResultStore)


class TestRoundTripConversion:
    def test_quick_scale_campaign_round_trips(self, tmp_path):
        """JSONL → SQLite → JSONL is lossless on a full quick-scale grid.

        Conversion fidelity is what's under test, so the quick-scale
        ``all`` spec list gets deterministic synthesized totals instead
        of hours of simulation.
        """
        specs = expand("all", get_scale("quick"))
        cells = [
            ScenarioResult(
                spec=spec,
                total_routing=1000 + index,
                total_rotations=index * 3,
                total_links_changed=index * 5,
                elapsed_seconds=0.0,
            )
            for index, spec in enumerate(specs)
        ]
        source = tmp_path / "all.jsonl"
        with JsonlStore(source) as store:
            store.append_many(cells)

        via = tmp_path / "all.sqlite"
        assert copy_results(source, via) == len(cells)
        back = tmp_path / "back.jsonl"
        assert copy_results(via, back) == len(cells)

        assert list(JsonlStore(back)) == cells
        assert list(SqliteStore(via)) == cells

    def test_copy_results_accepts_stores_and_paths(self, tmp_path, results):
        source = JsonlStore(tmp_path / "s.jsonl")
        with source:
            source.append_many(results)
        dest = SqliteStore(tmp_path / "d.sqlite")
        assert copy_results(source, dest) == len(results)
        dest.close()
        assert list(SqliteStore(tmp_path / "d.sqlite")) == results

    def test_copy_overwrites_destination_by_default(self, tmp_path, results):
        source = tmp_path / "s.jsonl"
        with JsonlStore(source) as store:
            store.append_many(results[:2])
        dest = tmp_path / "d.sqlite"
        with SqliteStore(dest) as stale:
            stale.write(make_result(99))
        copy_results(source, dest)
        assert list(SqliteStore(dest)) == results[:2]


class TestCliConversion:
    def test_run_then_convert_and_back(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert (
            main(
                [
                    "scenarios", "run", "table4", "--scale", "smoke",
                    "--record", "--no-cache",
                ]
            )
            == 0
        )
        jsonl_path = tmp_path / "scenario_table4_smoke.jsonl"
        assert jsonl_path.exists()
        assert (
            main(["scenarios", "export", "table4", "--scale", "smoke", "--to", "sqlite"])
            == 0
        )
        sqlite_path = tmp_path / "scenario_table4_smoke.sqlite"
        assert sqlite_path.exists()
        back = tmp_path / "roundtrip.jsonl"
        assert (
            main(
                [
                    "scenarios", "export", "table4", "--scale", "smoke",
                    "--to", "jsonl", "--from", str(sqlite_path), "-o", str(back),
                ]
            )
            == 0
        )
        original = list(open_store(jsonl_path))
        converted = list(open_store(sqlite_path))
        round_tripped = list(open_store(back))
        assert original == converted == round_tripped
        assert len(original) > 0

    def test_sqlite_store_flag_records_to_sqlite(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert (
            main(
                [
                    "scenarios", "run", "table4", "--scale", "smoke",
                    "--record", "--store", "sqlite", "--no-cache",
                ]
            )
            == 0
        )
        path = tmp_path / "scenario_table4_smoke.sqlite"
        store = open_store(path)
        assert isinstance(store, SqliteStore)
        assert store.count_records() > 0

    def test_conversion_without_source_record_errors(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert (
            main(["scenarios", "export", "zipf", "--scale", "smoke", "--to", "sqlite"])
            == 2
        )
        assert "no result record" in capsys.readouterr().err


class TestResumeSummary:
    def test_cli_resume_reports_preexisting(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        main(["scenarios", "run", "table4", "--scale", "smoke", "--record", "--no-cache"])
        first = capsys.readouterr().out
        assert "preexisting" in first
        main(
            [
                "scenarios", "run", "table4", "--scale", "smoke",
                "--record", "--resume", "--no-cache",
            ]
        )
        second = capsys.readouterr().out
        # Everything was already recorded: nothing written, all preexisting.
        assert "(0 written" in second
