"""The JSONL backend: streaming reads, session accounting, queries."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.results import (
    JsonlStore,
    iter_results_jsonl,
    open_store,
    read_results_jsonl,
    spec_store_hash,
)

from .conftest import make_result


class TestStreamingIterator:
    def test_yields_lazily_in_append_order(self, tmp_path, results):
        path = tmp_path / "r.jsonl"
        with JsonlStore(path) as store:
            for result in results:
                store.write(result)
        iterator = iter_results_jsonl(path)
        first = next(iterator)
        assert first == results[0]
        assert list(iterator) == results[1:]

    def test_read_results_jsonl_matches_iterator(self, tmp_path, results):
        path = tmp_path / "r.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results)
        assert read_results_jsonl(path) == list(iter_results_jsonl(path))

    def test_truncated_trailing_line_warns_once(self, tmp_path, results):
        path = tmp_path / "torn.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results[:3])
        text = path.read_text()
        lines = text.splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][:12])
        with pytest.warns(RuntimeWarning, match="truncated trailing line"):
            loaded = list(iter_results_jsonl(path))
        assert loaded == results[:2]

    def test_mid_file_corruption_raises(self, tmp_path, results):
        path = tmp_path / "bad.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results[:3])
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], "{oops", lines[2]]) + "\n")
        with pytest.raises(json.JSONDecodeError):
            list(iter_results_jsonl(path))

    def test_blank_lines_are_ignored(self, tmp_path, results):
        path = tmp_path / "blank.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results[:2])
        path.write_text(path.read_text().replace("\n", "\n\n", 1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(iter_results_jsonl(path)) == results[:2]


class TestSessionAccounting:
    def test_fresh_store_counts_from_zero(self, tmp_path, results):
        store = JsonlStore(tmp_path / "a.jsonl")
        assert (store.preexisting, store.count, store.total) == (0, 0, 0)
        store.write(results[0])
        store.close()
        assert (store.preexisting, store.count, store.total) == (0, 1, 1)

    def test_append_session_reports_preexisting(self, tmp_path, results):
        path = tmp_path / "a.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results[:3])
        with JsonlStore(path) as resumed:
            resumed.write(results[3])
            assert resumed.preexisting == 3
            assert resumed.count == 1
            assert resumed.total == 4

    def test_preexisting_ignores_a_torn_tail(self, tmp_path, results):
        path = tmp_path / "a.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results[:3])
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][:9])
        store = JsonlStore(path)
        assert store.preexisting == 2

    def test_overwrite_session_has_no_preexisting(self, tmp_path, results):
        path = tmp_path / "a.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results[:3])
        with JsonlStore(path, overwrite=True) as fresh:
            assert fresh.preexisting == 0
            fresh.write(results[0])
            assert fresh.total == 1
        assert read_results_jsonl(path) == results[:1]


class TestQueries:
    def test_query_by_spec_hash(self, tmp_path, results):
        path = tmp_path / "q.jsonl"
        with JsonlStore(path) as store:
            store.append_many(results)
        wanted = spec_store_hash(results[2].spec)
        assert list(JsonlStore(path).query(spec_hash=wanted)) == [results[2]]

    def test_query_by_coordinates(self, tmp_path):
        path = tmp_path / "q.jsonl"
        cells = [
            make_result(1, algorithm="kary-splaynet", k=2),
            make_result(2, algorithm="kary-splaynet", k=3),
            make_result(3, algorithm="full-tree", k=3),
        ]
        with JsonlStore(path) as store:
            store.append_many(cells)
        store = JsonlStore(path)
        assert list(store.query(algorithm="kary-splaynet")) == cells[:2]
        assert list(store.query(k=3)) == cells[1:]
        assert store.count_records(algorithm="full-tree") == 1
        assert store.count_records() == 3

    def test_scale_filter_matches_store_label(self, tmp_path, results):
        path = tmp_path / "q.jsonl"
        with JsonlStore(path, scale="smoke") as store:
            store.append_many(results)
        assert list(JsonlStore(path, scale="smoke").query(scale="smoke")) == results
        assert list(JsonlStore(path, scale="smoke").query(scale="paper")) == []

    def test_iterating_a_missing_file_yields_nothing(self, tmp_path):
        assert list(JsonlStore(tmp_path / "absent.jsonl")) == []

    def test_schema_version(self, tmp_path):
        assert JsonlStore(tmp_path / "v.jsonl").schema_version() == 1


class TestOpenStoreInference:
    def test_jsonl_suffix_and_default(self, tmp_path):
        assert isinstance(open_store(tmp_path / "x.jsonl"), JsonlStore)
        assert isinstance(open_store(tmp_path / "x.records"), JsonlStore)

    def test_explicit_backend_overrides_suffix(self, tmp_path):
        store = open_store(tmp_path / "x.sqlite", backend="jsonl")
        assert isinstance(store, JsonlStore)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_store(tmp_path / "x.jsonl", backend="parquet")
