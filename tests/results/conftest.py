"""Shared helpers for the results-store suite."""

from __future__ import annotations

import pytest

from repro.scenarios.core import ScenarioResult
from repro.scenarios.spec import ScenarioSpec


def make_result(
    seed: int,
    *,
    workload: str = "uniform",
    algorithm: str = "kary-splaynet",
    k: int = 2,
    n: int = 16,
    group: str = "store-test",
    routing: int | None = None,
) -> ScenarioResult:
    """A small deterministic result cell (no simulation involved)."""
    spec = ScenarioSpec(
        workload=workload,
        n=n,
        m=40,
        seed=seed,
        algorithm=algorithm,
        k=k,
        group=group,
    )
    return ScenarioResult(
        spec=spec,
        total_routing=routing if routing is not None else 100 + seed,
        total_rotations=10 + seed,
        total_links_changed=20 + seed,
        elapsed_seconds=0.0,
    )


@pytest.fixture
def results():
    return [make_result(seed) for seed in range(5)]
