"""The SQLite backend: round-trips, WAL durability, schema versioning."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import FaultInjected, ReproError
from repro.reliability.faults import FaultPlan, FaultSpec, inject_faults
from repro.results import SqliteStore, open_store, spec_store_hash
from repro.results.sqlite import SQLITE_SCHEMA_VERSION

from .conftest import make_result


class TestRoundTrip:
    def test_write_then_iterate_in_append_order(self, tmp_path, results):
        path = tmp_path / "r.sqlite"
        with SqliteStore(path) as store:
            for result in results:
                store.write(result)
        assert list(SqliteStore(path)) == results

    def test_append_many_batches(self, tmp_path, results):
        path = tmp_path / "r.sqlite"
        with SqliteStore(path, batch=2) as store:
            assert store.append_many(results) == len(results)
        assert list(SqliteStore(path)) == results

    def test_duplicate_specs_keep_every_record(self, tmp_path):
        path = tmp_path / "dup.sqlite"
        first = make_result(1, routing=100)
        second = make_result(1, routing=999)
        with SqliteStore(path) as store:
            store.append_many([first, second])
        assert list(SqliteStore(path)) == [first, second]

    def test_params_survive_the_round_trip(self, tmp_path):
        from repro.scenarios.core import ScenarioResult
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(
            workload="permutation",
            n=64,
            m=100,
            seed=0,
            algorithm="lazy",
            k=3,
            params={"alpha": 2000},
        )
        cell = ScenarioResult(spec, 1, 2, 3, 0.0)
        path = tmp_path / "p.sqlite"
        with SqliteStore(path) as store:
            store.write(cell)
        (loaded,) = list(SqliteStore(path))
        assert loaded.spec.params == (("alpha", 2000),)
        assert loaded == cell

    def test_open_store_infers_sqlite_suffixes(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert isinstance(open_store(tmp_path / f"x{suffix}"), SqliteStore)


class TestQueries:
    def test_indexed_filters(self, tmp_path):
        cells = [
            make_result(1, algorithm="kary-splaynet", k=2, group="a"),
            make_result(2, algorithm="kary-splaynet", k=3, group="a"),
            make_result(3, algorithm="full-tree", k=3, group="b"),
        ]
        path = tmp_path / "q.sqlite"
        with SqliteStore(path, scale="smoke") as store:
            store.append_many(cells)
        store = SqliteStore(path)
        assert list(store.query(algorithm="kary-splaynet")) == cells[:2]
        assert list(store.query(k=3)) == cells[1:]
        assert list(store.query(group="b")) == cells[2:]
        assert list(store.query(scale="smoke")) == cells
        wanted = spec_store_hash(cells[1].spec)
        assert list(store.query(spec_hash=wanted)) == [cells[1]]
        assert store.count_records(group="a", k=2) == 1
        assert store.count_records() == 3

    def test_unknown_filter_rejected(self, tmp_path, results):
        path = tmp_path / "q.sqlite"
        with SqliteStore(path) as store:
            store.append_many(results)
        with pytest.raises(ReproError, match="unknown result-store filter"):
            list(SqliteStore(path).query(color="red"))

    def test_queries_against_a_missing_file(self, tmp_path):
        store = SqliteStore(tmp_path / "absent.sqlite")
        assert list(store) == []
        assert store.count_records() == 0


class TestDurability:
    def test_wal_mode_is_active(self, tmp_path, results):
        path = tmp_path / "wal.sqlite"
        with SqliteStore(path) as store:
            store.write(results[0])
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_truncate_fault_leaves_record_uncommitted(self, tmp_path, results):
        path = tmp_path / "fault.sqlite"
        plan = FaultPlan(specs=(FaultSpec("sink.write", mode="truncate", at=(2,)),))
        store = SqliteStore(path)
        with inject_faults(plan):
            store.write(results[0])
            with pytest.raises(FaultInjected, match="torn write"):
                store.write(results[1])
        store.close()
        # The faulted row was rolled back: only the first record survives.
        assert list(SqliteStore(path)) == results[:1]

    def test_error_fault_fires_before_any_insert(self, tmp_path, results):
        path = tmp_path / "err.sqlite"
        plan = FaultPlan(specs=(FaultSpec("sink.write", mode="error", at=(1,)),))
        store = SqliteStore(path)
        with inject_faults(plan):
            with pytest.raises(FaultInjected):
                store.write(results[0])
        store.close()
        assert list(SqliteStore(path)) == []

    def test_overwrite_truncates_on_first_write_only(self, tmp_path, results):
        path = tmp_path / "ow.sqlite"
        with SqliteStore(path) as store:
            store.append_many(results[:3])
        # Read-side access to an overwrite store must not delete anything.
        reader = SqliteStore(path, overwrite=True)
        assert len(list(reader)) == 3
        reader.close()
        assert len(list(SqliteStore(path))) == 3
        with SqliteStore(path, overwrite=True) as fresh:
            fresh.write(results[4])
            assert fresh.preexisting == 0
        assert list(SqliteStore(path)) == [results[4]]

    def test_session_accounting(self, tmp_path, results):
        path = tmp_path / "acct.sqlite"
        with SqliteStore(path) as store:
            store.append_many(results[:3])
        with SqliteStore(path) as resumed:
            resumed.write(results[3])
            assert resumed.preexisting == 3
            assert resumed.count == 1
            assert resumed.total == 4


class TestSchemaVersioning:
    def test_fresh_database_records_current_version(self, tmp_path, results):
        path = tmp_path / "v.sqlite"
        with SqliteStore(path) as store:
            store.write(results[0])
        assert SqliteStore(path).schema_version() == SQLITE_SCHEMA_VERSION

    def test_newer_schema_is_refused(self, tmp_path, results):
        path = tmp_path / "newer.sqlite"
        with SqliteStore(path) as store:
            store.write(results[0])
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE schema_version SET version = ?", (SQLITE_SCHEMA_VERSION + 7,)
        )
        conn.commit()
        conn.close()
        with pytest.raises(ReproError, match="newer than"):
            list(SqliteStore(path))

    def test_missing_migration_is_refused(self, tmp_path, results, monkeypatch):
        path = tmp_path / "old.sqlite"
        with SqliteStore(path) as store:
            store.write(results[0])
        monkeypatch.setattr(
            "repro.results.sqlite.SQLITE_SCHEMA_VERSION", SQLITE_SCHEMA_VERSION + 1
        )
        with pytest.raises(ReproError, match="no registered migration"):
            list(SqliteStore(path))

    def test_forward_migration_hook_walks_versions(
        self, tmp_path, results, monkeypatch
    ):
        path = tmp_path / "mig.sqlite"
        with SqliteStore(path) as store:
            store.append_many(results[:2])
        steps: list[int] = []

        def migrate(conn: sqlite3.Connection) -> None:
            steps.append(SQLITE_SCHEMA_VERSION)
            conn.execute(
                "ALTER TABLE results ADD COLUMN note TEXT DEFAULT ''"
            )

        monkeypatch.setattr(
            "repro.results.sqlite.SQLITE_SCHEMA_VERSION", SQLITE_SCHEMA_VERSION + 1
        )
        monkeypatch.setitem(
            SqliteStore.MIGRATIONS, SQLITE_SCHEMA_VERSION, migrate
        )
        migrated = SqliteStore(path)
        assert list(migrated) == results[:2]
        assert migrated.schema_version() == SQLITE_SCHEMA_VERSION + 1
        assert steps == [SQLITE_SCHEMA_VERSION]
        migrated.close()
        # Reopening finds the stored version current: no second walk.
        again = SqliteStore(path)
        assert list(again) == results[:2]
        assert steps == [SQLITE_SCHEMA_VERSION]
