"""Splay tree: structure, operations, amortized behaviour, properties."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures.splay_tree import SplayTree
from repro.errors import ReproError


class TestConstruction:
    def test_balanced_build(self):
        tree = SplayTree(range(1, 16))
        assert tree.height() <= 3  # 15 keys fit in a height-3 balanced BST

    def test_empty(self):
        tree = SplayTree([])
        assert len(tree) == 0
        assert tree.height() == -1
        assert list(tree.keys()) == []

    def test_single(self):
        tree = SplayTree([42])
        assert 42 in tree
        assert tree.depth_of(42) == 0

    def test_duplicate_rejected(self):
        with pytest.raises(ReproError):
            SplayTree([1, 2, 2])

    def test_unordered_input(self):
        tree = SplayTree([5, 1, 3, 2, 4])
        assert list(tree.keys()) == [1, 2, 3, 4, 5]

    def test_arbitrary_keys(self):
        # data structure: keys need not be contiguous 1..n
        tree = SplayTree([-10, 0, 7, 1000])
        assert list(tree.keys()) == [-10, 0, 7, 1000]
        tree.validate()


class TestAccess:
    def test_access_moves_to_root(self):
        tree = SplayTree(range(1, 32))
        tree.access(7)
        assert tree.depth_of(7) == 0

    def test_access_cost_is_depth_plus_one(self):
        tree = SplayTree(range(1, 32))
        depth = tree.depth_of(13)
        assert tree.access(13).cost == depth + 1

    def test_missing_key_raises(self):
        tree = SplayTree(range(1, 8))
        with pytest.raises(ReproError):
            tree.access(99)

    def test_repeated_access_costs_one(self):
        tree = SplayTree(range(1, 64))
        tree.access(50)
        assert tree.access(50).cost == 1

    def test_search_property_preserved(self):
        tree = SplayTree(range(1, 64))
        rng = random.Random(7)
        for _ in range(200):
            tree.access(rng.randint(1, 63))
            tree.validate()

    def test_zig_zig_and_zig_zag_hit(self):
        # a path tree exercises zig-zig; alternating, zig-zag
        tree = SplayTree(range(1, 16))
        for key in (1, 15, 8, 2, 14):
            tree.access(key)
            tree.validate()
        assert sorted(tree.keys()) == list(range(1, 16))

    def test_stats_accumulate(self):
        tree = SplayTree(range(1, 16))
        tree.access(3)
        tree.access(9)
        assert tree.accesses == 2
        assert tree.total_cost >= 2
        tree.reset_stats()
        assert tree.accesses == 0 and tree.total_cost == 0


class TestSemiSplay:
    def test_access_reduces_depth(self):
        tree = SplayTree(range(1, 64), semi=True)
        deep = max(range(1, 64), key=tree.depth_of)
        before = tree.depth_of(deep)
        tree.access(deep)
        assert tree.depth_of(deep) < before

    def test_path_halving_effect(self):
        # semi-splay roughly halves the depth instead of zeroing it
        tree = SplayTree(range(1, 256), semi=True)
        tree2 = SplayTree(range(1, 256), semi=False)
        deep = max(range(1, 256), key=tree.depth_of)
        tree.access(deep)
        tree2.access(deep)
        assert tree2.depth_of(deep) == 0
        assert 0 <= tree.depth_of(deep) <= tree2.height()

    def test_validates_under_random_accesses(self):
        tree = SplayTree(range(1, 40), semi=True)
        rng = random.Random(3)
        for _ in range(150):
            tree.access(rng.randint(1, 39))
        tree.validate()

    def test_fewer_rotations_than_full(self):
        keys = list(range(1, 128))
        full = SplayTree(keys)
        semi = SplayTree(keys, semi=True)
        rng = random.Random(11)
        sequence = [rng.randint(1, 127) for _ in range(400)]
        for key in sequence:
            full.access(key)
            semi.access(key)
        assert semi.total_rotations < full.total_rotations


class TestInsertDelete:
    def test_insert(self):
        tree = SplayTree([2, 4, 6])
        tree.insert(3)
        assert list(tree.keys()) == [2, 3, 4, 6]
        assert tree.depth_of(3) == 0  # splayed to root
        tree.validate()

    def test_insert_into_empty(self):
        tree = SplayTree([])
        tree.insert(5)
        assert list(tree.keys()) == [5]

    def test_insert_duplicate(self):
        tree = SplayTree([1, 2])
        with pytest.raises(ReproError):
            tree.insert(2)

    def test_delete(self):
        tree = SplayTree(range(1, 16))
        tree.delete(8)
        assert 8 not in tree
        assert list(tree.keys()) == [k for k in range(1, 16) if k != 8]
        tree.validate()

    def test_delete_root_with_one_side(self):
        tree = SplayTree([1, 2])
        tree.access(1)
        tree.delete(1)
        assert list(tree.keys()) == [2]
        tree.delete(2)
        assert len(tree) == 0

    def test_delete_missing(self):
        tree = SplayTree([1])
        with pytest.raises(ReproError):
            tree.delete(9)

    def test_interleaved_ops(self):
        tree = SplayTree([])
        rng = random.Random(5)
        present: set[int] = set()
        for _ in range(300):
            key = rng.randint(1, 60)
            if key in present and rng.random() < 0.4:
                tree.delete(key)
                present.discard(key)
            elif key not in present:
                tree.insert(key)
                present.add(key)
        assert set(tree.keys()) == present
        tree.validate()


class TestAmortizedBehaviour:
    def test_static_optimality_shape_on_zipf(self):
        """Hot keys end up cheap: zipf access cost beats the balanced depth."""
        n = 255
        keys = list(range(1, n + 1))
        rng = random.Random(17)
        weights = [1.0 / (i + 1) ** 1.5 for i in range(n)]
        total_w = sum(weights)
        seq = rng.choices(keys, weights=weights, k=4000)
        tree = SplayTree(keys)
        for key in seq:
            tree.access(key)
        avg = tree.total_cost / tree.accesses
        entropy = -sum((w / total_w) * math.log2(w / total_w) for w in weights)
        # splay average should be within a small constant of the entropy
        assert avg <= 3 * entropy + 3

    def test_sequential_scan_is_linear_total(self):
        """The sequential access theorem shape: a scan costs O(n) total."""
        n = 512
        tree = SplayTree(range(1, n + 1))
        total = sum(tree.access(key).cost for key in range(1, n + 1))
        assert total <= 8 * n  # generous constant; Θ(n log n) would be ≥ n·9


@given(
    keys=st.sets(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_random_access_sequences(keys, data):
    """Any access sequence keeps the BST valid and the key set intact."""
    key_list = sorted(keys)
    tree = SplayTree(key_list)
    count = data.draw(st.integers(min_value=1, max_value=30))
    for _ in range(count):
        key = data.draw(st.sampled_from(key_list))
        result = tree.access(key)
        assert result.cost >= 1
        assert tree.depth_of(key) == 0
    tree.validate()
    assert list(tree.keys()) == key_list
