"""Sherk-style k-ary splay tree: invariants, access behaviour, and the
key-migration demonstration that motivates the paper's network rotations."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures.sherk import SherkKarySplayTree
from repro.errors import ReproError


class TestConstruction:
    @pytest.mark.parametrize("k", [2, 3, 4, 7])
    def test_build_valid(self, k):
        tree = SherkKarySplayTree(range(1, 100), k)
        tree.validate()
        assert list(tree.keys()) == list(range(1, 100))

    def test_small_fits_single_node(self):
        tree = SherkKarySplayTree([5, 10], 4)
        assert tree.node_count() == 1
        assert tree.height() == 0

    def test_height_shrinks_with_k(self):
        n = 200
        h2 = SherkKarySplayTree(range(n), 2).height()
        h5 = SherkKarySplayTree(range(n), 5).height()
        assert h5 < h2

    def test_bad_k(self):
        with pytest.raises(ReproError):
            SherkKarySplayTree([1, 2], 1)

    def test_bad_policy(self):
        with pytest.raises(ReproError):
            SherkKarySplayTree([1, 2], 3, window_policy="diagonal")

    def test_duplicate_keys(self):
        with pytest.raises(ReproError):
            SherkKarySplayTree([1, 1], 3)

    def test_empty(self):
        tree = SherkKarySplayTree([], 3)
        assert len(tree) == 0
        tree.validate()


class TestAccess:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_access_promotes_to_root(self, k):
        tree = SherkKarySplayTree(range(1, 200), k)
        tree.access(137)
        assert tree.depth_of(137) == 0
        tree.validate()

    def test_cost_is_depth_plus_one(self):
        tree = SherkKarySplayTree(range(1, 200), 3)
        d = tree.depth_of(42)
        assert tree.access(42).cost == d + 1

    def test_missing_key(self):
        tree = SherkKarySplayTree(range(10), 3)
        with pytest.raises(ReproError):
            tree.access(99)

    def test_repeat_access_costs_one(self):
        tree = SherkKarySplayTree(range(1, 100), 4)
        tree.access(60)
        assert tree.access(60).cost == 1

    @pytest.mark.parametrize("policy", ["center", "left", "right"])
    def test_policies_preserve_invariants(self, policy):
        tree = SherkKarySplayTree(range(1, 80), 4, window_policy=policy)
        rng = random.Random(9)
        for _ in range(120):
            tree.access(rng.randint(1, 79))
            tree.validate()

    def test_key_conservation_under_access_storm(self):
        tree = SherkKarySplayTree(range(1, 150), 5)
        rng = random.Random(4)
        for _ in range(300):
            tree.access(rng.randint(1, 149))
        assert list(tree.keys()) == list(range(1, 150))
        tree.validate()

    def test_node_count_bounded_by_keys(self):
        tree = SherkKarySplayTree(range(1, 100), 3)
        rng = random.Random(6)
        for _ in range(200):
            tree.access(rng.randint(1, 99))
            assert tree.node_count() <= len(tree)

    def test_hot_keys_get_cheap(self):
        tree = SherkKarySplayTree(range(1, 512), 4)
        hot = [7, 300, 450]
        for _ in range(30):
            for key in hot:
                tree.access(key)
        assert all(tree.depth_of(key) <= 2 for key in hot)


class TestKeyMigration:
    """The executable version of the paper's Section 1 argument."""

    def test_keys_migrate_between_nodes(self):
        tree = SherkKarySplayTree(range(1, 64), 3)
        before = tree.key_locations()
        rng = random.Random(12)
        for _ in range(50):
            tree.access(rng.randint(1, 63))
        after = tree.key_locations()
        moved = [key for key in before if before[key] != after.get(key)]
        # restructuring reassigned many keys to different physical nodes —
        # exactly why a key cannot be a rack's permanent address
        assert len(moved) > len(before) // 4

    def test_single_access_already_migrates(self):
        tree = SherkKarySplayTree(range(1, 64), 3)
        before = tree.key_locations()
        deepest = max(range(1, 64), key=tree.depth_of)
        tree.access(deepest)
        after = tree.key_locations()
        assert any(before[key] != after[key] for key in before)

    def test_network_rotations_do_not_migrate_identifiers(self):
        """Contrast: the paper's k-ary SplayNet keeps every identifier on
        its node across arbitrary serve sequences."""
        from repro.core.splaynet import KArySplayNet

        net = KArySplayNet(63, 3, initial="complete")
        ids_before = {node.nid for node in net.tree.root.iter_subtree()}
        rng = random.Random(12)
        for _ in range(50):
            u, v = rng.randint(1, 63), rng.randint(1, 63)
            if u != v:
                net.serve(u, v)
        ids_after = {node.nid for node in net.tree.root.iter_subtree()}
        assert ids_before == ids_after  # identifiers are permanent


@given(
    n=st.integers(min_value=2, max_value=80),
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_property_random_storm_preserves_invariants(n, k, seed):
    tree = SherkKarySplayTree(range(1, n + 1), k)
    rng = random.Random(seed)
    for _ in range(25):
        tree.access(rng.randint(1, n))
    tree.validate()
    assert list(tree.keys()) == list(range(1, n + 1))
