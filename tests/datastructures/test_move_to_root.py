"""Move-to-root: correctness plus the classic adversarial separation."""

from __future__ import annotations

import random

import pytest

from repro.datastructures.move_to_root import MoveToRootTree
from repro.datastructures.splay_tree import SplayTree
from repro.errors import ReproError


class TestBasics:
    def test_access_moves_to_root(self):
        tree = MoveToRootTree(range(1, 32))
        tree.access(20)
        assert tree.depth_of(20) == 0

    def test_valid_after_random_accesses(self):
        tree = MoveToRootTree(range(1, 40))
        rng = random.Random(2)
        for _ in range(200):
            tree.access(rng.randint(1, 39))
        tree.validate()
        assert list(tree.keys()) == list(range(1, 40))

    def test_missing_key(self):
        tree = MoveToRootTree([1, 2, 3])
        with pytest.raises(ReproError):
            tree.access(7)

    def test_cost_is_depth_plus_one(self):
        tree = MoveToRootTree(range(1, 32))
        d = tree.depth_of(9)
        assert tree.access(9).cost == d + 1

    def test_repeated_access_is_cheap(self):
        tree = MoveToRootTree(range(1, 64))
        tree.access(33)
        assert tree.access(33).cost == 1


class TestAdversarialSeparation:
    """Move-to-root lacks splaying's amortized guarantee; exhibit it."""

    def test_cyclic_scan_stays_expensive(self):
        # repeatedly scanning 1..n keeps move-to-root degenerate:
        # average cost Θ(n), while splaying pays O(log n) amortized.
        n = 128
        rounds = 4
        mtr = MoveToRootTree(range(1, n + 1))
        splay = SplayTree(range(1, n + 1))
        mtr_cost = splay_cost = 0
        for _ in range(rounds):
            for key in range(1, n + 1):
                mtr_cost += mtr.access(key).cost
                splay_cost += splay.access(key).cost
        # after warm-up the separation is decisive
        assert mtr_cost > 2 * splay_cost

    def test_scan_rounds_never_improve(self):
        # a full ascending scan degenerates move-to-root into a path, so
        # every subsequent round pays Θ(n²) again — no learning happens.
        n = 128
        mtr = MoveToRootTree(range(1, n + 1))
        first = sum(mtr.access(key).cost for key in range(1, n + 1))
        second = sum(mtr.access(key).cost for key in range(1, n + 1))
        third = sum(mtr.access(key).cost for key in range(1, n + 1))
        assert second > n * n / 4
        assert third > n * n / 4
        assert first > 0

        # splaying's sequential access behaviour: later rounds stay O(n)
        splay = SplayTree(range(1, n + 1))
        sum(splay.access(key).cost for key in range(1, n + 1))
        splay_round = sum(splay.access(key).cost for key in range(1, n + 1))
        assert splay_round < second / 4
