"""Benchmark harness configuration.

Every table/figure bench regenerates its experiment once (wrapped in
``benchmark.pedantic`` so pytest-benchmark reports the wall time), prints the
paper-style table, and writes it under ``benchmarks/output/`` for
EXPERIMENTS.md.  Scale is controlled by ``REPRO_SCALE``
(smoke | quick | paper; default quick).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.presets import get_scale

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_table(output_dir, scale):
    """Print a rendered table and persist it under benchmarks/output/."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (output_dir / f"{name}_{scale.name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
