"""Regenerates the Remark 10 / Remark 37 experiment.

The paper: "we found that our centroid k-ary search tree is indeed optimal
for all n less than 10³ when k is up to 10".  We verify the claim against
the Theorem 4 DP on a grid spanning that range.
"""

from conftest import run_once

from repro.experiments.report import render_remark10
from repro.experiments.tables import run_remark10


def test_remark10_centroid_optimality(benchmark, scale, record_table):
    if scale.name == "smoke":
        ns, ks = (10, 40, 90), (2, 3)
    elif scale.name == "paper":
        ns = tuple(range(10, 1000, 45))
        ks = tuple(range(2, 11))
    else:
        ns = (10, 25, 50, 100, 200, 400, 600, 999)
        ks = (2, 3, 4, 5, 7, 10)

    result = run_once(benchmark, lambda: run_remark10(ns=ns, ks=ks))
    record_table("remark10_centroid_optimality", render_remark10(result))

    assert result.all_optimal, f"centroid tree lost: {result.mismatches()}"
