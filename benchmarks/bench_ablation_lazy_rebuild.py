"""Ablation: fully-reactive splaying vs lazy threshold rebuilding.

The paper's introduction contrasts per-request self-adjustment (SplayNet
style) with the partially-reactive meta-algorithm of [13] that recomputes a
static demand-aware topology whenever accumulated routing cost crosses α.
This bench instantiates both over the same traces — the lazy variant uses
the paper's own Theorem 2 DP as its rebuild subroutine — and records the
trade-off (routing cost vs reconfiguration churn) across α.
"""

from conftest import run_once

from repro.core.splaynet import KArySplayNet
from repro.network.lazy import LazyRebuildNetwork
from repro.network.simulator import simulate
from repro.workloads.synthetic import permutation_trace, temporal_trace


def test_lazy_rebuild_ablation(benchmark, scale, record_table):
    n = 64
    m = min(scale.m, 10_000)
    alphas = (2_000, 10_000, 50_000)

    def run():
        rows = []
        for wname, trace in (
            ("permutation", permutation_trace(n, m, scale.seed)),
            ("temporal-0.5", temporal_trace(n, m, 0.5, scale.seed)),
        ):
            splay = simulate(KArySplayNet(n, 3), trace)
            rows.append((wname, "k-ary SplayNet", splay.total_routing,
                         splay.total_links_changed, 0))
            for alpha in alphas:
                net = LazyRebuildNetwork(n, 3, alpha=alpha)
                res = simulate(net, trace)
                rows.append(
                    (wname, f"lazy a={alpha}", res.total_routing,
                     res.total_links_changed, net.rebuilds)
                )
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Ablation — reactive splaying vs lazy optimal-rebuilds",
        f"{'workload':14} {'algorithm':18} {'routing':>9} {'links':>7} {'rebuilds':>9}",
    ]
    for wname, algo, routing, links, rebuilds in rows:
        lines.append(
            f"{wname:14} {algo:18} {routing:>9} {links:>7} {rebuilds:>9}"
        )
    record_table("ablation_lazy_rebuild", "\n".join(lines))

    # sanity: on a stable permutation demand the lazy net with moderate α
    # routes cheaply (every hot pair adjacent after one rebuild)
    perm_lazy = [r for r in rows if r[0] == "permutation" and "lazy" in r[1]]
    perm_splay = next(r for r in rows if r[0] == "permutation" and "SplayNet" in r[1])
    assert min(r[2] for r in perm_lazy) < perm_splay[2] * 1.2
