"""Ablation: k-splay (2 levels/step) vs the generalized d-node rotation.

Section 4.1 closes by sketching rotations over any d connected nodes.  This
bench compares serving disciplines that climb 2, 3 and 4 levels per
transformation: deeper rotations need fewer transformations per request but
spread routing elements more aggressively, which costs routing quality — an
empirical answer to why the paper builds on the 2-level discipline.
"""

from conftest import run_once

from repro.core.splaynet import KArySplayNet
from repro.network.simulator import simulate
from repro.workloads.synthetic import temporal_trace, uniform_trace

DEPTHS = (2, 3, 4)


def test_deep_splay_ablation(benchmark, scale, record_table):
    n = min(scale.temporal_n, 255)
    m = min(scale.m, 15_000)

    def run():
        rows = []
        for wname, trace in (
            ("uniform", uniform_trace(n, m, scale.seed)),
            ("temporal-0.75", temporal_trace(n, m, 0.75, scale.seed)),
        ):
            for k in (3, 6):
                cells = {}
                for depth in DEPTHS:
                    res = simulate(
                        KArySplayNet(n, k, splay_depth=depth), trace
                    )
                    cells[depth] = (res.total_routing, res.total_rotations)
                rows.append((wname, k, cells))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Ablation — levels climbed per transformation (routing / rotations)",
        f"{'workload':14} {'k':>3} "
        + "".join(f"{f'depth {d}':>22}" for d in DEPTHS),
    ]
    for wname, k, cells in rows:
        lines.append(
            f"{wname:14} {k:>3} "
            + "".join(
                f"{cells[d][0]:>12}/{cells[d][1]:<9}" for d in DEPTHS
            )
        )
        # deeper splays always perform fewer transformations
        assert cells[4][1] < cells[2][1]
    record_table("ablation_deep_splay", "\n".join(lines))
