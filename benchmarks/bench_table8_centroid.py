"""Regenerates the paper's Table 8 — the 3-SplayNet centroid case study.

Rendered under both cost conventions (see EXPERIMENTS.md): routing-only
(the Tables 1-7 convention) and routing + unit rotations (Section 5.1's
stated model, which reproduces the paper's winner pattern).
"""

from conftest import run_once

from repro.experiments.report import render_table8
from repro.experiments.tables import run_table8
from repro.network.cost import ROUTING_ONLY, UNIT_ROTATIONS


def test_table8_centroid(benchmark, scale, record_table):
    result = run_once(benchmark, lambda: run_table8(scale=scale))

    routing = render_table8(
        result,
        model=ROUTING_ONLY,
        title=f"Table 8 — routing cost only (scale={scale.name})",
    )
    rotations = render_table8(
        result,
        model=UNIT_ROTATIONS,
        title=f"Table 8 — routing + unit rotations (scale={scale.name})",
    )
    record_table("table8_centroid", routing + "\n\n" + rotations)

    # Paper shape assertions under the unit-rotation model (Table 8's
    # winner pattern): 3-SplayNet wins on the low-locality workloads and
    # loses on the high-locality ones.
    for workload in ("projector", "temporal-0.25", "temporal-0.5"):
        assert result.row(workload).ratio_splaynet(UNIT_ROTATIONS) > 0.95, workload
    for workload in ("temporal-0.9",):
        assert result.row(workload).ratio_splaynet(UNIT_ROTATIONS) < 1.0, workload
