"""Regenerates the paper's Table 6 (see DESIGN.md experiment index)."""

from _tablebench import kary_table_bench


def test_table6_temporal075(benchmark, scale, record_table):
    kary_table_bench(benchmark, scale, record_table, 6)
