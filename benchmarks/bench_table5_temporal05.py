"""Regenerates the paper's Table 5 (see DESIGN.md experiment index)."""

from _tablebench import kary_table_bench


def test_table5_temporal05(benchmark, scale, record_table):
    kary_table_bench(benchmark, scale, record_table, 5)
