"""Working-set bound vs measured k-ary splay-tree access cost.

The Access Lemma that powers Theorem 12 also yields the working-set
theorem; this bench probes whether the *k-ary* structure inherits the
shape: measured access cost should track Σ log₂(ws_t + 1) within a small
constant, across locality regimes, and the tracking should be *tighter*
on local traces (where the bound is the binding one).
"""

import random

from conftest import run_once

from repro.analysis.bounds import compare_with_bound, working_set_bound
from repro.core.splaynet import KArySplayNet


def _sequence(n: int, m: int, hot: int, seed: int) -> list[int]:
    """Accesses drawn from a rotating hot set of the given size."""
    rng = random.Random(seed)
    population = list(range(1, n + 1))
    out = []
    hot_set = rng.sample(population, hot)
    for t in range(m):
        if t % 500 == 499:  # rotate the working set occasionally
            hot_set = rng.sample(population, hot)
        out.append(hot_set[rng.randrange(hot)])
    return out


def test_working_set_tracking(benchmark, scale, record_table):
    n = 127 if scale.name == "smoke" else 511
    m = 2_000 if scale.name == "smoke" else 10_000
    regimes = (4, 16, 64, n)

    def run():
        rows = []
        for hot in regimes:
            accesses = _sequence(n, m, hot, seed=scale.seed + hot)
            net = KArySplayNet(n, 3, initial="complete")
            # access cost = depth + 1 (the splay-tree convention); the
            # network's ServeResult reports the pre-splay routing distance
            measured = sum(
                net.access(key).routing_cost + 1 for key in accesses
            )
            comparison = compare_with_bound(
                measured, working_set_bound(accesses), n=n, m=m
            )
            rows.append((hot, comparison))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        f"Working-set tracking — 3-ary splay accesses, n={n}, m={m}",
        f"{'hot-set':>8} {'measured':>10} {'ws bound':>10} {'ratio':>7}",
    ]
    for hot, comparison in rows:
        lines.append(
            f"{hot:>8} {comparison.measured:>10.0f} {comparison.bound:>10.0f}"
            f" {comparison.ratio:>7.3f}"
        )
        assert comparison.within(3.0), f"hot={hot}: {comparison}"
    # smaller working sets must be absolutely cheaper
    assert rows[0][1].measured < rows[-1][1].measured
    record_table("working_set", "\n".join(lines))
