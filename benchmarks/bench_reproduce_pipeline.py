"""Reproduction-pipeline benchmark: end-to-end ``run_all`` per tree engine.

Run as a script to emit the machine-readable record that starts the
reproduction-pipeline perf trajectory (best-of-N CPU time, object vs flat,
with a cross-engine table-summary equality check):

    PYTHONPATH=src python benchmarks/bench_reproduce_pipeline.py \
        --output benchmarks/results/BENCH_reproduce_pipeline.json

The default table subset excludes Table 3 and Table 8: at quick scale both
include the n=1024 Facebook workload, whose optimal-tree DP is
engine-independent and would dilute the serve-loop signal (the full-grid
time is the reproduce CLI's own business).  Pass ``--tables``/
``--table8`` to override.  The same measurement is exposed as
``python -m repro bench-pipeline``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.pipelinebench import (
    DEFAULT_REPEATS,
    DEFAULT_TABLES,
    reproduce_pipeline_benchmark,
    write_pipeline_record,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick",
                        choices=("smoke", "quick", "paper"))
    parser.add_argument("--tables", type=int, nargs="*", default=None)
    parser.add_argument("--table8", action="store_true",
                        help="include Table 8 (n=1024 DP at quick scale)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--output", default=None, help="also write JSON here")
    args = parser.parse_args(argv)

    record = reproduce_pipeline_benchmark(
        args.scale,
        tables=tuple(args.tables) if args.tables is not None else DEFAULT_TABLES,
        include_table8=args.table8,
        repeats=args.repeats,
        verbose=True,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_pipeline_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0 if record.get("summaries_match", True) else 1


if __name__ == "__main__":
    sys.exit(main())
