"""Self-adjusting *data structures* under root accesses (Theorem 12 context).

Compares, on a Zipf access sequence: the binary splay tree [24], semi-
splaying, Allen–Munro move-to-root, and the Sherk-style k-ary splay tree
with migrating keys [23].  Expected shape:

* splay ≈ semi-splay ≤ move-to-root (move-to-root lacks the amortized
  guarantee but is fine on i.i.d. skew);
* the k-ary Sherk tree beats the binary splay tree on search cost (shorter
  trees), mirroring Tables 1-7's "higher k ⇒ lower routing cost" for the
  network setting.
"""

import random

from conftest import run_once

from repro.datastructures.move_to_root import MoveToRootTree
from repro.datastructures.sherk import SherkKarySplayTree
from repro.datastructures.splay_tree import SplayTree


def _zipf_sequence(n: int, m: int, alpha: float, seed: int) -> list[int]:
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** alpha for i in range(n)]
    return rng.choices(range(1, n + 1), weights=weights, k=m)


def test_datastructure_baselines(benchmark, scale, record_table):
    n = 511 if scale.name != "smoke" else 127
    m = 20_000 if scale.name != "smoke" else 2_000
    sequence = _zipf_sequence(n, m, alpha=1.2, seed=scale.seed)
    keys = list(range(1, n + 1))

    def run():
        structures = {
            "splay": SplayTree(keys),
            "semi-splay": SplayTree(keys, semi=True),
            "move-to-root": MoveToRootTree(keys),
            "sherk k=4": SherkKarySplayTree(keys, 4),
            "sherk k=8": SherkKarySplayTree(keys, 8),
        }
        rows = []
        for name, structure in structures.items():
            for key in sequence:
                structure.access(key)
            rows.append(
                (
                    name,
                    structure.total_cost / structure.accesses,
                    structure.total_rotations,
                )
            )
        return rows

    rows = run_once(benchmark, run)
    costs = {name: avg for name, avg, _ in rows}

    lines = [
        f"Self-adjusting data structures — zipf(1.2) root accesses, n={n}, m={m}",
        f"{'structure':14} {'avg access cost':>16} {'rotations':>12}",
    ]
    for name, avg, rotations in rows:
        lines.append(f"{name:14} {avg:>16.3f} {rotations:>12d}")

    # shape assertions
    assert costs["sherk k=4"] < costs["splay"]      # higher arity, shorter paths
    assert costs["sherk k=8"] < costs["sherk k=4"]
    assert costs["splay"] < 2.0 * costs["semi-splay"] + 1.0  # same ballpark
    record_table("datastructure_baselines", "\n".join(lines))
