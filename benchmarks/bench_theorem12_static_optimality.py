"""Regenerates the Theorem 12 check: k-ary splay-tree static optimality.

Theorem 12: serving search requests from the root with k-semi-splay/k-splay
costs ``O(m + Σ_x n_x log(m / n_x))``.  The bench runs skewed access
sequences for several k and records the measured-cost-to-bound ratio, which
must stay below a small constant independent of skew and arity.
"""

import numpy as np

from conftest import run_once

from repro.core.splaynet import KArySplayNet
from repro.workloads.synthetic import zipf_trace


def test_theorem12_static_optimality(benchmark, scale, record_table):
    n = 128 if scale.name != "smoke" else 32
    m = min(scale.m, 10_000)
    alphas = (0.6, 1.0, 1.5, 2.5)
    ks = (2, 4, 8) if scale.name != "smoke" else (2, 3)

    def run():
        rows = []
        for alpha in alphas:
            accesses = zipf_trace(n, m, alpha, seed=scale.seed).targets
            _, counts = np.unique(accesses, return_counts=True)
            bound = m + float((counts * np.log2(m / counts)).sum())
            for k in ks:
                net = KArySplayNet(n, k)
                total = sum(
                    net.access(int(x)).routing_cost for x in accesses
                )
                rows.append((alpha, k, total, bound, total / bound))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Theorem 12 — k-ary splay tree vs static-optimality bound",
        f"{'zipf a':>7} {'k':>3} {'cost':>10} {'bound':>12} {'ratio':>7}",
    ]
    for alpha, k, total, bound, ratio in rows:
        lines.append(f"{alpha:>7.1f} {k:>3} {total:>10} {bound:>12.0f} {ratio:>7.3f}")
        assert ratio <= 3.0, (alpha, k)
    record_table("theorem12_static_optimality", "\n".join(lines))
