"""Regenerates the paper's Table 1 (see DESIGN.md experiment index)."""

from _tablebench import kary_table_bench


def test_table1_hpc(benchmark, scale, record_table):
    kary_table_bench(benchmark, scale, record_table, 1)
