"""The Avin-et-al. complexity map of all eight evaluation workloads.

Places each workload (plus two mixture probes) on the (spatial, temporal)
complexity plane and asserts that every stand-in trace lands in the regime
DESIGN.md's substitution table claims for it — the quantitative audit
behind the "why the substitution preserves behaviour" column.
"""

from conftest import run_once

from repro.analysis.complexity import complexity_report
from repro.experiments.presets import WORKLOADS, make_workload
from repro.workloads.mixtures import elephant_mice_trace, markov_modulated_trace


def test_complexity_map(benchmark, scale, record_table):
    workloads = WORKLOADS if scale.name != "smoke" else (
        "uniform", "hpc", "temporal-0.9"
    )

    def run():
        rows = []
        for name in workloads:
            trace = make_workload(name, scale)
            if trace.n > 2048:
                trace = trace.head(min(trace.m, 30_000))
            rows.append((name, complexity_report(trace)))
        rows.append(
            (
                "elephant-mice",
                complexity_report(
                    elephant_mice_trace(100, scale.m, seed=scale.seed)
                ),
            )
        )
        rows.append(
            (
                "markov-mod",
                complexity_report(
                    markov_modulated_trace(100, scale.m, seed=scale.seed)
                ),
            )
        )
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Complexity map — spatial / temporal / burst-recurrence / LZ",
        f"{'workload':16} {'spatial':>8} {'temporal':>9} {'recur':>7}"
        f" {'lz':>6}  quadrant",
    ]
    by_name = {}
    for name, report in rows:
        by_name[name] = report
        lines.append(
            f"{name:16} {report.spatial:>8.3f} {report.temporal:>9.3f}"
            f" {report.recurrence:>7.3f} {report.lz:>6.3f}  {report.quadrant}"
        )

    # the substitution audit (full scale only; smoke skips absent workloads)
    assert by_name["uniform"].temporal > 0.95
    assert by_name["uniform"].spatial > 0.9
    if "temporal-0.9" in by_name:
        assert by_name["temporal-0.9"].locality > 0.8
    if "hpc" in by_name:
        assert by_name["hpc"].locality > 0.2  # bursty phases
    if "projector" in by_name:
        assert by_name["projector"].spatial < 0.65  # elephants
    if "facebook" in by_name:
        assert by_name["facebook"].locality < 0.2  # wide, low locality
    assert by_name["elephant-mice"].spatial < by_name["uniform"].spatial

    record_table("complexity_map", "\n".join(lines))
