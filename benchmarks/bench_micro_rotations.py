"""Micro-benchmarks: rotation and serve throughput of the core structures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import build_random_tree
from repro.core.rotations import k_semi_splay, k_splay
from repro.core.splaynet import KArySplayNet
from repro.network.simulator import simulate
from repro.splaynet.splaynet import SplayNet
from repro.workloads.synthetic import uniform_trace


@pytest.mark.parametrize("k", [2, 4, 10])
def test_k_splay_throughput(benchmark, k):
    """Single k-splay operations on a rotating random tree."""
    tree = build_random_tree(256, k, seed=k)
    rng = np.random.default_rng(1)
    targets = rng.integers(1, 257, size=4096).tolist()
    state = {"i": 0}

    def rotate_once():
        for _ in range(64):
            nid = targets[state["i"] % 4096]
            state["i"] += 1
            node = tree.node(nid)
            if node.parent is None:
                continue
            if node.parent.parent is None:
                outcome = k_semi_splay(node)
            else:
                outcome = k_splay(node)
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)

    benchmark(rotate_once)
    tree.validate()


@pytest.mark.parametrize("k", [2, 4, 10])
def test_kary_splaynet_serve_throughput(benchmark, k):
    net = KArySplayNet(256, k)
    trace = uniform_trace(256, 2000, seed=2)
    pairs = list(trace.pairs())
    state = {"i": 0}

    def serve_batch():
        for _ in range(200):
            u, v = pairs[state["i"] % 2000]
            state["i"] += 1
            net.serve(u, v)

    benchmark(serve_batch)
    net.validate()


def test_classic_splaynet_serve_throughput(benchmark):
    net = SplayNet(256)
    pairs = list(uniform_trace(256, 2000, seed=3).pairs())
    state = {"i": 0}

    def serve_batch():
        for _ in range(200):
            u, v = pairs[state["i"] % 2000]
            state["i"] += 1
            net.serve(u, v)

    benchmark(serve_batch)
    net.validate()


def test_full_simulation_throughput(benchmark):
    """End-to-end simulator overhead on a mid-size run."""
    trace = uniform_trace(128, 3000, seed=4)

    def run():
        return simulate(KArySplayNet(128, 4), trace)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_routing > 0
