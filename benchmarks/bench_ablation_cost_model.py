"""Ablation: cost-model sensitivity of the Table 8 verdicts.

EXPERIMENTS.md documents that the paper's Table 8 winner pattern emerges
under the §5.1 unit-rotation model while pure routing cost leaves 3-SplayNet
and SplayNet near parity.  This bench quantifies that flip on two opposed
workloads.
"""

from conftest import run_once

from repro.core.centroid_splaynet import CentroidSplayNet
from repro.network.cost import CostModel
from repro.network.simulator import simulate
from repro.splaynet.splaynet import SplayNet
from repro.workloads.datacenter import projector_trace
from repro.workloads.synthetic import temporal_trace


def test_cost_model_ablation(benchmark, scale, record_table):
    n = 100
    m = min(scale.m, 20_000)
    models = [
        ("routing", CostModel()),
        ("r+0.5rot", CostModel(rotation_cost=0.5)),
        ("r+1rot", CostModel(rotation_cost=1.0)),
        ("links", CostModel(routing_weight=1.0, link_cost=1.0)),
    ]

    def run():
        rows = []
        for wname, trace in (
            ("projector", projector_trace(n, m, scale.seed)),
            ("temporal-0.9", temporal_trace(n, m, 0.9, scale.seed)),
        ):
            c3 = simulate(CentroidSplayNet(n, 2), trace)
            sp = simulate(SplayNet(n), trace)
            rows.append(
                (
                    wname,
                    {
                        name: sp.total_cost(model) / c3.total_cost(model)
                        for name, model in models
                    },
                )
            )
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Ablation — SplayNet/3-SplayNet ratio under different cost models",
        f"{'workload':14} " + "".join(f"{name:>10}" for name, _ in models),
    ]
    for wname, ratios in rows:
        lines.append(
            f"{wname:14} " + "".join(f"{ratios[name]:>9.3f}x" for name, _ in models)
        )
    record_table("ablation_cost_model", "\n".join(lines))

    # high locality favours plain SplayNet under every model
    hot = dict(rows)["temporal-0.9"]
    assert all(ratio < 1.0 for ratio in hot.values())
