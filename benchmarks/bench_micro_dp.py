"""Micro-benchmarks: offline algorithm scaling (Theorems 2, 4, 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.centroid import build_centroid_tree
from repro.optimal.general import optimal_static_tree
from repro.optimal.uniform import optimal_uniform_cost
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import zipf_trace


@pytest.mark.parametrize("n,k", [(64, 2), (128, 3), (255, 5)])
def test_optimal_tree_dp(benchmark, n, k):
    """Theorem 2: O(n³k) DP + reconstruction."""
    trace = zipf_trace(n, 20 * n, 1.2, seed=n)
    demand = DemandMatrix.from_trace(trace)

    result = benchmark.pedantic(
        lambda: optimal_static_tree(demand, k), rounds=1, iterations=1
    )
    assert result.cost > 0


@pytest.mark.parametrize("n", [255, 1023, 4095])
def test_uniform_dp(benchmark, n):
    """Theorem 4: O(n²k) uniform DP."""
    result = benchmark.pedantic(
        lambda: optimal_uniform_cost(n, 5), rounds=1, iterations=1
    )
    assert result > 0


@pytest.mark.parametrize("n", [1000, 10_000, 100_000])
def test_centroid_construction_linear(benchmark, n):
    """Theorem 8: the O(n) centroid construction scales linearly."""
    tree = benchmark.pedantic(
        lambda: build_centroid_tree(n, 3, validate=False), rounds=1, iterations=1
    )
    assert tree.n == n
