"""Engine hot-path benchmark: object vs. flat vs. native serve throughput.

Run as a script to emit a machine-readable JSON record (the acceptance
gate for the flat engine is >= 3x serve-loop throughput at n=1024, k=4 on
a Zipf trace; for the native kernel it is >= 5x over the object engine):

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py \
        --output benchmarks/results/BENCH_engine_hotpath.json

Engines are interleaved across --repeats rounds and both wall-clock and
CPU time are recorded (best-of kept; speedups are CPU-based).  The same
measurement is exposed as ``python -m repro bench-hotpath`` and
smoke-tested (at toy scale) in the tier-1 suite; this script is the
full-scale record keeper for the perf trajectory under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.engine import ENGINES
from repro.experiments.hotpath import hotpath_benchmark, write_hotpath_record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--nodes", type=int, default=1024)
    parser.add_argument("-k", type=int, default=4)
    parser.add_argument("-m", "--requests", type=int, default=100_000)
    parser.add_argument(
        "--network", choices=("ksplaynet", "centroid-splaynet"),
        default="ksplaynet",
    )
    parser.add_argument("--zipf-alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--engines", nargs="+", choices=ENGINES, default=None,
        help="engine subset to measure (default: every available engine)",
    )
    parser.add_argument("--output", default=None, help="also write JSON here")
    args = parser.parse_args(argv)

    result = hotpath_benchmark(
        n=args.nodes,
        k=args.k,
        m=args.requests,
        network=args.network,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        repeats=args.repeats,
        engines=args.engines,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.output:
        write_hotpath_record(result, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0 if result.get("totals_match", True) else 1


if __name__ == "__main__":
    sys.exit(main())
