"""Regenerates the paper's Table 4 (see DESIGN.md experiment index)."""

from _tablebench import kary_table_bench


def test_table4_temporal025(benchmark, scale, record_table):
    kary_table_bench(benchmark, scale, record_table, 4)
