"""Ingress gateway benchmark: socket serving vs. the in-process farm.

Run as a script to emit a machine-readable JSON record (the acceptance
gates are exact cost totals across every path — clean sessions, direct
farm, both socket legs — and micro-batched socket dispatch >= 2x the
throughput of forced batch-size-1 dispatch):

    PYTHONPATH=src python benchmarks/bench_ingress.py \
        --output benchmarks/results/BENCH_ingress.json

One fixed keyed Zipf stream is served three ways: through an in-process
ServeFarm (no socket), through the async ingress gateway over a UNIX
socket with its micro-batching window enabled, and through the same
gateway with batch_max=1 (every request its own farm pipe round trip).
Latency p50/p99 are client-observed wall times from the constant-memory
histogram.  The same measurement is exposed as
``python -m repro bench-ingress`` and smoke-tested at toy scale in the
tier-1 suite; this script is the full-scale record keeper for the perf
trajectory under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.ingressbench import (
    ingress_benchmark,
    write_ingress_record,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--nodes", type=int, default=256)
    parser.add_argument("-k", type=int, default=4)
    parser.add_argument("-m", "--requests", type=int, default=4_000)
    parser.add_argument("--keys", type=int, default=8)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--zipf-alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch-window", type=float, default=0.002)
    parser.add_argument("--batch-max", type=int, default=256)
    parser.add_argument("--concurrency", type=int, default=256)
    parser.add_argument("--output", default=None, help="also write JSON here")
    args = parser.parse_args(argv)

    record = ingress_benchmark(
        n=args.nodes,
        k=args.k,
        m=args.requests,
        keys=args.keys,
        shards=args.shards,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        concurrency=args.concurrency,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_ingress_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if record.get("totals_match") is False else 0


if __name__ == "__main__":
    sys.exit(main())
