"""Regenerates the paper's Table 7 (see DESIGN.md experiment index)."""

from _tablebench import kary_table_bench


def test_table7_temporal09(benchmark, scale, record_table):
    kary_table_bench(benchmark, scale, record_table, 7)
