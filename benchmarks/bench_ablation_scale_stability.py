"""Ablation: are the paper's ratio shapes stable in m and n?

DESIGN.md's substitution argument rests on ratio shapes being insensitive to
the run scale (we run smaller m/n than the paper).  This bench sweeps m and
n on one synthetic workload and records how the k=8-vs-k=2 and
SplayNet-vs-full-tree ratios drift.
"""

from conftest import run_once

from repro.analysis.distance import trace_static_cost
from repro.core.builders import build_complete_tree
from repro.core.splaynet import KArySplayNet
from repro.network.simulator import simulate
from repro.workloads.synthetic import temporal_trace


def test_scale_stability(benchmark, scale, record_table):
    sweeps = [(63, 4000), (127, 8000), (255, 16000)]
    if scale.name == "smoke":
        sweeps = sweeps[:2]

    def run():
        rows = []
        for n, m in sweeps:
            trace = temporal_trace(n, m, 0.5, seed=scale.seed)
            c2 = simulate(KArySplayNet(n, 2), trace).total_routing
            c8 = simulate(KArySplayNet(n, 8), trace).total_routing
            full2 = trace_static_cost(build_complete_tree(n, 2), trace)
            rows.append((n, m, c8 / c2, c2 / full2))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Ablation — ratio stability across run scale (temporal p=0.5)",
        f"{'n':>6} {'m':>8} {'k8/k2':>8} {'k2/full':>9}",
    ]
    ratios_k = [r for _, _, r, _ in rows]
    ratios_f = [r for _, _, _, r in rows]
    for n, m, rk, rf in rows:
        lines.append(f"{n:>6} {m:>8} {rk:>8.3f} {rf:>9.3f}")
    # shape stability: the improvement direction never flips and the
    # magnitude drifts by less than 0.15 across a 4x scale change
    assert all(r < 1.0 for r in ratios_k)
    assert all(r < 1.0 for r in ratios_f)
    assert max(ratios_k) - min(ratios_k) < 0.15
    record_table("ablation_scale_stability", "\n".join(lines))
