"""Ablation: local greedy routing vs true tree paths after rotation storms.

Definition 1 claims local routing; Remark 11 forces self-adjusting trees
out of the routing-based class, and DESIGN.md documents that greedy packets
can then backtrack.  This bench puts numbers on it: stretch stays 1.000 on
every freshly built tree and within a few percent on average after storms,
with the worst hop count safely under the 2n delivery bound.
"""

from conftest import run_once

from repro.analysis.stretch import measure_stretch, stretch_after_storm
from repro.core.builders import build_complete_tree


def test_local_routing_stretch(benchmark, scale, record_table):
    ks = (2, 3, 5) if scale.name == "smoke" else (2, 3, 4, 6, 8)
    n = 64 if scale.name == "smoke" else 200
    serves = 200 if scale.name == "smoke" else 1_500
    sample = 200 if scale.name == "smoke" else 1_000

    def run():
        rows = []
        for k in ks:
            fresh = measure_stretch(
                build_complete_tree(n, k), sample=sample, seed=k
            )
            stormed = stretch_after_storm(
                n, k, serves=serves, sample=sample, seed=k
            )
            rows.append((k, fresh, stormed))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        f"Local-routing stretch — n={n}, {serves} serves, {sample} sampled pairs",
        f"{'k':>3} {'fresh mean':>11} {'storm mean':>11} {'storm max':>10}"
        f" {'backtracked':>12} {'max hops':>9}",
    ]
    for k, fresh, stormed in rows:
        lines.append(
            f"{k:>3} {fresh.mean_stretch:>11.4f} {stormed.mean_stretch:>11.4f}"
            f" {stormed.max_stretch:>10.3f} {stormed.backtrack_fraction:>11.1%}"
            f" {stormed.max_hops:>9d}"
        )
        assert fresh.max_stretch == 1.0       # exact on built trees
        assert stormed.max_hops <= 2 * n       # delivery bound
        assert stormed.mean_stretch < 1.5      # near-exact on average
    record_table("local_routing_stretch", "\n".join(lines))
