"""Optimal-tree DP subsystem bench (Theorem 2 at pipeline scale).

Pytest-benchmark frontend over :mod:`repro.experiments.optimalbench` — the
same measurement ``python -m repro bench-optimal`` records into
``benchmarks/results/BENCH_optimal_dp.json``: the legacy float64 forward
pass vs. the context-sharing int64 subsystem across the arity sweep, and
the result cache's cold/warm campaign trajectory.  Scale via
``REPRO_SCALE`` (the DP-dominated n=1024 tables need quick scale).
"""

from __future__ import annotations

import json

from repro.experiments.optimalbench import optimal_dp_benchmark


def test_optimal_dp_subsystem(benchmark, scale, record_table):
    record = benchmark.pedantic(
        lambda: optimal_dp_benchmark(scale.name), rounds=1, iterations=1
    )
    assert record["dp"]["costs_match"]
    assert record["cache"]["summaries_match"]
    assert record["cache"]["skip_fraction"] == 1.0
    record_table(
        "bench_optimal_dp", json.dumps(record, indent=2, sort_keys=True)
    )
