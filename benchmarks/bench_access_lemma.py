"""Theorem 12's Access Lemma, audited at benchmark scale.

For each arity, runs hundreds of audited accesses on a k-ary SplayNet and
reports the worst margin of ``amortized ≤ 3(r(root) − r(x)) + 1``.  A
non-negative worst margin across every k is the empirical content of the
theorem's proof sketch (the potential argument transfers to the k-ary
rotations); the bench also records how tight the bound runs.
"""

import random

from conftest import run_once

from repro.analysis.potential import audit_splaynet_accesses, worst_margin
from repro.core.splaynet import KArySplayNet


def test_access_lemma_margins(benchmark, scale, record_table):
    ks = scale.ks
    n = 127 if scale.name != "smoke" else 31
    accesses = 400 if scale.name != "smoke" else 60

    def run():
        rows = []
        for k in ks:
            rng = random.Random(k * 1000 + scale.seed)
            net = KArySplayNet(n, k, initial="complete")
            keys = [rng.randint(1, n) for _ in range(accesses)]
            audits = audit_splaynet_accesses(net, keys)
            rows.append(
                (
                    k,
                    worst_margin(audits),
                    sum(a.margin for a in audits) / len(audits),
                    sum(not a.holds for a in audits),
                )
            )
        return rows

    rows = run_once(benchmark, run)

    lines = [
        f"Access Lemma audit — n={n}, {accesses} random accesses per arity",
        f"{'k':>3} {'worst margin':>13} {'mean margin':>12} {'violations':>11}",
    ]
    for k, worst, mean, violations in rows:
        lines.append(f"{k:>3} {worst:>13.3f} {mean:>12.3f} {violations:>11d}")
        assert violations == 0, f"Access Lemma violated at k={k}"
        assert worst >= -1e-9
    record_table("access_lemma", "\n".join(lines))
