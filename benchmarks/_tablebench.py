"""Shared implementation for the per-table benchmark files."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.report import render_kary_table
from repro.experiments.tables import TABLE_WORKLOAD, run_kary_table


def kary_table_bench(benchmark, scale, record_table, table_number: int):
    """Regenerate one of the paper's Tables 1-7 and record the rendering."""
    workload = TABLE_WORKLOAD[table_number]

    result = run_once(benchmark, lambda: run_kary_table(workload, scale=scale))

    text = render_kary_table(
        result,
        title=(
            f"Table {table_number} — k-ary SplayNet on {workload} "
            f"(n={result.n}, m={result.m}, scale={scale.name})"
        ),
    )
    record_table(f"table{table_number}_{workload}", text)

    # Paper shape assertions (direction only; see DESIGN.md §3).
    ks = sorted(result.ks)
    assert result.splaynet_ratio(ks[-1]) < 1.0, "cost must fall with k"
    monotone_violations = sum(
        1
        for a, b in zip(ks, ks[1:])
        if result.splaynet[b] > result.splaynet[a]
    )
    assert monotone_violations <= 2, "cost-vs-k trend must be near-monotone"
    return result
