"""Ablation: the reactive spectrum under different reconfiguration prices.

Sweeps the adjustment policy (fully reactive / thresholded / probabilistic
/ frozen) on a high-locality trace and evaluates the total cost under three
rotation prices.  The expected crossover — the paper's Section 5.1 remark
made quantitative — is that fully reactive splaying wins when rotations are
free, while thresholded/probabilistic policies overtake it as physical
reconfiguration gets expensive, and freezing is only competitive when the
demand is stationary.
"""

from conftest import run_once

from repro.core.splaynet import KArySplayNet
from repro.network.cost import CostModel, ROUTING_ONLY
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)
from repro.network.simulator import simulate
from repro.workloads.synthetic import temporal_trace

PRICES = (("free", ROUTING_ONLY), ("unit", CostModel(rotation_cost=1.0)),
          ("pricey", CostModel(rotation_cost=20.0)))


def test_adjustment_policy_ablation(benchmark, scale, record_table):
    n = 64 if scale.name == "smoke" else 200
    m = 3_000 if scale.name == "smoke" else 30_000
    trace = temporal_trace(n, m, 0.9, scale.seed)

    def run():
        policies = {
            "reactive": lambda: KArySplayNet(n, 3),
            "threshold-2": lambda: ThresholdedNetwork(KArySplayNet(n, 3), 2),
            "threshold-4": lambda: ThresholdedNetwork(KArySplayNet(n, 3), 4),
            "prob-0.5": lambda: ProbabilisticNetwork(
                KArySplayNet(n, 3), 0.5, seed=scale.seed
            ),
            "prob-0.1": lambda: ProbabilisticNetwork(
                KArySplayNet(n, 3), 0.1, seed=scale.seed
            ),
            "frozen": lambda: FrozenNetwork(KArySplayNet(n, 3)),
        }
        return {
            name: simulate(make(), trace) for name, make in policies.items()
        }

    results = run_once(benchmark, run)

    lines = [
        f"Adjustment-policy ablation — temporal-0.9, n={n}, m={m}",
        f"{'policy':14} " + " ".join(f"{label:>12}" for label, _ in PRICES)
        + f" {'rotations':>10}",
    ]
    for name, result in results.items():
        cells = " ".join(
            f"{result.total_cost(model):>12.0f}" for _, model in PRICES
        )
        lines.append(f"{name:14} {cells} {result.total_rotations:>10d}")

    # shape: reactive best at free rotations; some lazy policy best when pricey
    free_costs = {k: v.total_cost(ROUTING_ONLY) for k, v in results.items()}
    pricey_costs = {k: v.total_cost(PRICES[2][1]) for k, v in results.items()}
    assert min(free_costs, key=free_costs.get) == "reactive"
    assert min(pricey_costs, key=pricey_costs.get) != "reactive"
    assert free_costs["frozen"] > free_costs["reactive"]  # locality needs adjusting
    record_table("adjustment_policy", "\n".join(lines))
