"""Ablation: rotation block-selection policy (DESIGN.md design choice).

The paper leaves the choice of *which* k-1 consecutive merged elements cover
a demoted key unspecified.  This bench compares the three policies on a
mixed-locality workload; 'center' (our default) should never lose badly.
"""

from conftest import run_once

from repro.core.rotations import BLOCK_POLICIES
from repro.core.splaynet import KArySplayNet
from repro.network.simulator import simulate
from repro.workloads.synthetic import temporal_trace, uniform_trace


def test_block_policy_ablation(benchmark, scale, record_table):
    n = min(scale.temporal_n, 255)
    m = min(scale.m, 20_000)

    def run():
        rows = []
        for wname, trace in (
            ("uniform", uniform_trace(n, m, scale.seed)),
            ("temporal-0.5", temporal_trace(n, m, 0.5, scale.seed)),
        ):
            for k in (3, 8):
                costs = {
                    policy: simulate(
                        KArySplayNet(n, k, policy=policy), trace
                    ).total_routing
                    for policy in BLOCK_POLICIES
                }
                rows.append((wname, k, costs))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Ablation — rotation block-selection policy (total routing cost)",
        f"{'workload':14} {'k':>3} " + "".join(f"{p:>10}" for p in BLOCK_POLICIES),
    ]
    for wname, k, costs in rows:
        lines.append(
            f"{wname:14} {k:>3} "
            + "".join(f"{costs[p]:>10}" for p in BLOCK_POLICIES)
        )
        best = min(costs.values())
        # the default must stay within 10% of the best policy
        assert costs["center"] <= 1.1 * best
    record_table("ablation_block_policy", "\n".join(lines))
