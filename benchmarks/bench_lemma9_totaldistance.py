"""Regenerates the Lemma 9 comparison: full vs centroid vs optimal trees.

Lemma 9 states both static constructions have uniform-workload total
distance ``n² log_k n + O(n²)``; Theorem 33 lower-bounds the optimum by
``Ω(n² log n)``.  This bench measures all three across n and k and records
the measured-over-leading-term constants.
"""

from conftest import run_once

from repro.analysis.distance import total_distance_via_potentials
from repro.analysis.theory import lemma9_estimate
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.optimal.uniform import optimal_uniform_cost


def test_lemma9_total_distance(benchmark, scale, record_table):
    if scale.name == "smoke":
        ns, ks = (64, 128), (2, 3)
    else:
        ns, ks = (128, 256, 512, 1024), (2, 3, 5, 10)

    def run():
        rows = []
        for k in ks:
            for n in ns:
                full = total_distance_via_potentials(build_complete_tree(n, k)) // 2
                centroid = total_distance_via_potentials(build_centroid_tree(n, k)) // 2
                optimal = optimal_uniform_cost(n, k)
                rows.append((n, k, full, centroid, optimal))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Lemma 9 — uniform total distance (unordered pairs)",
        f"{'n':>6} {'k':>3} {'full':>12} {'centroid':>12} {'optimal':>12}"
        f" {'full/lead':>10} {'cent/lead':>10}",
    ]
    for n, k, full, centroid, optimal in rows:
        lead = lemma9_estimate(n, k)
        lines.append(
            f"{n:>6} {k:>3} {full:>12} {centroid:>12} {optimal:>12}"
            f" {full/lead:>10.3f} {centroid/lead:>10.3f}"
        )
        # Lemma 9: both within O(n²) of the n² log_k n leading term.
        assert abs(full - lead) <= 4.0 * n * n
        assert abs(centroid - lead) <= 4.0 * n * n
        # ordering: optimal <= centroid <= full
        assert optimal <= centroid <= full
    record_table("lemma9_totaldistance", "\n".join(lines))
