"""Regenerates the Theorem 13 check: k-ary SplayNet vs its entropy bound.

Theorem 13 bounds total cost by O(Σ a_x log(m/a_x) + Σ b_x log(m/b_x)).
The bench measures the cost-to-bound ratio on every workload; staying below
a small constant across all of them is the empirical content of the bound.
"""

from conftest import run_once

from repro.analysis.entropy import entropy_bound_report
from repro.core.splaynet import KArySplayNet
from repro.experiments.presets import WORKLOADS, make_workload
from repro.network.simulator import simulate


def test_theorem13_entropy_bound(benchmark, scale, record_table):
    workloads = WORKLOADS if scale.name != "smoke" else ("uniform", "temporal-0.5")

    def run():
        rows = []
        for name in workloads:
            trace = make_workload(name, scale)
            if trace.n > 2048:  # keep the facebook run tractable in python
                trace = trace.head(scale.m // 2)
            result = simulate(KArySplayNet(trace.n, 3), trace)
            rows.append((name, entropy_bound_report(trace, result.total_routing)))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Theorem 13 — measured cost vs entropy bound (k=3 SplayNet)",
        f"{'workload':16} {'cost':>12} {'bound':>14} {'ratio':>8}",
    ]
    for name, report in rows:
        lines.append(
            f"{name:16} {report.measured_cost:>12.0f} {report.bound:>14.0f}"
            f" {report.ratio:>8.3f}"
        )
        # The hidden constant: every workload must stay under a small bound
        # (entropy-degenerate traces excluded by the +m term in the theorem).
        assert report.measured_cost <= 3.0 * report.bound + 2.5 * report.m
    record_table("theorem13_entropy_bound", "\n".join(lines))
