"""Ablation: fully-reactive serve vs one-step-per-endpoint serve_semi.

The paper's introduction sketches the reactive spectrum; ``serve_semi``
adjusts by exactly one transformation per endpoint per request.  Measured
shape (a finding, not an assumption): semi serving does bounded work per
request (rotations ≤ 2m) and beats never adjusting at *high* locality
(p = 0.9), but at moderate locality (p = 0.5) its slow drift loses to the
balanced static tree — one step per request degrades the balanced shape
faster than it builds adjacency.  Full splaying dominates both at every
locality level, supporting the paper's choice of splay-to-LCA serving.
"""

from conftest import run_once

from repro.core.splaynet import KArySplayNet
from repro.network.policies import FrozenNetwork
from repro.network.simulator import Simulator
from repro.workloads.synthetic import temporal_trace


class _SemiAdapter:
    """Expose serve_semi through the simulator's serve interface."""

    def __init__(self, inner: KArySplayNet) -> None:
        self.inner = inner

    @property
    def n(self) -> int:
        return self.inner.n

    def serve(self, u: int, v: int):
        return self.inner.serve_semi(u, v)


def test_semi_serve_ablation(benchmark, scale, record_table):
    n = 64 if scale.name == "smoke" else 200
    m = 3_000 if scale.name == "smoke" else 30_000
    ps = (0.5, 0.9)

    def run():
        rows = []
        sim = Simulator()
        for p in ps:
            trace = temporal_trace(n, m, p, scale.seed)
            full = sim.run(KArySplayNet(n, 3), trace)
            semi = sim.run(_SemiAdapter(KArySplayNet(n, 3)), trace)
            frozen = sim.run(FrozenNetwork(KArySplayNet(n, 3)), trace)
            rows.append((p, full, semi, frozen))
        return rows

    rows = run_once(benchmark, run)

    lines = [
        f"Semi-splay serving — n={n}, m={m}",
        f"{'p':>5} {'full routing':>13} {'semi routing':>13} {'frozen':>10}"
        f" {'full rot':>9} {'semi rot':>9}",
    ]
    for p, full, semi, frozen in rows:
        lines.append(
            f"{p:>5} {full.total_routing:>13d} {semi.total_routing:>13d}"
            f" {frozen.total_routing:>10d} {full.total_rotations:>9d}"
            f" {semi.total_rotations:>9d}"
        )
        # semi does bounded work per request...
        assert semi.total_rotations <= 2 * m
        # ...full splaying dominates it at every locality level...
        assert full.total_routing < semi.total_routing
        # ...and semi only beats never-adjusting at high locality
        if p == 0.9:
            assert semi.total_routing < frozen.total_routing
        else:
            assert semi.total_routing > frozen.total_routing  # the finding
    record_table("semi_serve", "\n".join(lines))
