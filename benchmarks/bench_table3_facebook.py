"""Regenerates the paper's Table 3 (see DESIGN.md experiment index)."""

from _tablebench import kary_table_bench


def test_table3_facebook(benchmark, scale, record_table):
    kary_table_bench(benchmark, scale, record_table, 3)
