"""Parallel harness: correctness at scale and multi-process speedup.

Regenerates one k-ary table serially and with worker processes, asserts
bit-identical results (the harness is an accelerator, not a fork of the
logic), and reports the speedup.  Speedup is informational — CI boxes vary —
but equality is a hard gate.
"""

import os
import time

from conftest import run_once

from repro.experiments.parallel_runner import run_kary_table_parallel
from repro.experiments.tables import run_kary_table


def test_parallel_scaling(benchmark, scale, record_table):
    workload = "temporal-0.5"
    ks = scale.ks if scale.name == "smoke" else (2, 3, 4, 5)
    jobs = max(2, min(4, os.cpu_count() or 2))

    def run():
        t0 = time.perf_counter()
        serial = run_kary_table(workload, scale=scale, ks=ks, include_optimal=False)
        t1 = time.perf_counter()
        parallel = run_kary_table_parallel(
            workload, scale=scale, ks=ks, include_optimal=False, jobs=jobs
        )
        t2 = time.perf_counter()
        return serial, parallel, t1 - t0, t2 - t1

    serial, parallel, serial_s, parallel_s = run_once(benchmark, run)

    assert parallel.splaynet == serial.splaynet
    assert parallel.fulltree == serial.fulltree
    assert parallel.rotations == serial.rotations

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    lines = [
        f"Parallel table regeneration — {workload}, ks={ks}, jobs={jobs}",
        f"serial   : {serial_s:8.2f}s",
        f"parallel : {parallel_s:8.2f}s   (speedup {speedup:.2f}x)",
        "results  : identical (hard-asserted)",
    ]
    record_table("parallel_scaling", "\n".join(lines))
