"""Serve-farm benchmark: resident scalar serving + shard scaling.

Run as a script to emit a machine-readable JSON record (the acceptance
gates are resident scalar serving >= 10x the marshalled native path, and
the 2-shard farm's aggregate capacity scaling over 1 shard > 1):

    PYTHONPATH=src python benchmarks/bench_servefarm.py \
        --output benchmarks/results/BENCH_servefarm.json

Scalar modes are interleaved across --repeats rounds with best wall and
CPU time kept (speedups are CPU-based); the farm part records observed
wall req/s next to capacity req/s (requests over the busiest shard's
worker CPU time — the shard-parallel metric that wall clock matches when
the host has a core per shard; the host cpu_count is recorded in the
config).  Cost totals must agree exactly across every serving mode and
shard count.  The same measurement is exposed as
``python -m repro bench-servefarm`` and smoke-tested at toy scale in the
tier-1 suite; this script is the full-scale record keeper for the perf
trajectory under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.servebench import (
    SCALAR_MODES,
    servefarm_benchmark,
    write_servefarm_record,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--nodes", type=int, default=1024)
    parser.add_argument("-k", type=int, default=4)
    parser.add_argument("--scalar-requests", type=int, default=2_000)
    parser.add_argument("--farm-requests", type=int, default=100_000)
    parser.add_argument("--zipf-alpha", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--modes", nargs="+", choices=SCALAR_MODES, default=None,
        help="scalar mode subset (default: every mode measurable here)",
    )
    parser.add_argument("--shards", type=int, nargs="+", default=(1, 2))
    parser.add_argument("--keys", type=int, default=8)
    parser.add_argument("--window", type=int, default=8_192)
    parser.add_argument("--output", default=None, help="also write JSON here")
    args = parser.parse_args(argv)

    record = servefarm_benchmark(
        n=args.nodes,
        k=args.k,
        scalar_m=args.scalar_requests,
        farm_m=args.farm_requests,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        repeats=args.repeats,
        scalar_modes=args.modes,
        shard_counts=tuple(args.shards),
        keys=args.keys,
        window=args.window,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_servefarm_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    failed = (
        record["scalar"].get("totals_match") is False
        or record["farm"].get("totals_match") is False
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
