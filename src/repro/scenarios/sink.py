"""Streaming JSONL result sink for scenario runs.

One :class:`ScenarioResult` per line, written (and flushed) as results are
handed over.  Serial ``run_specs`` hands cells over one by one, so a
killed campaign keeps every completed cell on disk and downstream tooling
can tail the file while it runs; pooled runs hand the ordered batch over
when the pool completes.  The conventional home for records is
``benchmarks/results/`` (see :func:`default_results_path`), next to the
``BENCH_*`` perf artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.scenarios.core import ScenarioResult

__all__ = ["JsonlResultSink", "read_results_jsonl", "default_results_path"]

#: Repository-conventional results directory (relative to the CWD).
RESULTS_DIR = Path("benchmarks") / "results"


def default_results_path(name: str, scale: str) -> Path:
    """``benchmarks/results/scenario_<name>_<scale>.jsonl``."""
    return RESULTS_DIR / f"scenario_{name}_{scale}.jsonl"


class JsonlResultSink:
    """Append-ordered JSONL writer for :class:`ScenarioResult` records.

    Opens lazily on the first ``write`` (so constructing a sink never
    touches the filesystem), creates parent directories, flushes per line.
    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._handle = None
        self.count = 0

    def write(self, result: ScenarioResult) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
        self._handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlResultSink":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None


def read_results_jsonl(path: "str | Path") -> list[ScenarioResult]:
    """Load a sink file back into result objects (round-trip of ``write``)."""
    results: list[ScenarioResult] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            results.append(ScenarioResult.from_dict(json.loads(line)))
    return results
