"""Streaming JSONL result sink for scenario runs.

One :class:`ScenarioResult` per line, written (and flushed) as results are
handed over.  ``run_specs`` streams every cell to the sink the moment it
completes — serially in spec order, pooled in completion order — so a
killed campaign keeps every completed cell on disk and downstream tooling
can tail the file while it runs.  Files are opened in **append** mode, so
re-running or resuming a campaign extends the record instead of silently
truncating it (pass ``overwrite=True`` for a fresh file).  The
conventional home for records is ``benchmarks/results/`` — resolved via
:func:`results_root` against the repository root (or the
``REPRO_RESULTS_DIR`` environment override), not the current working
directory, so runs launched from anywhere land in one place.

Crash-safety contract: each record is emitted as **one** ``write`` call
of one complete line and flushed before ``write`` returns, so a process
killed between records never tears the file — and a process killed *mid*
record tears at most the final line.  :func:`read_results_jsonl` upholds
the matching read guarantee: a truncated trailing line is skipped with a
warning (never an exception), so the record of an interrupted campaign
stays loadable and ``run_specs(..., resume=True)`` can seed from it.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Optional

from repro.errors import FaultInjected
from repro.reliability.faults import fire_fault
from repro.scenarios.core import ScenarioResult

__all__ = [
    "JsonlResultSink",
    "read_results_jsonl",
    "default_results_path",
    "results_root",
]

#: Environment override for the results directory.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def results_root(start: Optional[Path] = None) -> Path:
    """The directory result files (and the result cache) live under.

    Resolution order:

    1. the ``REPRO_RESULTS_DIR`` environment variable, verbatim;
    2. the nearest ancestor of ``start`` (default: the current
       directory) containing ``benchmarks/results`` — a checkout,
       entered anywhere inside it;
    3. the checkout this package was imported from (``src`` layout), if
       it carries a ``benchmarks`` directory;
    4. ``benchmarks/results`` relative to the current directory (the
       historical fallback — only reached outside any checkout).
    """
    env = os.environ.get(RESULTS_DIR_ENV)
    if env:
        return Path(env)
    cwd = start if start is not None else Path.cwd()
    for base in (cwd, *cwd.parents):
        candidate = base / "benchmarks" / "results"
        if candidate.is_dir():
            return candidate
    # sink.py -> scenarios -> repro -> src -> <checkout root>
    pkg_root = Path(__file__).resolve().parents[3]
    if (pkg_root / "benchmarks").is_dir():
        return pkg_root / "benchmarks" / "results"
    return Path("benchmarks") / "results"


def default_results_path(name: str, scale: str) -> Path:
    """``<results_root>/scenario_<name>_<scale>.jsonl``."""
    return results_root() / f"scenario_{name}_{scale}.jsonl"


class JsonlResultSink:
    """Append-ordered JSONL writer for :class:`ScenarioResult` records.

    Opens lazily on the first ``write`` (so constructing a sink never
    touches the filesystem), creates parent directories, emits each
    record as a single complete-line ``write`` and flushes it.  The
    default open mode is **append**: a second session on the same path
    extends the record, keeping the class's crash-survivability promise
    across re-runs and resumes (a torn partial line left by a killed
    writer is truncated away before the first append, so the file stays
    a sequence of whole records).  ``overwrite=True`` truncates instead;
    ``fsync=True`` additionally forces each line to stable storage
    (survives power loss, not just process death — at a per-line
    ``fsync`` cost).  Usable as a context manager; ``close()`` is
    idempotent.

    Fault-injection point ``sink.write``: ``error`` fails the write
    before anything reaches the file; ``truncate`` deliberately leaves a
    torn partial line (the stand-in for a SIGKILL mid-``write``) and then
    fails — exercised by the reliability suite to pin the tolerant read
    path.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        overwrite: bool = False,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.overwrite = overwrite
        self.fsync = fsync
        self._handle = None
        self.count = 0

    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line left by a killed writer.

        Append mode would otherwise glue the next record onto the torn
        fragment, corrupting a line *mid*-file — beyond what the tolerant
        reader forgives.  Trimming back to the last complete line keeps
        the file a sequence of whole records; the torn cell is simply
        recomputed by ``resume``.
        """
        try:
            with self.path.open("rb+") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(size - 1)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                data = handle.read()
                keep = data.rfind(b"\n") + 1  # 0 when no newline at all
                handle.truncate(keep)
        except FileNotFoundError:
            return

    def write(self, result: ScenarioResult) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self.overwrite:
                self._repair_torn_tail()
            self._handle = self.path.open("w" if self.overwrite else "a")
        line = json.dumps(result.to_dict(), sort_keys=True) + "\n"
        spec = fire_fault("sink.write", context=result.spec.to_json())
        if spec is not None and spec.mode == "truncate":
            # Simulate a kill mid-write: half the line lands, no newline.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            raise FaultInjected(
                f"injected torn write at {self.path}: {spec.detail or spec.point}"
            )
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlResultSink":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None


def read_results_jsonl(path: "str | Path") -> list[ScenarioResult]:
    """Load a sink file back into result objects (round-trip of ``write``).

    Tolerates the one corruption a killed writer can leave behind: a
    **truncated trailing line** (partial JSON with or without its
    newline) is skipped with a :class:`RuntimeWarning` instead of
    raising, so the completed cells of an interrupted campaign stay
    loadable.  Malformed JSON *before* the final line is not a crash
    artifact — single-``write`` line appends cannot tear mid-file — so it
    still raises :class:`json.JSONDecodeError`.
    """
    results: list[ScenarioResult] = []
    lines = [
        (number, line.strip())
        for number, line in enumerate(Path(path).read_text().splitlines(), 1)
        if line.strip()
    ]
    for position, (number, line) in enumerate(lines):
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                warnings.warn(
                    f"{path}: skipping truncated trailing line {number}"
                    " (partial write from an interrupted run)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise
        results.append(ScenarioResult.from_dict(data))
    return results
