"""Compatibility shim over :mod:`repro.results` (the historical sink home).

The streaming JSONL sink grew into the pluggable results subsystem at
:mod:`repro.results`; this module keeps the long-standing import paths
working.  :class:`JsonlResultSink` *is* :class:`repro.results.JsonlStore`
(same class, same crash contract, same ``sink.write`` fault point), and
``read_results_jsonl`` / ``results_root`` / ``default_results_path`` are
the same callables re-exported.  New code should import from
:mod:`repro.results` directly — it also offers the streaming
:func:`~repro.results.iter_results_jsonl`, the SQLite backend, and
:func:`~repro.results.open_store`.
"""

from __future__ import annotations

from repro.results.jsonl import (
    JsonlStore,
    iter_results_jsonl,
    read_results_jsonl,
)
from repro.results.paths import (
    RESULTS_DIR_ENV,
    default_results_path,
    results_root,
)

#: Historical name of the JSONL store (same class, not a subclass — so
#: ``isinstance`` checks and monkeypatches keep working either way).
JsonlResultSink = JsonlStore

__all__ = [
    "JsonlResultSink",
    "JsonlStore",
    "RESULTS_DIR_ENV",
    "default_results_path",
    "iter_results_jsonl",
    "read_results_jsonl",
    "results_root",
]
