"""Streaming JSONL result sink for scenario runs.

One :class:`ScenarioResult` per line, written (and flushed) as results are
handed over.  Serial ``run_specs`` hands cells over one by one, so a
killed campaign keeps every completed cell on disk and downstream tooling
can tail the file while it runs; pooled runs hand the ordered batch over
when the pool completes.  Files are opened in **append** mode, so
re-running or resuming a campaign extends the record instead of silently
truncating it (pass ``overwrite=True`` for a fresh file).  The
conventional home for records is ``benchmarks/results/`` — resolved via
:func:`results_root` against the repository root (or the
``REPRO_RESULTS_DIR`` environment override), not the current working
directory, so runs launched from anywhere land in one place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.scenarios.core import ScenarioResult

__all__ = [
    "JsonlResultSink",
    "read_results_jsonl",
    "default_results_path",
    "results_root",
]

#: Environment override for the results directory.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def results_root(start: Optional[Path] = None) -> Path:
    """The directory result files (and the result cache) live under.

    Resolution order:

    1. the ``REPRO_RESULTS_DIR`` environment variable, verbatim;
    2. the nearest ancestor of ``start`` (default: the current
       directory) containing ``benchmarks/results`` — a checkout,
       entered anywhere inside it;
    3. the checkout this package was imported from (``src`` layout), if
       it carries a ``benchmarks`` directory;
    4. ``benchmarks/results`` relative to the current directory (the
       historical fallback — only reached outside any checkout).
    """
    env = os.environ.get(RESULTS_DIR_ENV)
    if env:
        return Path(env)
    cwd = start if start is not None else Path.cwd()
    for base in (cwd, *cwd.parents):
        candidate = base / "benchmarks" / "results"
        if candidate.is_dir():
            return candidate
    # sink.py -> scenarios -> repro -> src -> <checkout root>
    pkg_root = Path(__file__).resolve().parents[3]
    if (pkg_root / "benchmarks").is_dir():
        return pkg_root / "benchmarks" / "results"
    return Path("benchmarks") / "results"


def default_results_path(name: str, scale: str) -> Path:
    """``<results_root>/scenario_<name>_<scale>.jsonl``."""
    return results_root() / f"scenario_{name}_{scale}.jsonl"


class JsonlResultSink:
    """Append-ordered JSONL writer for :class:`ScenarioResult` records.

    Opens lazily on the first ``write`` (so constructing a sink never
    touches the filesystem), creates parent directories, flushes per line.
    The default open mode is **append**: a second session on the same path
    extends the record, keeping the class's crash-survivability promise
    across re-runs and resumes.  ``overwrite=True`` truncates instead.
    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, path: "str | Path", *, overwrite: bool = False) -> None:
        self.path = Path(path)
        self.overwrite = overwrite
        self._handle = None
        self.count = 0

    def write(self, result: ScenarioResult) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w" if self.overwrite else "a")
        self._handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlResultSink":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None


def read_results_jsonl(path: "str | Path") -> list[ScenarioResult]:
    """Load a sink file back into result objects (round-trip of ``write``)."""
    results: list[ScenarioResult] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            results.append(ScenarioResult.from_dict(json.loads(line)))
    return results
