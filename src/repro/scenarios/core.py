"""The one execution core: run any spec list, serially or across processes.

Every experiment surface of the repository — the serial table functions,
the parallel table runners, ``run_all``, the sweep engine's simulation
cells and the ``repro scenarios`` CLI — funnels through
:func:`run_specs` / :func:`run_cells` here.  That buys three properties in
one place instead of three divergent code paths:

* **Determinism** — results are reassembled in submission order, so a run
  is bit-identical for any worker count.
* **Trace memoization** — cells share the per-process trace memo of
  :mod:`repro.parallel.tasks`, so a table's up-to-27 cells materialize the
  workload once per worker instead of once per cell.
* **Engine policy** — engine-capable online cells default to the flat
  structure-of-arrays backend (≈3× the object engine on the serve loop);
  ``engine="object"`` remains one field away for cross-checks.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, TypeVar

from repro.analysis.distance import total_distance_via_potentials
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.errors import ExperimentError
from repro.network.cost import CostModel, ROUTING_ONLY, UNIT_ROTATIONS
from repro.optimal.uniform import optimal_uniform_cost
from repro.parallel.pool import (
    ParallelConfig,
    _call_item,
    parallel_map,
    parallel_map_outcomes,
)
from repro.parallel.tasks import (
    evict_trace,
    run_simulation_task,
    seed_trace_cache,
)
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.trace import Trace

__all__ = ["ScenarioResult", "run_scenario", "run_cells", "run_specs"]

T = TypeVar("T")
R = TypeVar("R")

#: Analytic algorithm → closed-form cost in unordered-pair units.
_ANALYTIC: dict[str, Callable[[int, int], int]] = {
    "centroid-tree-distance": lambda n, k: total_distance_via_potentials(
        build_centroid_tree(n, k)
    )
    // 2,
    "optimal-uniform-distance": lambda n, k: optimal_uniform_cost(n, k),
    "complete-tree-distance": lambda n, k: total_distance_via_potentials(
        build_complete_tree(n, k)
    )
    // 2,
}

_COST_MODELS: dict[str, CostModel] = {
    "routing": ROUTING_ONLY,
    "unit_rotations": UNIT_ROTATIONS,
}


@dataclass(frozen=True)
class ScenarioResult:
    """Scalar outcome of one cell (small and picklable by construction)."""

    spec: ScenarioSpec
    total_routing: int
    total_rotations: int
    total_links_changed: int
    elapsed_seconds: float = 0.0

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.spec.m if self.spec.m else 0.0

    def cost(self, model: Optional[CostModel] = None) -> float:
        """Total cost under a model (default: the spec's ``cost_model``)."""
        if model is None:
            model = _COST_MODELS[self.spec.cost_model]
        return (
            model.routing_weight * self.total_routing
            + model.rotation_cost * self.total_rotations
            + model.link_cost * self.total_links_changed
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly flat record (one JSONL line in the result sink)."""
        return {
            "spec": self.spec.to_dict(),
            "total_routing": self.total_routing,
            "total_rotations": self.total_rotations,
            "total_links_changed": self.total_links_changed,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            total_routing=data["total_routing"],
            total_rotations=data["total_rotations"],
            total_links_changed=data["total_links_changed"],
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one cell (module-level, so it pickles into workers).

    Analytic cells evaluate their closed form; online/static cells bridge
    to :func:`repro.parallel.tasks.run_simulation_task`, inheriting the
    worker-side trace memo and the engine threading.
    """
    start = time.perf_counter()
    if spec.kind == "analytic":
        cost = _ANALYTIC[spec.algorithm](spec.n, spec.k)
        return ScenarioResult(spec, cost, 0, 0, time.perf_counter() - start)
    cell = run_simulation_task(spec.task())
    return ScenarioResult(
        spec,
        cell.total_routing,
        cell.total_rotations,
        cell.total_links_changed,
        time.perf_counter() - start,
    )


def run_cells(
    fn: Callable[[T], R],
    cells: Iterable[T],
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> list[R]:
    """The execution chokepoint: ordered map over cells, serial or pooled.

    ``jobs=1`` (default) runs in-process; ``jobs=0``/negative resolves to
    all cores; an explicit :class:`ParallelConfig` overrides ``jobs``.
    Both :func:`run_specs` and the sweep engine
    (:func:`repro.parallel.sweep.run_sweep`) execute through here.
    """
    return parallel_map(fn, cells, config=config, jobs=None if config else jobs)


def run_specs(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
    sink: Optional[Any] = None,
    traces: Optional[Mapping[tuple[str, int, int, int], Trace]] = None,
    cache: Optional[Any] = None,
    refresh: bool = False,
    resume: bool = False,
) -> list[ScenarioResult]:
    """Run a spec list through the core; results come back in spec order.

    Parameters
    ----------
    jobs, config:
        Worker processes (see :func:`run_cells`).  The config's
        reliability knobs apply on every path: ``retries``/``backoff``
        re-attempt transiently failing cells (serial and pooled),
        ``task_timeout``/``pool_respawns`` bound stuck and killed workers
        (pooled), and ``on_error="collect"`` turns per-cell failures into
        skipped cells — a warning per failure, the campaign completes,
        and the returned list holds the cells that succeeded (still in
        spec order).  The default remains fail-fast.
    sink:
        Optional result sink (anything with ``write(result)`` — any
        :class:`~repro.results.store.ResultStore` backend, e.g.
        :class:`repro.results.JsonlStore` or
        :class:`repro.results.SqliteStore`).  Every completed cell
        streams to the sink the moment it finishes — serially in spec
        order, pooled in completion order — so a killed campaign keeps
        every finished cell on disk.  Cache hits are written too, so the
        sink record stays a complete campaign record.
    traces:
        Optional pre-built traces keyed by ``(workload, n, m, seed)``,
        pre-seeded into the in-process trace memo — for callers holding a
        custom trace that has no generator.  Serial only: worker processes
        cannot see the parent's memo.  Cells running on a pinned trace
        bypass the result cache entirely (their coordinates no longer
        describe their data).
    cache:
        A :class:`repro.scenarios.cache.ResultCache`, ``True`` (the
        default cache directory), ``False`` (caching off), or ``None`` —
        defer to the ``REPRO_RESULT_CACHE`` environment variable.  Cells
        whose spec fingerprint has a recorded result are skipped (serial
        and pooled alike); freshly computed cells are stored.
    refresh:
        With a cache, recompute every cell and overwrite its entry
        (stale-cache escape hatch).
    resume:
        Crash-safe campaign resume: seed completed cells from the sink's
        existing record — streamed through the store's own iterator for
        any :class:`~repro.results.store.ResultStore` backend (for JSONL,
        tolerant of a truncated tail; see
        :func:`repro.results.iter_results_jsonl`) — and run only the
        remainder.  Requires a path-backed, append-mode sink; resumed
        cells are returned in place but **not** re-written to the
        record, so it stays deduplicated.  Combined with the result
        cache, a re-run after any interruption recomputes only cells
        that genuinely never finished.
    """
    from repro.scenarios.cache import resolve_result_cache

    specs = list(specs)
    seeded: list[tuple[str, int, int, int]] = []
    serial = config.resolved_jobs() == 1 if config is not None else jobs == 1
    on_error = config.on_error if config is not None else "raise"
    resolved_cache = resolve_result_cache(cache)
    pinned_keys: frozenset = frozenset(traces or ())
    if traces:
        if not serial:
            raise ExperimentError(
                "explicit traces require serial execution (jobs=1): worker "
                "processes regenerate traces from coordinates and cannot see "
                "the caller's trace objects"
            )
        for (workload, n, m, seed), trace in traces.items():
            if (n, m) != (trace.n, trace.m):
                raise ExperimentError(
                    f"traces key ({workload!r}, {n}, {m}, {seed}) does not "
                    f"match the supplied trace (n={trace.n}, m={trace.m}); "
                    "cells under the mismatched key would silently run on a "
                    "regenerated trace"
                )
            seeded.append(seed_trace_cache(trace, workload, seed))

    def cacheable(cell: ScenarioSpec) -> bool:
        return resolved_cache is not None and cell.trace_key() not in pinned_keys

    def finish(cell: ScenarioSpec, result: ScenarioResult) -> ScenarioResult:
        if cacheable(cell):
            resolved_cache.store(result)
        return result

    # -- resume: seed completed cells from the sink's on-disk record ----
    resumed: dict[int, ScenarioResult] = {}
    if resume:
        resumed = _seed_resume(specs, sink)
        for index, result in resumed.items():
            # Re-store into the result cache so the *next* interruption
            # recovers these cells even without the JSONL record.
            finish(specs[index], result)

    hits: dict[int, ScenarioResult] = {}
    if resolved_cache is not None and not refresh:
        for index, cell in enumerate(specs):
            if index in resumed or not cacheable(cell):
                continue
            hit = resolved_cache.lookup(cell)
            if hit is not None:
                hits[index] = hit
    try:
        if serial:
            # True streaming: each cell hits the sink and the result
            # cache the moment it completes, so a killed campaign keeps
            # (and a resumed one skips) every finished cell.  Failures
            # are wrapped exactly as the pooled path wraps them; with
            # ``on_error="collect"`` they become skipped cells instead.
            retry = (config or ParallelConfig()).retry_policy()
            results = []
            for index, cell in enumerate(specs):
                fresh = False
                if index in resumed:
                    result = resumed[index]
                elif index in hits:
                    result, fresh = hits[index], True
                else:
                    result, fresh = _run_one_serial(
                        index, cell, retry, on_error, finish
                    )
                    if result is None:
                        continue
                if sink is not None and fresh:
                    sink.write(result)
                results.append(result)
            return results
        pending = [
            (index, cell)
            for index, cell in enumerate(specs)
            if index not in hits and index not in resumed
        ]
        merged: list[Optional[ScenarioResult]] = [None] * len(specs)
        for index, hit in hits.items():
            merged[index] = hit
            if sink is not None:
                sink.write(hit)
        for index, prior in resumed.items():
            merged[index] = prior

        def stream(outcome) -> None:
            # Runs in the parent as each pooled cell completes: cache
            # store + sink write immediately, so an abort later in the
            # campaign cannot lose this cell.
            if not outcome.ok:
                warnings.warn(
                    f"cell {pending[outcome.index][1]!r} failed after"
                    f" {outcome.attempts} attempt(s): {outcome.error}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return
            spec_index, cell = pending[outcome.index]
            result = finish(cell, outcome.value)
            merged[spec_index] = result
            if sink is not None:
                sink.write(result)

        parallel_map_outcomes(
            run_scenario,
            [cell for _, cell in pending],
            config=config,
            jobs=None if config else jobs,
            on_outcome=stream,
        )
        results = [result for result in merged if result is not None]
    finally:
        for key in seeded:
            evict_trace(key)
    return results


def _seed_resume(
    specs: Sequence[ScenarioSpec], sink: Optional[Any]
) -> dict[int, ScenarioResult]:
    """Map spec indices to results recovered from the sink's on-disk record.

    Backend-independent: an iterable sink (any
    :class:`~repro.results.store.ResultStore` — JSONL or SQLite) is
    streamed directly, one record in memory at a time; a plain path-backed
    sink falls back to the tolerant JSONL reader.  Prior results are
    matched to pending specs by full-spec identity (``spec.to_json()``),
    duplicate records claiming one cell each.
    """
    from collections import deque

    from repro.results.jsonl import iter_results_jsonl

    path = getattr(sink, "path", None)
    if path is None:
        raise ExperimentError(
            "resume=True needs a path-backed sink (e.g. JsonlResultSink"
            " or SqliteStore) so completed cells can be recovered from"
            " its record"
        )
    if getattr(sink, "overwrite", False):
        raise ExperimentError(
            "resume=True with an overwrite sink would discard the very"
            " record it resumes from; use append mode"
        )
    resumed: dict[int, ScenarioResult] = {}
    path = Path(path)
    if not path.exists():
        return resumed
    records = iter(sink) if hasattr(sink, "__iter__") else iter_results_jsonl(path)
    prior: dict[str, Any] = {}
    for result in records:
        prior.setdefault(result.spec.to_json(), deque()).append(result)
    for index, cell in enumerate(specs):
        bucket = prior.get(cell.to_json())
        if bucket:
            resumed[index] = bucket.popleft()
    return resumed


def _run_one_serial(
    index: int,
    cell: ScenarioSpec,
    retry,
    on_error: str,
    finish,
) -> tuple[Optional[ScenarioResult], bool]:
    """One serial cell under the retry/error policy; ``None`` = skipped."""
    attempts = 0
    while True:
        attempts += 1
        try:
            return finish(cell, _call_item(run_scenario, cell)), True
        except Exception as exc:  # noqa: BLE001 - policy decides
            if attempts <= retry.retries and retry.is_transient(exc):
                delay = retry.delay(attempts)
                if delay > 0:
                    time.sleep(delay)
                continue
            if on_error == "raise":
                raise ExperimentError(
                    f"task {index} failed on item {cell!r}: {exc}"
                ) from exc
            warnings.warn(
                f"cell {cell!r} failed after {attempts} attempt(s): {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None, False
