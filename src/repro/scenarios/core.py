"""The one execution core: run any spec list, serially or across processes.

Every experiment surface of the repository — the serial table functions,
the parallel table runners, ``run_all``, the sweep engine's simulation
cells and the ``repro scenarios`` CLI — funnels through
:func:`run_specs` / :func:`run_cells` here.  That buys three properties in
one place instead of three divergent code paths:

* **Determinism** — results are reassembled in submission order, so a run
  is bit-identical for any worker count.
* **Trace memoization** — cells share the per-process trace memo of
  :mod:`repro.parallel.tasks`, so a table's up-to-27 cells materialize the
  workload once per worker instead of once per cell.
* **Engine policy** — engine-capable online cells default to the flat
  structure-of-arrays backend (≈3× the object engine on the serve loop);
  ``engine="object"`` remains one field away for cross-checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, TypeVar

from repro.analysis.distance import total_distance_via_potentials
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.errors import ExperimentError
from repro.network.cost import CostModel, ROUTING_ONLY, UNIT_ROTATIONS
from repro.optimal.uniform import optimal_uniform_cost
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.parallel.tasks import (
    evict_trace,
    run_simulation_task,
    seed_trace_cache,
)
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.trace import Trace

__all__ = ["ScenarioResult", "run_scenario", "run_cells", "run_specs"]

T = TypeVar("T")
R = TypeVar("R")

#: Analytic algorithm → closed-form cost in unordered-pair units.
_ANALYTIC: dict[str, Callable[[int, int], int]] = {
    "centroid-tree-distance": lambda n, k: total_distance_via_potentials(
        build_centroid_tree(n, k)
    )
    // 2,
    "optimal-uniform-distance": lambda n, k: optimal_uniform_cost(n, k),
    "complete-tree-distance": lambda n, k: total_distance_via_potentials(
        build_complete_tree(n, k)
    )
    // 2,
}

_COST_MODELS: dict[str, CostModel] = {
    "routing": ROUTING_ONLY,
    "unit_rotations": UNIT_ROTATIONS,
}


@dataclass(frozen=True)
class ScenarioResult:
    """Scalar outcome of one cell (small and picklable by construction)."""

    spec: ScenarioSpec
    total_routing: int
    total_rotations: int
    total_links_changed: int
    elapsed_seconds: float = 0.0

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.spec.m if self.spec.m else 0.0

    def cost(self, model: Optional[CostModel] = None) -> float:
        """Total cost under a model (default: the spec's ``cost_model``)."""
        if model is None:
            model = _COST_MODELS[self.spec.cost_model]
        return (
            model.routing_weight * self.total_routing
            + model.rotation_cost * self.total_rotations
            + model.link_cost * self.total_links_changed
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly flat record (one JSONL line in the result sink)."""
        return {
            "spec": self.spec.to_dict(),
            "total_routing": self.total_routing,
            "total_rotations": self.total_rotations,
            "total_links_changed": self.total_links_changed,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            total_routing=data["total_routing"],
            total_rotations=data["total_rotations"],
            total_links_changed=data["total_links_changed"],
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one cell (module-level, so it pickles into workers).

    Analytic cells evaluate their closed form; online/static cells bridge
    to :func:`repro.parallel.tasks.run_simulation_task`, inheriting the
    worker-side trace memo and the engine threading.
    """
    start = time.perf_counter()
    if spec.kind == "analytic":
        cost = _ANALYTIC[spec.algorithm](spec.n, spec.k)
        return ScenarioResult(spec, cost, 0, 0, time.perf_counter() - start)
    cell = run_simulation_task(spec.task())
    return ScenarioResult(
        spec,
        cell.total_routing,
        cell.total_rotations,
        cell.total_links_changed,
        time.perf_counter() - start,
    )


def run_cells(
    fn: Callable[[T], R],
    cells: Iterable[T],
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> list[R]:
    """The execution chokepoint: ordered map over cells, serial or pooled.

    ``jobs=1`` (default) runs in-process; ``jobs=0``/negative resolves to
    all cores; an explicit :class:`ParallelConfig` overrides ``jobs``.
    Both :func:`run_specs` and the sweep engine
    (:func:`repro.parallel.sweep.run_sweep`) execute through here.
    """
    return parallel_map(fn, cells, config=config, jobs=None if config else jobs)


def run_specs(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
    sink: Optional[Any] = None,
    traces: Optional[Mapping[tuple[str, int, int, int], Trace]] = None,
    cache: Optional[Any] = None,
    refresh: bool = False,
) -> list[ScenarioResult]:
    """Run a spec list through the core; results come back in spec order.

    Parameters
    ----------
    jobs, config:
        Worker processes (see :func:`run_cells`).
    sink:
        Optional result sink (anything with ``write(result)``, e.g.
        :class:`repro.scenarios.sink.JsonlResultSink`).  Serial runs
        stream each result to the sink the moment its cell finishes (a
        killed campaign keeps every completed cell on disk); pooled runs
        write the ordered batch when the pool completes.  Cache hits are
        written too, so the sink file stays a complete campaign record.
    traces:
        Optional pre-built traces keyed by ``(workload, n, m, seed)``,
        pre-seeded into the in-process trace memo — for callers holding a
        custom trace that has no generator.  Serial only: worker processes
        cannot see the parent's memo.  Cells running on a pinned trace
        bypass the result cache entirely (their coordinates no longer
        describe their data).
    cache:
        A :class:`repro.scenarios.cache.ResultCache`, ``True`` (the
        default cache directory), ``False`` (caching off), or ``None`` —
        defer to the ``REPRO_RESULT_CACHE`` environment variable.  Cells
        whose spec fingerprint has a recorded result are skipped (serial
        and pooled alike); freshly computed cells are stored.
    refresh:
        With a cache, recompute every cell and overwrite its entry
        (stale-cache escape hatch).
    """
    from repro.scenarios.cache import resolve_result_cache

    specs = list(specs)
    seeded: list[tuple[str, int, int, int]] = []
    serial = config.resolved_jobs() == 1 if config is not None else jobs == 1
    resolved_cache = resolve_result_cache(cache)
    pinned_keys: frozenset = frozenset(traces or ())
    if traces:
        if not serial:
            raise ExperimentError(
                "explicit traces require serial execution (jobs=1): worker "
                "processes regenerate traces from coordinates and cannot see "
                "the caller's trace objects"
            )
        for (workload, n, m, seed), trace in traces.items():
            if (n, m) != (trace.n, trace.m):
                raise ExperimentError(
                    f"traces key ({workload!r}, {n}, {m}, {seed}) does not "
                    f"match the supplied trace (n={trace.n}, m={trace.m}); "
                    "cells under the mismatched key would silently run on a "
                    "regenerated trace"
                )
            seeded.append(seed_trace_cache(trace, workload, seed))

    def cacheable(cell: ScenarioSpec) -> bool:
        return resolved_cache is not None and cell.trace_key() not in pinned_keys

    def finish(cell: ScenarioSpec, result: ScenarioResult) -> ScenarioResult:
        if cacheable(cell):
            resolved_cache.store(result)
        return result

    hits: dict[int, ScenarioResult] = {}
    if resolved_cache is not None and not refresh:
        for index, cell in enumerate(specs):
            if not cacheable(cell):
                continue
            hit = resolved_cache.lookup(cell)
            if hit is not None:
                hits[index] = hit
    try:
        if serial:
            # True streaming: each cell hits the sink and the result
            # cache the moment it completes, so a killed campaign keeps
            # (and a resumed one skips) every finished cell.  Failures
            # are wrapped exactly as the pooled path wraps them.
            results = []
            for index, cell in enumerate(specs):
                if index in hits:
                    result = hits[index]
                else:
                    try:
                        result = finish(cell, run_scenario(cell))
                    except Exception as exc:  # noqa: BLE001 - mirror pool policy
                        raise ExperimentError(
                            f"task {index} failed on item {cell!r}: {exc}"
                        ) from exc
                if sink is not None:
                    sink.write(result)
                results.append(result)
            return results
        pending = [
            (index, cell) for index, cell in enumerate(specs) if index not in hits
        ]
        computed = run_cells(
            run_scenario, [cell for _, cell in pending], jobs=jobs, config=config
        )
        merged: list[Optional[ScenarioResult]] = [None] * len(specs)
        for index, hit in hits.items():
            merged[index] = hit
        for (index, cell), result in zip(pending, computed):
            merged[index] = finish(cell, result)
        results = [result for result in merged if result is not None]
    finally:
        for key in seeded:
            evict_trace(key)
    if sink is not None:
        for result in results:
            sink.write(result)
    return results
