"""Declarative scenario pipeline: specs, registry, one execution core.

The demand-aware-networking move applied to this repository's own
evaluation harness: treat the (workload × algorithm × arity × cost model)
grid as *data*.  :class:`ScenarioSpec` names one cell; the registry expands
the paper's Tables 1–8 and Remark 10 (plus any user-registered campaign)
into spec lists; :func:`run_specs` executes any spec list serially or
across worker processes with per-worker trace memoization and the flat
tree engine as the online default; :class:`JsonlResultSink` streams results
to ``benchmarks/results/``.

The classic experiment entry points (``repro.experiments.tables``,
``run_all``, the parallel runners, simulation sweeps) are thin adapters
over this package — same result objects, one execution core.

Typical use::

    from repro.scenarios import expand, run_specs

    specs = expand("table4")            # the paper's Table 4 as data
    results = run_specs(specs, jobs=4)  # deterministic, order-preserving
"""

from repro.scenarios.spec import (
    ANALYTIC_ALGORITHMS,
    COST_MODELS,
    DEFAULT_ONLINE_ENGINE,
    ScenarioSpec,
    specs_from_json,
    specs_to_json,
)
from repro.scenarios.registry import (
    ablation_cost_model_specs,
    ablation_lazy_rebuild_specs,
    expand,
    kary_table_specs,
    register_scenario,
    remark10_specs,
    scenario_names,
    table8_specs,
)
from repro.scenarios.core import (
    ScenarioResult,
    run_cells,
    run_scenario,
    run_specs,
)
from repro.scenarios.sink import (
    JsonlResultSink,
    default_results_path,
    iter_results_jsonl,
    read_results_jsonl,
    results_root,
)
from repro.scenarios.cache import (
    RESULT_CACHE_VERSION,
    ResultCache,
    default_cache_dir,
    spec_cache_key,
)

__all__ = [
    "ANALYTIC_ALGORITHMS",
    "COST_MODELS",
    "DEFAULT_ONLINE_ENGINE",
    "ScenarioSpec",
    "ScenarioResult",
    "specs_to_json",
    "specs_from_json",
    "kary_table_specs",
    "table8_specs",
    "remark10_specs",
    "ablation_cost_model_specs",
    "ablation_lazy_rebuild_specs",
    "register_scenario",
    "scenario_names",
    "expand",
    "run_scenario",
    "run_cells",
    "run_specs",
    "JsonlResultSink",
    "default_results_path",
    "iter_results_jsonl",
    "read_results_jsonl",
    "results_root",
    "RESULT_CACHE_VERSION",
    "ResultCache",
    "default_cache_dir",
    "spec_cache_key",
]
