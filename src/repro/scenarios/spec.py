"""Declarative experiment cells: the frozen :class:`ScenarioSpec`.

The paper's evaluation is a grid of (workload × algorithm × arity × cost
model) cells.  A :class:`ScenarioSpec` names one such cell as *data* — six
trace/algorithm coordinates plus engine and cost-model selectors — with a
lossless JSON round-trip, so whole experiment campaigns can be exported,
diffed, version-controlled and re-run without touching Python code.  The
registry (:mod:`repro.scenarios.registry`) expands the paper's Tables 1–8
and Remark 10 into spec lists; the execution core
(:mod:`repro.scenarios.core`) runs any spec list serially or across worker
processes.

Three cell kinds share the one spec shape:

``online``
    A self-adjusting network served a trace through the simulator
    (algorithms in :func:`repro.net.online_algorithms`).
``static``
    A static tree costed against a trace via the distance oracle
    (algorithms in :func:`repro.net.static_algorithms`).
``analytic``
    A closed-form quantity with no trace at all (``m = 0``) — the Remark 10
    all-pairs distance grid (algorithms in :data:`ANALYTIC_ALGORITHMS`).

Algorithm names resolve against the network construction registry
(:mod:`repro.net.registry`), so a :func:`repro.net.register_network` call
makes a new algorithm schedulable as a scenario cell with no changes here.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.core.engine import ENGINES
from repro.errors import ExperimentError
from repro.net.registry import (
    engine_capable_algorithms,
    online_algorithms,
    static_algorithms,
)
from repro.net.spec import freeze_params
from repro.parallel.tasks import SimulationTask

__all__ = [
    "ANALYTIC_ALGORITHMS",
    "COST_MODELS",
    "DEFAULT_ONLINE_ENGINE",
    "ScenarioSpec",
    "specs_to_json",
    "specs_from_json",
]

#: Trace-free cell kinds: uniform all-pairs distance of a built tree
#: (Remark 10's grid).  Costs are in unordered-pair units (Σ_{u<v} d(u,v)).
ANALYTIC_ALGORITHMS = (
    "centroid-tree-distance",
    "optimal-uniform-distance",
    "complete-tree-distance",
)

#: Cost-model names a spec may carry (see :mod:`repro.network.cost`).
COST_MODELS = ("routing", "unit_rotations")

#: Engine used for engine-capable online cells when the spec leaves
#: ``engine=None`` — the flat structure-of-arrays backend, ~3× the object
#: engine on the serve hot loop (see ROADMAP.md / BENCH_engine_hotpath).
DEFAULT_ONLINE_ENGINE = "flat"


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment cell, fully described by data.

    Attributes
    ----------
    workload:
        Workload name understood by
        :func:`repro.parallel.tasks.materialize_trace` (``"uniform"``,
        ``"hpc"``, ``"temporal-0.5"``, ``"zipf-1.2"``, ...).  Analytic
        cells conventionally use ``"uniform"`` (the all-pairs demand).
    n, m, seed:
        Trace coordinates; ``m = 0`` for analytic cells.
    algorithm:
        A name registered in :mod:`repro.net.registry` (online or
        static) or one of :data:`ANALYTIC_ALGORITHMS`.
    k:
        Tree arity.
    engine:
        Tree-engine backend for engine-capable online algorithms.  ``None``
        (default) resolves to :data:`DEFAULT_ONLINE_ENGINE` at execution
        time; pass ``"object"`` explicitly for the reference backend.
    cost_model:
        Reporting convention the cell's totals are meant to be read under
        (``"routing"`` or ``"unit_rotations"``).  Raw totals are recorded
        either way; this selects :meth:`ScenarioResult.cost`.
    initial:
        Initial topology for ``kary-splaynet`` cells.
    group:
        Free-form provenance tag (e.g. ``"table3"``) stamped by the
        registry so flat result streams stay attributable.
    params:
        Free-form algorithm parameters (JSON scalars), frozen to sorted
        ``(name, value)`` pairs via :func:`repro.net.spec.freeze_params`
        and forwarded to the network constructor — e.g. ``alpha`` for the
        ``lazy`` rebuild threshold.  Part of the cell's identity: cells
        differing only in ``params`` hash, cache and store separately.
    """

    workload: str
    n: int
    m: int
    seed: int
    algorithm: str
    k: int = 2
    engine: Optional[str] = None
    cost_model: str = "routing"
    initial: str = "complete"
    group: str = ""
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        known = (
            online_algorithms() | static_algorithms() | set(ANALYTIC_ALGORITHMS)
        )
        if self.algorithm not in known:
            raise ExperimentError(
                f"unknown algorithm {self.algorithm!r}; choose from {sorted(known)}"
            )
        if self.n < 1:
            raise ExperimentError(f"n must be >= 1, got {self.n}")
        if self.m < 0:
            raise ExperimentError(f"m must be >= 0, got {self.m}")
        if self.k < 2:
            raise ExperimentError(f"k must be >= 2, got {self.k}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.cost_model not in COST_MODELS:
            raise ExperimentError(
                f"unknown cost model {self.cost_model!r}; choose from {COST_MODELS}"
            )
        if self.kind != "analytic" and self.m == 0:
            raise ExperimentError(
                f"{self.algorithm!r} cells serve a trace and need m >= 1"
            )

    # -- classification ------------------------------------------------
    @property
    def kind(self) -> str:
        """``"online"``, ``"static"`` or ``"analytic"``."""
        if self.algorithm in online_algorithms():
            return "online"
        if self.algorithm in static_algorithms():
            return "static"
        return "analytic"

    def resolved_engine(self) -> Optional[str]:
        """The engine this cell will actually run on.

        Engine-capable online cells default to
        :data:`DEFAULT_ONLINE_ENGINE`; every other kind has no engine.
        """
        if self.algorithm in engine_capable_algorithms():
            return self.engine or DEFAULT_ONLINE_ENGINE
        return None

    # -- bridges -------------------------------------------------------
    def task(self) -> SimulationTask:
        """The picklable worker task for this (non-analytic) cell."""
        if self.kind == "analytic":
            raise ExperimentError(
                f"analytic cell {self.algorithm!r} has no simulation task"
            )
        return SimulationTask(
            workload=self.workload,
            n=self.n,
            m=self.m,
            seed=self.seed,
            algorithm=self.algorithm,
            k=self.k,
            engine=self.resolved_engine(),
            initial=self.initial,
            params=self.params,
        )

    def params_dict(self) -> dict[str, Any]:
        """The frozen params as a plain keyword mapping."""
        return dict(self.params)

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields changed (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    def trace_key(self) -> tuple[str, int, int, int]:
        """The trace-memo key this cell materializes under."""
        return (self.workload, self.n, self.m, self.seed)

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON mapping; inverse of :meth:`from_dict`."""
        data = dataclasses.asdict(self)
        data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict on keys)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ExperimentError(
                f"unknown ScenarioSpec fields {sorted(unknown)}"
            )
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ExperimentError("ScenarioSpec JSON must be an object")
        return cls.from_dict(data)


def specs_to_json(specs: Iterable[ScenarioSpec], *, indent: int = 2) -> str:
    """Serialize a spec list as a JSON array (stable field order)."""
    return json.dumps([spec.to_dict() for spec in specs], indent=indent)


def specs_from_json(text: str) -> list[ScenarioSpec]:
    """Inverse of :func:`specs_to_json`."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ExperimentError("spec list JSON must be an array")
    return [ScenarioSpec.from_dict(item) for item in data]
