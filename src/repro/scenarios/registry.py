"""Named scenario sets: the paper's evaluation grid as spec lists.

Each entry expands one published experiment — Tables 1–7 (k-ary SplayNet vs
static trees per workload), Table 8 (the centroid case study) and Remark 10
(centroid-tree optimality on the uniform workload) — into a flat list of
:class:`~repro.scenarios.spec.ScenarioSpec` cells at a chosen
:class:`~repro.experiments.presets.Scale`.  A new experiment campaign costs
one registry entry (a function ``(scale, engine) -> list[ScenarioSpec]``),
not a new runner module: the execution core and the CLI pick it up by name.

>>> from repro.scenarios import expand
>>> specs = expand("table4")          # doctest: +SKIP
>>> [s.algorithm for s in specs[:3]]  # doctest: +SKIP
['kary-splaynet', 'full-tree', 'optimal-tree']
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.presets import Scale, WORKLOADS, get_scale
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "TABLE_WORKLOAD",
    "REMARK10_NS",
    "REMARK10_KS",
    "kary_table_specs",
    "table8_specs",
    "remark10_specs",
    "ablation_cost_model_specs",
    "ablation_lazy_rebuild_specs",
    "register_scenario",
    "scenario_names",
    "expand",
]

#: Paper table number → workload (Tables 1-7) — the single source of
#: truth; the experiment adapters (:mod:`repro.experiments.tables`) sit
#: *above* this layer and re-export it.
TABLE_WORKLOAD = {
    1: "hpc",
    2: "projector",
    3: "facebook",
    4: "temporal-0.25",
    5: "temporal-0.5",
    6: "temporal-0.75",
    7: "temporal-0.9",
}

#: The Remark 10 grid the paper sweeps.
REMARK10_NS = (10, 25, 50, 100, 200, 400, 600, 999)
REMARK10_KS = (2, 3, 4, 5, 7, 10)


def kary_table_specs(
    workload: str,
    scale: Optional[Scale] = None,
    *,
    n: Optional[int] = None,
    m: Optional[int] = None,
    seed: Optional[int] = None,
    ks: Optional[Sequence[int]] = None,
    include_optimal: bool = True,
    initial: str = "complete",
    engine: Optional[str] = None,
    group: str = "",
) -> list[ScenarioSpec]:
    """Cells of one of Tables 1–7: per arity, the online k-ary SplayNet,
    the full k-ary tree and (below the DP budget) the optimal static tree.

    Trace coordinates default to the scale's; pass ``n``/``m``/``seed`` to
    pin them explicitly (e.g. when costing a pre-built trace).
    """
    scale = scale or get_scale()
    n = n if n is not None else scale.workload_n(workload)
    m = m if m is not None else scale.m
    seed = seed if seed is not None else scale.seed
    ks = tuple(ks or scale.ks)
    want_optimal = include_optimal and n <= scale.optimal_tree_max_n
    group = group or f"kary-table:{workload}"
    specs: list[ScenarioSpec] = []
    for k in ks:
        common = dict(workload=workload, n=n, m=m, seed=seed, k=k, group=group)
        specs.append(
            ScenarioSpec(
                algorithm="kary-splaynet", engine=engine, initial=initial, **common
            )
        )
        specs.append(ScenarioSpec(algorithm="full-tree", **common))
        if want_optimal:
            specs.append(ScenarioSpec(algorithm="optimal-tree", **common))
    return specs


def table8_specs(
    scale: Optional[Scale] = None,
    *,
    workloads: Optional[Sequence[str]] = None,
    n: Optional[int] = None,
    m: Optional[int] = None,
    include_optimal: bool = True,
    engine: Optional[str] = None,
    group: str = "table8",
) -> list[ScenarioSpec]:
    """Cells of Table 8: per workload, 3-SplayNet (the k = 2 centroid
    heuristic), binary SplayNet, the full binary tree and (below the DP
    budget) the optimal static BST.

    ``n``/``m`` override the scale's coordinates for *every* listed
    workload — meant for the single-workload, explicit-trace case.
    """
    scale = scale or get_scale()
    specs: list[ScenarioSpec] = []
    for workload in workloads or WORKLOADS:
        wn = n if n is not None else scale.workload_n(workload)
        common = dict(
            workload=workload,
            n=wn,
            m=m if m is not None else scale.m,
            seed=scale.seed,
            k=2,
            group=group,
        )
        specs.append(
            ScenarioSpec(algorithm="centroid-splaynet", engine=engine, **common)
        )
        specs.append(ScenarioSpec(algorithm="splaynet", **common))
        specs.append(ScenarioSpec(algorithm="full-tree", **common))
        if include_optimal and wn <= scale.optimal_tree_max_n:
            specs.append(ScenarioSpec(algorithm="optimal-bst", **common))
    return specs


def remark10_specs(
    ns: Sequence[int] = REMARK10_NS,
    ks: Sequence[int] = REMARK10_KS,
    *,
    group: str = "remark10",
) -> list[ScenarioSpec]:
    """The Remark 10 grid: per (n, k), the centroid tree's all-pairs
    distance, the uniform-DP optimum and the full tree (analytic cells —
    no trace, ``m = 0``)."""
    specs: list[ScenarioSpec] = []
    for k in ks:
        for n in ns:
            for algorithm in (
                "centroid-tree-distance",
                "optimal-uniform-distance",
                "complete-tree-distance",
            ):
                specs.append(
                    ScenarioSpec(
                        workload="uniform",
                        n=n,
                        m=0,
                        seed=0,
                        algorithm=algorithm,
                        k=k,
                        group=group,
                    )
                )
    return specs


def ablation_cost_model_specs(
    scale: Optional[Scale] = None,
    *,
    engine: Optional[str] = None,
    group: str = "ablation-cost-model",
) -> list[ScenarioSpec]:
    """Cells of the cost-model ablation (``bench_ablation_cost_model``):
    3-SplayNet vs binary SplayNet on the two opposed workloads, each cell
    recorded under both reporting conventions.

    Raw totals are identical across the two ``cost_model`` variants of a
    cell (and the cache computes them once); registering both makes the
    reporting convention part of the stored record, the way the bench
    reads the same run under four cost models.
    """
    scale = scale or get_scale()
    n = 100
    m = min(scale.m, 20_000)
    specs: list[ScenarioSpec] = []
    for workload in ("projector", "temporal-0.9"):
        for algorithm in ("centroid-splaynet", "splaynet"):
            for cost_model in ("routing", "unit_rotations"):
                specs.append(
                    ScenarioSpec(
                        workload=workload,
                        n=n,
                        m=m,
                        seed=scale.seed,
                        algorithm=algorithm,
                        k=2,
                        engine=engine if algorithm == "centroid-splaynet" else None,
                        cost_model=cost_model,
                        group=group,
                    )
                )
    return specs


def ablation_lazy_rebuild_specs(
    scale: Optional[Scale] = None,
    *,
    engine: Optional[str] = None,
    alphas: Sequence[int] = (2_000, 10_000, 50_000),
    group: str = "ablation-lazy-rebuild",
) -> list[ScenarioSpec]:
    """Cells of the lazy-rebuild ablation (``bench_ablation_lazy_rebuild``):
    the fully-reactive 3-ary SplayNet against the partially-reactive
    threshold rebuilder across the rebuild-budget axis ``alphas`` — the
    first registered campaign to use per-cell ``params``.
    """
    scale = scale or get_scale()
    n = 64
    m = min(scale.m, 10_000)
    specs: list[ScenarioSpec] = []
    for workload in ("permutation", "temporal-0.5"):
        common = dict(workload=workload, n=n, m=m, seed=scale.seed, group=group)
        specs.append(
            ScenarioSpec(algorithm="kary-splaynet", k=3, engine=engine, **common)
        )
        for alpha in alphas:
            specs.append(
                ScenarioSpec(
                    algorithm="lazy", k=3, params={"alpha": alpha}, **common
                )
            )
    return specs


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
ScenarioBuilder = Callable[[Scale, Optional[str]], list[ScenarioSpec]]

_REGISTRY: dict[str, ScenarioBuilder] = {}


def register_scenario(name: str, builder: ScenarioBuilder) -> None:
    """Add (or replace) a named scenario set.

    ``builder(scale, engine)`` must return the expanded spec list; the
    scenario then shows up in :func:`scenario_names`, :func:`expand` and
    the ``repro scenarios`` CLI.
    """
    if not name:
        raise ExperimentError("scenario name must be non-empty")
    _REGISTRY[name] = builder


def _table_builder(number: int) -> ScenarioBuilder:
    workload = TABLE_WORKLOAD[number]

    def build(scale: Scale, engine: Optional[str]) -> list[ScenarioSpec]:
        return kary_table_specs(
            workload, scale, engine=engine, group=f"table{number}"
        )

    return build


for _number in sorted(TABLE_WORKLOAD):
    register_scenario(f"table{_number}", _table_builder(_number))

register_scenario(
    "table8", lambda scale, engine: table8_specs(scale, engine=engine)
)
register_scenario(
    "remark10", lambda scale, engine: remark10_specs()
)
register_scenario(
    # An extra, non-paper campaign showing the marginal cost of a new
    # scenario: one registry line.  Zipf(1.2) traffic across the arity axis.
    "zipf",
    lambda scale, engine: kary_table_specs(
        "zipf-1.2", scale, n=scale.uniform_n, engine=engine, group="zipf"
    ),
)
register_scenario(
    # The ablation benches as first-class campaigns: their cells flow
    # through the store/cache/resume machinery like any paper table.
    "ablation-cost-model",
    lambda scale, engine: ablation_cost_model_specs(scale, engine=engine),
)
register_scenario(
    "ablation-lazy-rebuild",
    lambda scale, engine: ablation_lazy_rebuild_specs(scale, engine=engine),
)


def _build_all(scale: Scale, engine: Optional[str]) -> list[ScenarioSpec]:
    specs: list[ScenarioSpec] = []
    for number in sorted(TABLE_WORKLOAD):
        specs.extend(_REGISTRY[f"table{number}"](scale, engine))
    specs.extend(_REGISTRY["table8"](scale, engine))
    specs.extend(_REGISTRY["remark10"](scale, engine))
    return specs


register_scenario("all", _build_all)


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def expand(
    name: str,
    scale: Optional[Scale] = None,
    *,
    engine: Optional[str] = None,
) -> list[ScenarioSpec]:
    """Expand a registered scenario into its spec list at a scale."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    return builder(scale or get_scale(), engine)
