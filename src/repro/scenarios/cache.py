"""Per-cell result cache keyed on the spec's behavioural fingerprint.

A scenario cell is pure computation: its totals are fully determined by
the trace coordinates, the algorithm and the arity.  This module persists
each computed :class:`~repro.scenarios.core.ScenarioResult` under a
content key derived from exactly those fields, so re-running a campaign
— after a crash, on another scale's shared cells, or across the
``run_all`` grid — recomputes only cells whose work is genuinely new.

**What is in the key** (see :func:`spec_cache_key`): workload, ``n``,
``m``, ``seed``, algorithm, ``k``, the *resolved* engine, the initial
topology and the algorithm ``params``, plus :data:`RESULT_CACHE_VERSION`.  ``group`` (provenance) and
``cost_model`` (a reporting convention over the recorded raw totals) are
deliberately excluded — the same cell reached through different campaigns
is the same work.  ``engine=None`` and an explicit ``engine="flat"``
resolve to the same key; ``engine="object"`` caches separately so
cross-engine checks always exercise both backends.

**What invalidates an entry**: any key field changing, or a bump of
:data:`RESULT_CACHE_VERSION` — bump it whenever algorithm/trace semantics
change so recorded totals for the same spec would differ.  ``--refresh``
(or ``refresh=True`` on ``run_specs``) bypasses lookups and overwrites.

Entries are one JSON file per cell under ``<results_root>/cache/`` (env
override ``REPRO_RESULTS_DIR``), written atomically, so parallel
campaigns can share a cache directory.  The ``REPRO_RESULT_CACHE``
environment variable opts un-configured ``run_specs`` calls in
(``1``/``true``) and opts cache-on-by-default surfaces like ``repro
scenarios run`` out (``0``/``false``) — the CI matrix runs the
equivalence suite both ways.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

from repro.scenarios.core import ScenarioResult
from repro.scenarios.sink import results_root
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "RESULT_CACHE_VERSION",
    "RESULT_CACHE_ENV",
    "ResultCache",
    "default_cache_dir",
    "env_disables_cache",
    "resolve_result_cache",
    "spec_cache_key",
]

#: Bump when a code change alters what any cached spec would compute
#: (workload generation, serve semantics, cost accounting, ...).
RESULT_CACHE_VERSION = 1

#: Environment opt-in for callers that leave ``run_specs(cache=None)``.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


def env_disables_cache() -> bool:
    """Whether ``REPRO_RESULT_CACHE`` is explicitly set to a falsy value.

    Surfaces that default the cache *on* (``repro scenarios run``) honor
    this as an opt-out, so the env var can force fresh computation
    everywhere without per-command ``--no-cache`` flags.
    """
    value = os.environ.get(RESULT_CACHE_ENV)
    return value is not None and value.strip().lower() in _FALSY


def default_cache_dir() -> Path:
    """``<results_root>/cache`` — next to the JSONL records it derives from."""
    return results_root() / "cache"


def _key_fields(spec: ScenarioSpec) -> dict[str, Any]:
    """The behaviour-determining coordinates of a cell (see module doc)."""
    return {
        "version": RESULT_CACHE_VERSION,
        "workload": spec.workload,
        "n": spec.n,
        "m": spec.m,
        "seed": spec.seed,
        "algorithm": spec.algorithm,
        "k": spec.k,
        "engine": spec.resolved_engine(),
        "initial": spec.initial,
        "params": dict(spec.params),
    }


def spec_cache_key(spec: ScenarioSpec) -> str:
    """Stable content hash of a spec's behavioural fingerprint."""
    payload = json.dumps(_key_fields(spec), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory-backed cell cache with hit/miss/store counters.

    ``lookup`` returns the stored result re-attached to the *requested*
    spec (so provenance fields like ``group`` follow the campaign asking,
    not the campaign that computed).  ``store`` writes atomically via a
    sibling temp file, so concurrent campaigns sharing the directory
    never observe torn entries.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for ``spec``, or ``None`` on any doubt."""
        key = spec_cache_key(spec)
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        # Paranoia: the stored fingerprint must match the request exactly
        # (guards version bumps racing old files and hash collisions).
        if data.get("key_fields") != _key_fields(spec):
            self.misses += 1
            return None
        result = data.get("result")
        try:
            restored = ScenarioResult(
                spec=spec,
                total_routing=result["total_routing"],
                total_rotations=result["total_rotations"],
                total_links_changed=result["total_links_changed"],
                elapsed_seconds=result.get("elapsed_seconds", 0.0),
            )
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return restored

    def store(self, result: ScenarioResult) -> Path:
        """Persist one computed cell (atomic overwrite); returns its path."""
        key = spec_cache_key(result.spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key_fields": _key_fields(result.spec),
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


def resolve_result_cache(
    cache: Union["ResultCache", bool, None]
) -> Optional[ResultCache]:
    """Normalize a ``run_specs``-style ``cache`` argument.

    ``ResultCache`` instances pass through; ``True`` means the default
    cache directory; ``False`` disables caching unconditionally; ``None``
    defers to the ``REPRO_RESULT_CACHE`` environment variable (off unless
    truthy).
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache()
    if cache is False:
        return None
    if os.environ.get(RESULT_CACHE_ENV, "").strip().lower() in _TRUTHY:
        return ResultCache()
    return None
