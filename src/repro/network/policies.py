"""Adjustment policies: when should a self-adjusting network actually adjust?

The paper's cost model (Section 2) charges both routing and reconfiguration,
and its Section 5.1 notes that reconfiguring a high-degree node plausibly
costs more than a degree-3 one.  Fully reactive splaying (adjust after
*every* request) is only one point on the spectrum [13]; these wrappers
expose the rest without touching the underlying network:

* :class:`ThresholdedNetwork` — splay only when the request's routing
  distance exceeds a threshold.  Cheap requests (already-adjacent hot
  pairs) stop paying rotation costs; cold requests still trigger
  adaptation.
* :class:`ProbabilisticNetwork` — splay each request with probability
  ``q`` (lazy/randomized splaying).  In expectation this scales the
  adjustment budget by ``q`` while keeping every request eligible.
* :class:`FrozenNetwork` — never adjust (turns any SAN into its
  own static baseline, so ablations compare like with like).

All three wrap any :class:`~repro.network.protocols.SelfAdjustingNetwork`
that additionally exposes ``distance(u, v)`` (every tree network here
does), and report honest :class:`ServeResult` costs: the routing cost is
always the distance in the topology the request actually saw.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ExperimentError
from repro.network.protocols import ServeResult

__all__ = ["ThresholdedNetwork", "ProbabilisticNetwork", "FrozenNetwork"]


class _Wrapper:
    """Shared plumbing: delegate everything except the serve decision."""

    def __init__(self, inner) -> None:
        if not hasattr(inner, "serve") or not hasattr(inner, "distance"):
            raise ExperimentError(
                "wrapped network must expose serve(u, v) and distance(u, v)"
            )
        self.inner = inner

    @property
    def n(self) -> int:
        return self.inner.n

    def distance(self, u: int, v: int) -> int:
        return self.inner.distance(u, v)

    def validate(self) -> None:
        validate = getattr(self.inner, "validate", None)
        if validate is not None:
            validate()


class ThresholdedNetwork(_Wrapper):
    """Adjust only when the request is routed over more than ``threshold``
    edges.

    ``threshold = 0`` reproduces the fully reactive inner network;
    ``threshold >= diameter`` freezes it.  The sweet spot depends on the
    workload's locality — the adjustment-policy ablation bench sweeps it.
    """

    def __init__(self, inner, threshold: int) -> None:
        super().__init__(inner)
        if threshold < 0:
            raise ExperimentError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        #: counters for the ablation reports
        self.served = 0
        self.adjusted = 0

    def serve(self, u: int, v: int) -> ServeResult:
        self.served += 1
        d = self.inner.distance(u, v)
        if d <= self.threshold:
            return ServeResult(d, 0, 0)
        self.adjusted += 1
        return self.inner.serve(u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThresholdedNetwork(threshold={self.threshold}, inner={self.inner!r})"


class ProbabilisticNetwork(_Wrapper):
    """Adjust each request independently with probability ``q``.

    ``q = 1`` is fully reactive, ``q = 0`` is frozen.  The decision stream
    is seeded, so runs are reproducible.
    """

    def __init__(self, inner, q: float, *, seed: Optional[int] = None) -> None:
        super().__init__(inner)
        if not 0.0 <= q <= 1.0:
            raise ExperimentError(f"q must be in [0, 1], got {q}")
        self.q = q
        self._rng = np.random.default_rng(seed)
        self.served = 0
        self.adjusted = 0

    def serve(self, u: int, v: int) -> ServeResult:
        self.served += 1
        if self.q > 0.0 and self._rng.random() < self.q:
            self.adjusted += 1
            return self.inner.serve(u, v)
        return ServeResult(self.inner.distance(u, v), 0, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbabilisticNetwork(q={self.q}, inner={self.inner!r})"


class FrozenNetwork(_Wrapper):
    """Never adjust: the inner network's *current* topology as a static
    baseline (e.g. freeze a warmed-up SplayNet and replay the tail)."""

    def serve(self, u: int, v: int) -> ServeResult:
        return ServeResult(self.inner.distance(u, v), 0, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenNetwork(inner={self.inner!r})"
