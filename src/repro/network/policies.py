"""Adjustment policies: when should a self-adjusting network actually adjust?

The paper's cost model (Section 2) charges both routing and reconfiguration,
and its Section 5.1 notes that reconfiguring a high-degree node plausibly
costs more than a degree-3 one.  Fully reactive splaying (adjust after
*every* request) is only one point on the spectrum [13]; these wrappers
expose the rest without touching the underlying network:

* :class:`ThresholdedNetwork` — splay only when the request's routing
  distance exceeds a threshold.  Cheap requests (already-adjacent hot
  pairs) stop paying rotation costs; cold requests still trigger
  adaptation.
* :class:`ProbabilisticNetwork` — splay each request with probability
  ``q`` (lazy/randomized splaying).  In expectation this scales the
  adjustment budget by ``q`` while keeping every request eligible.
* :class:`FrozenNetwork` — never adjust (turns any SAN into its
  own static baseline, so ablations compare like with like).

All three wrap any :class:`~repro.network.protocols.SelfAdjustingNetwork`
that additionally exposes ``distance(u, v)`` (every tree network here
does), and report honest :class:`ServeResult` costs: the routing cost is
always the distance in the topology the request actually saw.

Wrapped networks are batch-servable: every wrapper exposes ``serve_trace``
with semantics identical to the per-request loop (policy decisions are
taken request by request, in order), so the
:class:`~repro.network.simulator.Simulator` fast path and
:meth:`Session.serve_stream <repro.net.session.Session.serve_stream>`
engage for wrapped networks exactly as for bare ones.  The accumulation is
chunked *between policy decisions*: the scalar core runs one decision at a
time, and :class:`FrozenNetwork` — whose whole batch is a single static
stretch (the policy never adjusts) — vectorizes it in one oracle query.
In the spec-driven API these wrappers are the policy chain of a
:class:`~repro.net.spec.NetworkSpec` (``policies=[...]``); see
:data:`repro.net.registry.POLICY_WRAPPERS`.
"""

from __future__ import annotations

import copy
from typing import Optional

import numpy as np

from repro.core.engine import batch_serve
from repro.errors import ExperimentError
from repro.network.protocols import BatchServeResult, ServeResult

__all__ = ["ThresholdedNetwork", "ProbabilisticNetwork", "FrozenNetwork"]


class _Wrapper:
    """Shared plumbing: delegate everything except the serve decision.

    Subclasses implement ``_serve_totals(u, v) -> (routing, rotations,
    links)`` — the scalar decision core shared by :meth:`serve` (which
    wraps it in a :class:`ServeResult`) and :meth:`serve_trace` (which
    accumulates bare tuples without per-request object construction).
    """

    def __init__(self, inner) -> None:
        if not hasattr(inner, "serve") or not hasattr(inner, "distance"):
            raise ExperimentError(
                "wrapped network must expose serve(u, v) and distance(u, v)"
            )
        self.inner = inner
        # The inner scalar core when the network exposes one (the k-ary
        # SplayNets do); falls back to unpacking ServeResult objects.
        inner_totals = getattr(inner, "_serve_totals", None)
        if inner_totals is None:
            def inner_totals(u: int, v: int) -> tuple[int, int, int]:
                result = inner.serve(u, v)
                return (
                    result.routing_cost,
                    result.rotations,
                    result.links_changed,
                )
        self._inner_totals = inner_totals

    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def k(self) -> int:
        return self.inner.k

    def distance(self, u: int, v: int) -> int:
        return self.inner.distance(u, v)

    def validate(self) -> None:
        validate = getattr(self.inner, "validate", None)
        if validate is not None:
            validate()

    # -- serving -------------------------------------------------------
    def _serve_totals(self, u: int, v: int) -> tuple[int, int, int]:
        raise NotImplementedError

    def serve(self, u: int, v: int) -> ServeResult:
        return ServeResult(*self._serve_totals(u, v))

    def serve_trace(
        self,
        sources,
        targets=None,
        *,
        record_series: bool = False,
    ) -> BatchServeResult:
        """Serve a whole batch under the policy; identical semantics to
        per-request :meth:`serve` (decisions are taken in request order).
        """
        return batch_serve(
            self._serve_totals, sources, targets, record_series=record_series
        )

    # -- checkpointing -------------------------------------------------
    def _extra_state(self) -> dict:
        """Policy-local state beyond the inner network (counters, RNG)."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        pass

    def snapshot_state(self) -> dict:
        """Checkpoint: inner network state + policy-local state."""
        snapshot_inner = getattr(self.inner, "snapshot_state", None)
        if snapshot_inner is None:
            raise ExperimentError(
                f"wrapped {type(self.inner).__name__} does not support"
                " snapshots (no snapshot_state/restore_state)"
            )
        return {"inner": snapshot_inner(), "extra": self._extra_state()}

    def restore_state(self, state: dict) -> None:
        """Rewind to a :meth:`snapshot_state` checkpoint."""
        self.inner.restore_state(state["inner"])
        self._restore_extra(state["extra"])


class ThresholdedNetwork(_Wrapper):
    """Adjust only when the request is routed over more than ``threshold``
    edges.

    ``threshold = 0`` reproduces the fully reactive inner network;
    ``threshold >= diameter`` freezes it.  The sweet spot depends on the
    workload's locality — the adjustment-policy ablation bench sweeps it.
    """

    def __init__(self, inner, threshold: int) -> None:
        super().__init__(inner)
        if threshold < 0:
            raise ExperimentError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        #: counters for the ablation reports
        self.served = 0
        self.adjusted = 0

    def _serve_totals(self, u: int, v: int) -> tuple[int, int, int]:
        self.served += 1
        d = self.inner.distance(u, v)
        if d <= self.threshold:
            return d, 0, 0
        self.adjusted += 1
        return self._inner_totals(u, v)

    def _extra_state(self) -> dict:
        return {"served": self.served, "adjusted": self.adjusted}

    def _restore_extra(self, extra: dict) -> None:
        self.served = extra["served"]
        self.adjusted = extra["adjusted"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThresholdedNetwork(threshold={self.threshold}, inner={self.inner!r})"


class ProbabilisticNetwork(_Wrapper):
    """Adjust each request independently with probability ``q``.

    ``q = 1`` is fully reactive, ``q = 0`` is frozen.  The decision stream
    is seeded, so runs are reproducible — and it is checkpointed with the
    network, so a restored session replays identical coin flips.
    """

    def __init__(self, inner, q: float, *, seed: Optional[int] = None) -> None:
        super().__init__(inner)
        if not 0.0 <= q <= 1.0:
            raise ExperimentError(f"q must be in [0, 1], got {q}")
        self.q = q
        self._rng = np.random.default_rng(seed)
        self.served = 0
        self.adjusted = 0

    def _serve_totals(self, u: int, v: int) -> tuple[int, int, int]:
        self.served += 1
        if self.q > 0.0 and self._rng.random() < self.q:
            self.adjusted += 1
            return self._inner_totals(u, v)
        return self.inner.distance(u, v), 0, 0

    def _extra_state(self) -> dict:
        return {
            "served": self.served,
            "adjusted": self.adjusted,
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
        }

    def _restore_extra(self, extra: dict) -> None:
        self.served = extra["served"]
        self.adjusted = extra["adjusted"]
        self._rng.bit_generator.state = copy.deepcopy(extra["rng_state"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbabilisticNetwork(q={self.q}, inner={self.inner!r})"


class FrozenNetwork(_Wrapper):
    """Never adjust: the inner network's *current* topology as a static
    baseline (e.g. freeze a warmed-up SplayNet and replay the tail)."""

    def __init__(self, inner) -> None:
        super().__init__(inner)
        # Built on first batched serve; valid for the wrapper's lifetime
        # because the policy never adjusts (restore_state drops it, since
        # a restore is the one sanctioned way the topology can change).
        self._oracle = None

    def _serve_totals(self, u: int, v: int) -> tuple[int, int, int]:
        return self.inner.distance(u, v), 0, 0

    def _restore_extra(self, extra: dict) -> None:
        self._oracle = None

    def serve_trace(
        self,
        sources,
        targets=None,
        *,
        record_series: bool = False,
    ) -> BatchServeResult:
        """A frozen batch is one static stretch: vectorize it outright.

        The policy never adjusts, so every batch sees one topology; if the
        inner network can export it (a ``tree`` attribute, as every tree
        network here has), batches collapse into vectorized queries
        against a distance oracle built once per wrapper — the same fast
        path as :class:`~repro.network.static.StaticTreeNetwork`.
        Networks without an exportable tree fall back to the scalar
        decision loop.
        """
        oracle = self._oracle
        if oracle is None:
            tree = getattr(self.inner, "tree", None)
            if tree is None:
                return super().serve_trace(
                    sources, targets, record_series=record_series
                )
            from repro.analysis.distance import TreeDistanceOracle

            oracle = self._oracle = TreeDistanceOracle.from_tree(tree)
        from repro.core.engine import as_request_arrays

        us, vs = as_request_arrays(sources, targets)
        costs = oracle.distances(us, vs)
        routing_series = rotation_series = None
        if record_series:
            routing_series = costs.astype(np.int64, copy=False)
            rotation_series = np.zeros(len(us), dtype=np.int64)
        return BatchServeResult(
            len(us), int(costs.sum()), 0, 0, routing_series, rotation_series
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenNetwork(inner={self.inner!r})"
