"""network subpackage — see module docstrings."""
