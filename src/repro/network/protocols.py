"""Protocols shared by every self-adjusting network implementation.

A *self-adjusting network* (SAN) serves a stream of communication requests
``(u, v)`` and may reconfigure itself after each one.  The paper's cost model
(Section 2) charges the tree distance between the endpoints in the topology
*before* the adjustment, plus a reconfiguration cost; implementations report
both through :class:`ServeResult` and the simulator folds them into totals
via a :class:`~repro.network.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["ServeResult", "SelfAdjustingNetwork"]


@dataclass(frozen=True, slots=True)
class ServeResult:
    """Outcome of serving one communication request.

    Attributes
    ----------
    routing_cost:
        Tree distance (in edges) between the endpoints in the topology in
        place when the request arrived.
    rotations:
        Number of local transformations applied while adjusting (each
        ``k-semi-splay`` or ``k-splay`` counts as one, matching the paper's
        unit rotation cost).
    links_changed:
        Number of physical links added plus removed by the adjustment (the
        paper's alternative reconfiguration-cost measure from Section 2).
    """

    routing_cost: int
    rotations: int = 0
    links_changed: int = 0

    def __add__(self, other: "ServeResult") -> "ServeResult":
        return ServeResult(
            self.routing_cost + other.routing_cost,
            self.rotations + other.rotations,
            self.links_changed + other.links_changed,
        )


@runtime_checkable
class SelfAdjustingNetwork(Protocol):
    """The interface every network (static or self-adjusting) implements."""

    @property
    def n(self) -> int:
        """Number of network nodes."""
        ...

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve the request ``(u, v)`` and (possibly) self-adjust."""
        ...
