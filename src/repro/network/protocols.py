"""Protocols shared by every self-adjusting network implementation.

A *self-adjusting network* (SAN) serves a stream of communication requests
``(u, v)`` and may reconfigure itself after each one.  The paper's cost model
(Section 2) charges the tree distance between the endpoints in the topology
*before* the adjustment, plus a reconfiguration cost; implementations report
both through :class:`ServeResult` and the simulator folds them into totals
via a :class:`~repro.network.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ServeResult",
    "BatchServeResult",
    "SelfAdjustingNetwork",
    "BatchServingNetwork",
]


@dataclass(frozen=True, slots=True)
class ServeResult:
    """Outcome of serving one communication request.

    Attributes
    ----------
    routing_cost:
        Tree distance (in edges) between the endpoints in the topology in
        place when the request arrived.
    rotations:
        Number of local transformations applied while adjusting (each
        ``k-semi-splay`` or ``k-splay`` counts as one, matching the paper's
        unit rotation cost).
    links_changed:
        Number of physical links added plus removed by the adjustment (the
        paper's alternative reconfiguration-cost measure from Section 2).
    """

    routing_cost: int
    rotations: int = 0
    links_changed: int = 0

    def __add__(self, other: "ServeResult") -> "ServeResult":
        return ServeResult(
            self.routing_cost + other.routing_cost,
            self.rotations + other.rotations,
            self.links_changed + other.links_changed,
        )


@dataclass(frozen=True, slots=True)
class BatchServeResult:
    """Accumulated outcome of serving a whole request batch.

    The batched serve path (``network.serve_trace``) skips per-request
    :class:`ServeResult` construction and reports scalar totals; the
    optional per-request series are only materialized when the caller asks
    for them (``record_series=True``).
    """

    m: int
    total_routing: int
    total_rotations: int = 0
    total_links_changed: int = 0
    routing_series: Optional[np.ndarray] = None
    rotation_series: Optional[np.ndarray] = None


@runtime_checkable
class SelfAdjustingNetwork(Protocol):
    """The interface every network (static or self-adjusting) implements."""

    @property
    def n(self) -> int:
        """Number of network nodes."""
        ...

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve the request ``(u, v)`` and (possibly) self-adjust."""
        ...


@runtime_checkable
class BatchServingNetwork(Protocol):
    """Networks that additionally expose the batched serve fast path."""

    def serve_trace(
        self, sources, targets=None, *, record_series: bool = False
    ) -> BatchServeResult:
        """Serve parallel ``(u, v)`` endpoint arrays; returns totals."""
        ...
