"""Lazy (threshold-triggered) rebuilding — the [13] meta-algorithm.

The paper's introduction describes the partially-reactive alternative to
per-request splaying: *"the topology changes every time the routing cost
reaches a threshold α since the last topology update, the new topology is
computed using [a static demand-aware construction], and it remains static
until the routing cost reaches the threshold again.  This approach can be
generalized to a meta-algorithm …  Therefore, the efficient computation of
static demand-aware topologies is also relevant in online SAN algorithm
design."*

:class:`LazyRebuildNetwork` is that meta-algorithm instantiated with the
paper's own Theorem 2 DP as the rebuild subroutine: it serves requests on a
static k-ary search tree, accumulates routing cost and the empirical demand,
and whenever the accumulated cost exceeds ``alpha`` recomputes the optimal
static tree for the demand seen so far (optionally over a sliding window).
Reconfiguration cost is reported as the link difference between the old and
new topologies, per Section 2.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.analysis.distance import TreeDistanceOracle
from repro.core.builders import build_complete_tree
from repro.core.engine import as_request_arrays
from repro.errors import ExperimentError
from repro.network.protocols import BatchServeResult, ServeResult
from repro.optimal.general import optimal_static_tree
from repro.workloads.demand import DemandMatrix

__all__ = ["LazyRebuildNetwork"]


class LazyRebuildNetwork:
    """A partially-reactive SAN: static tree + threshold-triggered rebuilds.

    Parameters
    ----------
    n:
        Number of nodes.
    k:
        Arity of the search trees.
    alpha:
        Rebuild threshold: accumulated routing cost since the last rebuild
        that triggers recomputation.  Small α adapts fast but pays frequent
        reconfiguration; large α degenerates to a static tree.
    window:
        If given, only the last ``window`` requests contribute demand
        (adapts to drifting traffic); otherwise demand accumulates forever.
    """

    def __init__(
        self,
        n: int,
        k: int = 2,
        *,
        alpha: float = 10_000.0,
        window: Optional[int] = None,
    ) -> None:
        if alpha <= 0:
            raise ExperimentError(f"alpha must be positive, got {alpha}")
        if window is not None and window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        self._n = n
        self._k = k
        self.alpha = alpha
        self.window = window
        self.tree = build_complete_tree(n, k)
        self._oracle = TreeDistanceOracle.from_tree(self.tree)
        self._counts = np.zeros((n, n), dtype=np.int64)
        self._history: deque[tuple[int, int]] = deque()
        self._cost_since_rebuild = 0.0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    def distance(self, u: int, v: int) -> int:
        return self._oracle.distance(u, v)

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve ``(u, v)``; rebuild when the cost threshold is crossed."""
        if u == v:
            return ServeResult(0, 0, 0)
        cost = self._oracle.distance(u, v)
        self._cost_since_rebuild += cost
        self._counts[u - 1, v - 1] += 1
        if self.window is not None:
            self._history.append((u, v))
            if len(self._history) > self.window:
                ou, ov = self._history.popleft()
                self._counts[ou - 1, ov - 1] -= 1
        links = 0
        rebuilt = 0
        if self._cost_since_rebuild >= self.alpha:
            links = self._rebuild()  # may be 0 when the optimum is unchanged
            rebuilt = 1
        return ServeResult(cost, rebuilt, links)

    def serve_trace(
        self,
        sources,
        targets=None,
        *,
        record_series: bool = False,
    ) -> BatchServeResult:
        """Serve a whole batch, vectorizing the static stretches.

        Between rebuilds the topology is fixed, so the batched path computes
        request distances in vectorized oracle queries over geometrically
        growing windows (bounding total work to O(m) even when rebuilds are
        frequent), finds the threshold crossing by cumulative sum, and only
        then pays for a rebuild — identical request-by-request semantics to
        :meth:`serve` (demand counts are read exclusively at rebuild time,
        and self-pairs are served at cost 0 without entering the demand).
        """
        us_all, vs_all = as_request_arrays(sources, targets)
        m = len(us_all)
        routing_series = rotation_series = None
        if record_series:
            routing_series = np.zeros(m, dtype=np.int64)
            rotation_series = np.zeros(m, dtype=np.int64)
        total_routing = 0
        total_rebuilds = 0
        total_links = 0
        start = 0
        while start < m:
            # Grow the lookahead window geometrically until it contains the
            # threshold crossing (or the end of the trace); recomputation
            # under growth is bounded by a constant factor of the stretch.
            threshold = self.alpha - self._cost_since_rebuild
            window = 2048
            while True:
                stop_at = min(start + window, m)
                costs = self._oracle.distances(
                    us_all[start:stop_at], vs_all[start:stop_at]
                )
                cum = np.cumsum(costs)
                # First index whose cumulative cost crosses the threshold;
                # the scalar path rebuilds *after* serving that request.
                idx = int(np.searchsorted(cum, threshold))
                if idx < len(costs) or stop_at == m:
                    break
                window *= 4
            trigger = idx < len(costs)
            end = start + idx + 1 if trigger else m
            chunk_costs = costs[: end - start]
            chunk_sum = int(chunk_costs.sum())
            total_routing += chunk_sum
            self._cost_since_rebuild += float(chunk_sum)
            cu = us_all[start:end]
            cv = vs_all[start:end]
            # The scalar serve skips u == v entirely: cost 0, no demand.
            real = cu != cv
            if not real.all():
                cu = cu[real]
                cv = cv[real]
            np.add.at(self._counts, (cu - 1, cv - 1), 1)
            if self.window is not None:
                self._history.extend(zip(cu.tolist(), cv.tolist()))
                while len(self._history) > self.window:
                    ou, ov = self._history.popleft()
                    self._counts[ou - 1, ov - 1] -= 1
            if record_series:
                routing_series[start:end] = chunk_costs
            if trigger:
                total_links += self._rebuild()
                total_rebuilds += 1
                if record_series:
                    rotation_series[end - 1] = 1
            start = end
        return BatchServeResult(
            m,
            total_routing,
            total_rebuilds,
            total_links,
            routing_series,
            rotation_series,
        )

    def _rebuild(self) -> int:
        """Recompute the optimal static tree for the observed demand."""
        from repro.optimal.context import DemandContext

        demand = DemandMatrix(self._n, dense=self._counts.copy())
        # One-shot context: the observed demand evolves between rebuilds
        # and would never hit the process-wide content-hash memo — going
        # through it would only pay the fingerprint and pin dead O(n²)
        # contexts in the bounded cache.
        result = optimal_static_tree(
            demand, self._k, context=DemandContext.from_demand(demand)
        )
        old_edges = self.tree.edge_set()
        self.tree = result.tree
        self._oracle = TreeDistanceOracle.from_tree(self.tree)
        self._cost_since_rebuild = 0.0
        self.rebuilds += 1
        return len(old_edges ^ self.tree.edge_set())

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Checkpoint topology *and* accumulation state.

        A lazy network's behaviour depends on more than its tree: the
        demand counters, sliding-window history and the cost accumulated
        toward the next rebuild all steer future decisions, so they are
        captured (and restored) together — a restore mid-stream replays
        the exact rebuild schedule the original run would have had.
        """
        return {
            "tree": self.tree.clone(),
            "counts": self._counts.copy(),
            "history": list(self._history),
            "cost_since_rebuild": self._cost_since_rebuild,
            "rebuilds": self.rebuilds,
        }

    def restore_state(self, state: dict) -> None:
        """Rewind to a :meth:`snapshot_state` checkpoint."""
        tree = state["tree"]
        if tree.n != self._n:
            raise ExperimentError(
                f"snapshot has n={tree.n}, network has n={self._n}"
            )
        self.tree = tree.clone()
        self._oracle = TreeDistanceOracle.from_tree(self.tree)
        self._counts = state["counts"].copy()
        self._history = deque(state["history"])
        self._cost_since_rebuild = state["cost_since_rebuild"]
        self.rebuilds = state["rebuilds"]

    def validate(self) -> None:
        self.tree.validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyRebuildNetwork(n={self._n}, k={self._k}, alpha={self.alpha},"
            f" rebuilds={self.rebuilds})"
        )
