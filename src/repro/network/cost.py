"""The service cost model of Section 2.

Total cost = routing cost + reconfiguration cost.  The paper's experiments
set "the routing and rotation costs to one" and report *total routing cost*
(Section 5.1), i.e. reconfiguration is tracked but tables compare routing.
:class:`CostModel` makes the folding explicit so both conventions (and the
link-churn alternative) are one object away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.protocols import ServeResult

__all__ = ["CostModel", "ROUTING_ONLY", "UNIT_ROTATIONS", "LINK_CHURN"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Linear weighting of the three per-request cost components.

    Attributes
    ----------
    routing_weight:
        Multiplier for the pre-adjustment endpoint distance.
    rotation_cost:
        Cost per local transformation (the paper's unit rotation cost).
    link_cost:
        Cost per physical link added or removed (the Section 2
        reconfiguration measure).
    """

    routing_weight: float = 1.0
    rotation_cost: float = 0.0
    link_cost: float = 0.0

    def total(self, result: ServeResult) -> float:
        """Total cost of one (or an accumulated) :class:`ServeResult`."""
        return (
            self.routing_weight * result.routing_cost
            + self.rotation_cost * result.rotations
            + self.link_cost * result.links_changed
        )

    def describe(self) -> str:
        parts = [f"{self.routing_weight:g}*routing"]
        if self.rotation_cost:
            parts.append(f"{self.rotation_cost:g}*rotations")
        if self.link_cost:
            parts.append(f"{self.link_cost:g}*links")
        return " + ".join(parts)


#: The tables' convention: compare routing cost only.
ROUTING_ONLY = CostModel()

#: Section 5.1's stated model: every rotation costs one.
UNIT_ROTATIONS = CostModel(rotation_cost=1.0)

#: Section 2's reconfiguration measure: links added/removed cost one each.
LINK_CHURN = CostModel(link_cost=1.0)
