"""Static (non-adjusting) tree networks under the SAN serving interface.

The paper's static baselines — the full k-ary tree, the optimal
routing-based k-ary tree, the full binary tree, the optimal BST network —
serve requests at their tree distance and never reconfigure.  This wrapper
gives any tree that cost behaviour plus an O(1)-per-request fast path via a
precomputed :class:`~repro.analysis.distance.TreeDistanceOracle`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distance import TreeDistanceOracle
from repro.core.engine import as_request_arrays
from repro.network.protocols import BatchServeResult, ServeResult

__all__ = ["StaticTreeNetwork"]


class StaticTreeNetwork:
    """A fixed tree topology serving requests at tree distance.

    Parameters
    ----------
    tree:
        Any tree exposing ``root_id``, ``n`` and ``iter_edges()`` —
        :class:`~repro.core.tree.KAryTreeNetwork` and
        :class:`~repro.splaynet.tree.BSTNetwork` both qualify.
    """

    def __init__(self, tree) -> None:
        self.tree = tree
        self._oracle = TreeDistanceOracle.from_tree(tree)

    @property
    def n(self) -> int:
        return self._oracle.n

    def distance(self, u: int, v: int) -> int:
        return self._oracle.distance(u, v)

    def serve(self, u: int, v: int) -> ServeResult:
        """Route ``(u, v)``; a static network never adjusts."""
        return ServeResult(self._oracle.distance(u, v), 0, 0)

    def serve_trace(
        self,
        sources,
        targets=None,
        *,
        record_series: bool = False,
    ) -> BatchServeResult:
        """Serve a whole batch in one vectorized oracle query.

        Static trees never reconfigure, so the batched path is a single
        O((m + n) log n) vectorized LCA/distance computation instead of m
        scalar oracle calls.
        """
        us, vs = as_request_arrays(sources, targets)
        costs = self._oracle.distances(us, vs)
        routing_series = rotation_series = None
        if record_series:
            routing_series = costs.astype(np.int64, copy=False)
            rotation_series = np.zeros(len(us), dtype=np.int64)
        return BatchServeResult(
            len(us), int(costs.sum()), 0, 0, routing_series, rotation_series
        )

    # ------------------------------------------------------------------
    def snapshot_state(self) -> None:
        """Static topologies carry no mutable serving state."""
        return None

    def restore_state(self, state: None) -> None:
        """No-op: a static network is always at its initial state."""

    def validate(self) -> None:
        validate = getattr(self.tree, "validate", None)
        if validate is not None:
            validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticTreeNetwork(n={self.n})"
