"""Per-request series analysis for simulation results.

Complements :class:`~repro.network.simulator.SimulationResult` (run with
``record_series=True``) with the summaries used in convergence plots and
regression checks: rolling means, percentile tables, warm-up detection, and
cumulative-cost comparisons between runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.network.simulator import SimulationResult

__all__ = [
    "rolling_mean",
    "percentile_table",
    "warmup_length",
    "cumulative_advantage",
    "SeriesSummary",
    "summarize_series",
]


def _series(result: SimulationResult) -> np.ndarray:
    if result.routing_series is None:
        raise ExperimentError(
            "per-request series not recorded; run Simulator(record_series=True)"
        )
    return result.routing_series


def rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Centered-free trailing rolling mean (length ``len(values)-window+1``)."""
    values = np.asarray(values, dtype=np.float64)
    if window < 1 or window > len(values):
        raise ExperimentError(f"window {window} out of range for {len(values)} values")
    csum = np.concatenate(([0.0], np.cumsum(values)))
    return (csum[window:] - csum[:-window]) / window


def percentile_table(
    values: np.ndarray, percentiles: tuple[float, ...] = (50, 90, 99, 100)
) -> dict[float, float]:
    """Request-cost percentiles (100 = max)."""
    values = np.asarray(values)
    if len(values) == 0:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(values, p)) for p in percentiles}


def warmup_length(values: np.ndarray, window: int = 200, tolerance: float = 0.1) -> int:
    """Requests served before the rolling mean settles near its final value.

    Returns the first index whose trailing ``window``-mean is within
    ``tolerance`` (relative) of the final ``window``-mean; ``len(values)``
    if it never settles.  Used to separate the self-adjusting transient from
    steady state in the convergence analyses.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2 * window:
        return 0
    means = rolling_mean(values, window)
    final = means[-1]
    if final == 0:
        return 0
    settled = np.abs(means - final) <= tolerance * final
    # first position from which the mean stays settled
    ever_unsettled = np.where(~settled)[0]
    if len(ever_unsettled) == 0:
        return 0
    return int(min(ever_unsettled[-1] + window, len(values)))


def cumulative_advantage(a: SimulationResult, b: SimulationResult) -> np.ndarray:
    """Running cost difference ``cumsum(b) - cumsum(a)`` (positive: a ahead).

    The standard way to visualise when a self-adjusting structure's
    adaptation starts paying off against a baseline on the same trace.
    """
    sa, sb = _series(a), _series(b)
    if len(sa) != len(sb):
        raise ExperimentError("results cover different numbers of requests")
    return np.cumsum(sb) - np.cumsum(sa)


@dataclass(frozen=True, slots=True)
class SeriesSummary:
    """Digest of one recorded run."""

    mean: float
    p50: float
    p90: float
    p99: float
    max: float
    warmup: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.2f} p50={self.p50:.0f} p90={self.p90:.0f}"
            f" p99={self.p99:.0f} max={self.max:.0f} warmup={self.warmup}"
        )


def summarize_series(result: SimulationResult, *, window: int = 200) -> SeriesSummary:
    """Compute the standard digest of a recorded simulation."""
    values = _series(result)
    table = percentile_table(values)
    return SeriesSummary(
        mean=float(values.mean()) if len(values) else 0.0,
        p50=table[50],
        p90=table[90],
        p99=table[99],
        max=table[100],
        warmup=warmup_length(values, window=min(window, max(1, len(values) // 2))),
    )
