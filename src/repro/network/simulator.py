"""Trace-driven simulation of (self-adjusting) networks.

The simulator feeds a :class:`~repro.workloads.trace.Trace` through any
object implementing :class:`~repro.network.protocols.SelfAdjustingNetwork`
and accumulates the Section 2 cost components.  It optionally records
per-request series (for convergence plots) and can re-validate the network's
structural invariants every ``validate_every`` requests (used heavily by the
integration tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.network.cost import CostModel, ROUTING_ONLY
from repro.network.protocols import SelfAdjustingNetwork
from repro.workloads.trace import Trace

__all__ = ["SimulationResult", "Simulator", "simulate"]


@dataclass(frozen=True)
class SimulationResult:
    """Accumulated outcome of one simulation run."""

    name: str
    n: int
    m: int
    total_routing: int
    total_rotations: int
    total_links_changed: int
    elapsed_seconds: float
    routing_series: Optional[np.ndarray] = field(default=None, repr=False)
    rotation_series: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def average_routing(self) -> float:
        """Average request cost — the quantity in the paper's Table 8."""
        return self.total_routing / self.m if self.m else 0.0

    @property
    def average_rotations(self) -> float:
        return self.total_rotations / self.m if self.m else 0.0

    def total_cost(self, model: CostModel = ROUTING_ONLY) -> float:
        """Total service cost under a :class:`CostModel`."""
        return (
            model.routing_weight * self.total_routing
            + model.rotation_cost * self.total_rotations
            + model.link_cost * self.total_links_changed
        )

    def __str__(self) -> str:
        return (
            f"{self.name or 'run'}: m={self.m} routing={self.total_routing}"
            f" (avg {self.average_routing:.3f}) rotations={self.total_rotations}"
            f" links={self.total_links_changed}"
        )


class Simulator:
    """Runs traces through networks.

    Parameters
    ----------
    record_series:
        Record per-request routing/rotation arrays on the result (costs
        O(m) memory).
    validate_every:
        If positive, call ``network.validate()`` after every that many
        requests (and once at the end).
    """

    def __init__(self, *, record_series: bool = False, validate_every: int = 0) -> None:
        self.record_series = record_series
        self.validate_every = validate_every

    def run(
        self,
        network: SelfAdjustingNetwork,
        trace: Trace,
        *,
        name: str = "",
    ) -> SimulationResult:
        """Serve every request of ``trace`` on ``network``.

        Networks exposing the batched ``serve_trace`` fast path (see
        :class:`~repro.network.protocols.BatchServingNetwork`) consume the
        trace's endpoint arrays directly, skipping per-request
        :class:`~repro.network.protocols.ServeResult` construction — unless
        ``validate_every`` is set, which needs the request-by-request loop.
        """
        validate_every = self.validate_every
        serve_trace = getattr(network, "serve_trace", None)
        if serve_trace is not None and not validate_every:
            start = time.perf_counter()
            batch = serve_trace(
                trace.sources, trace.targets, record_series=self.record_series
            )
            elapsed = time.perf_counter() - start
            return SimulationResult(
                name=name or getattr(trace, "name", ""),
                n=trace.n,
                m=trace.m,
                total_routing=batch.total_routing,
                total_rotations=batch.total_rotations,
                total_links_changed=batch.total_links_changed,
                elapsed_seconds=elapsed,
                routing_series=batch.routing_series,
                rotation_series=batch.rotation_series,
            )

        serve = network.serve
        total_routing = 0
        total_rotations = 0
        total_links = 0
        routing_series = np.empty(trace.m, dtype=np.int64) if self.record_series else None
        rotation_series = np.empty(trace.m, dtype=np.int64) if self.record_series else None
        # Materialize the endpoint arrays once; iterating python ints from
        # lists beats repeated NumPy scalar extraction in the serve loop.
        sources = trace.sources.tolist()
        targets = trace.targets.tolist()
        start = time.perf_counter()
        if routing_series is None and not validate_every:
            # Hot scalar path: no per-request bookkeeping beyond the totals.
            for u, v in zip(sources, targets):
                result = serve(u, v)
                total_routing += result.routing_cost
                total_rotations += result.rotations
                total_links += result.links_changed
        else:
            for i, (u, v) in enumerate(zip(sources, targets)):
                result = serve(u, v)
                total_routing += result.routing_cost
                total_rotations += result.rotations
                total_links += result.links_changed
                if routing_series is not None:
                    routing_series[i] = result.routing_cost
                    rotation_series[i] = result.rotations
                if validate_every and (i + 1) % validate_every == 0:
                    network.validate()  # type: ignore[attr-defined]
        if validate_every:
            network.validate()  # type: ignore[attr-defined]
        elapsed = time.perf_counter() - start
        return SimulationResult(
            name=name or getattr(trace, "name", ""),
            n=trace.n,
            m=trace.m,
            total_routing=total_routing,
            total_rotations=total_rotations,
            total_links_changed=total_links,
            elapsed_seconds=elapsed,
            routing_series=routing_series,
            rotation_series=rotation_series,
        )


def simulate(
    network: SelfAdjustingNetwork, trace: Trace, *, name: str = ""
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator().run(network, trace, name=name)
