"""Trace statistics: entropy and locality measures (after Avin et al. [2]).

These measures characterize where a trace sits on the temporal/spatial
complexity map, which is exactly what determines the winner in the paper's
tables (self-adjusting structures exploit *temporal* locality, demand-aware
static trees exploit *spatial* skew).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

__all__ = [
    "empirical_entropy",
    "source_entropy",
    "target_entropy",
    "pair_entropy",
    "repeat_fraction",
    "working_set_size",
    "TraceSummary",
    "summarize_trace",
]


def empirical_entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``counts``."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def _counts(values: np.ndarray) -> np.ndarray:
    _, counts = np.unique(values, return_counts=True)
    return counts


def source_entropy(trace: Trace) -> float:
    """Entropy of the source marginal (the paper's ``H({a_x})``)."""
    return empirical_entropy(_counts(trace.sources))


def target_entropy(trace: Trace) -> float:
    """Entropy of the destination marginal (the paper's ``H({b_x})``)."""
    return empirical_entropy(_counts(trace.targets))


def pair_entropy(trace: Trace) -> float:
    """Entropy of the joint (source, destination) distribution."""
    key = trace.sources.astype(np.int64) * (trace.n + 1) + trace.targets
    return empirical_entropy(_counts(key))


def repeat_fraction(trace: Trace) -> float:
    """Fraction of requests identical to their predecessor.

    This is the empirical estimate of the paper's *temporal complexity
    parameter* (probability of repeating the last request).
    """
    if trace.m < 2:
        return 0.0
    same = (trace.sources[1:] == trace.sources[:-1]) & (
        trace.targets[1:] == trace.targets[:-1]
    )
    return float(same.mean())


def working_set_size(trace: Trace, window: int = 1000) -> float:
    """Mean number of distinct pairs per (non-overlapping) window."""
    if trace.m == 0:
        return 0.0
    key = trace.sources.astype(np.int64) * (trace.n + 1) + trace.targets
    sizes = [
        len(np.unique(key[i : i + window])) for i in range(0, len(key), window)
    ]
    return float(np.mean(sizes))


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """A compact complexity fingerprint of a trace."""

    n: int
    m: int
    repeat_fraction: float
    pair_entropy: float
    uniform_pair_entropy: float
    source_entropy: float
    target_entropy: float
    density: float
    working_set: float

    @property
    def spatial_skew(self) -> float:
        """1 − H(pairs)/H(uniform pairs): 0 = uniform, → 1 = concentrated."""
        if self.uniform_pair_entropy == 0:
            return 0.0
        return 1.0 - self.pair_entropy / self.uniform_pair_entropy

    def __str__(self) -> str:
        return (
            f"n={self.n} m={self.m} repeat={self.repeat_fraction:.3f} "
            f"skew={self.spatial_skew:.3f} Hpair={self.pair_entropy:.2f}b "
            f"ws={self.working_set:.0f}"
        )


def summarize_trace(trace: Trace, *, window: int = 1000) -> TraceSummary:
    """Compute the full complexity fingerprint of a trace."""
    from repro.workloads.demand import DemandMatrix

    demand = DemandMatrix.from_trace(trace)
    n = trace.n
    uniform_h = float(np.log2(n * (n - 1))) if n > 1 else 0.0
    return TraceSummary(
        n=n,
        m=trace.m,
        repeat_fraction=repeat_fraction(trace),
        pair_entropy=pair_entropy(trace),
        uniform_pair_entropy=uniform_h,
        source_entropy=source_entropy(trace),
        target_entropy=target_entropy(trace),
        density=demand.density(),
        working_set=working_set_size(trace, window=window),
    )
