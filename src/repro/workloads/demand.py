"""Demand matrices — the offline view of a trace.

The offline-static problem (Section 2) consumes an ``n × n`` demand matrix
``D`` with ``D[u, v]`` the number of ``(u, v)`` requests.  For the paper's
scales a dense matrix is fine up to a few thousand nodes; the Facebook-style
workload (``n = 10⁴``) needs a sparse representation.  :class:`DemandMatrix`
hides the distinction.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import WorkloadError
from repro.workloads.trace import Trace

__all__ = ["DemandMatrix"]

#: Above this node count, ``from_trace`` defaults to a sparse backing store.
_DENSE_LIMIT = 4096


class DemandMatrix:
    """Request counts between ordered node pairs, 1-indexed externally."""

    __slots__ = ("n", "_dense", "_sparse")

    def __init__(
        self,
        n: int,
        *,
        dense: Optional[np.ndarray] = None,
        sparse: Optional[sp.csr_matrix] = None,
    ) -> None:
        if (dense is None) == (sparse is None):
            raise WorkloadError("provide exactly one of dense= or sparse=")
        self.n = n
        if dense is not None:
            dense = np.asarray(dense)
            if dense.shape != (n, n):
                raise WorkloadError(f"dense demand must be {n}x{n}, got {dense.shape}")
            if np.any(np.diagonal(dense) != 0):
                raise WorkloadError("demand diagonal must be zero (no self-traffic)")
        else:
            if sparse.shape != (n, n):
                raise WorkloadError(
                    f"sparse demand must be {n}x{n}, got {sparse.shape}"
                )
        self._dense = dense
        self._sparse = sparse

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace, *, force_dense: bool = False) -> "DemandMatrix":
        """Count the requests of ``trace`` into a demand matrix."""
        n = trace.n
        rows = trace.sources - 1
        cols = trace.targets - 1
        if n <= _DENSE_LIMIT or force_dense:
            dense = np.zeros((n, n), dtype=np.int64)
            np.add.at(dense, (rows, cols), 1)
            return cls(n, dense=dense)
        data = np.ones(len(rows), dtype=np.int64)
        mat = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        return cls(n, sparse=mat)

    @classmethod
    def uniform(cls, n: int) -> "DemandMatrix":
        """The paper's finite uniform workload: one request per ordered pair."""
        dense = np.ones((n, n), dtype=np.int64)
        np.fill_diagonal(dense, 0)
        return cls(n, dense=dense)

    # ------------------------------------------------------------------
    @property
    def is_dense(self) -> bool:
        return self._dense is not None

    @property
    def total(self) -> int:
        """Total number of requests."""
        if self._dense is not None:
            return int(self._dense.sum())
        return int(self._sparse.sum())

    def dense(self) -> np.ndarray:
        """The dense ``n × n`` count array (0-indexed)."""
        if self._dense is not None:
            return self._dense
        if self.n > 2 * _DENSE_LIMIT:
            raise WorkloadError(
                f"refusing to densify a {self.n}x{self.n} demand matrix"
            )
        return np.asarray(self._sparse.todense())

    def count(self, u: int, v: int) -> int:
        """Requests from ``u`` to ``v`` (1-indexed)."""
        if self._dense is not None:
            return int(self._dense[u - 1, v - 1])
        return int(self._sparse[u - 1, v - 1])

    def nonzero_pairs(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(u, v, weight)`` for every communicating ordered pair."""
        if self._dense is not None:
            rows, cols = np.nonzero(self._dense)
            weights = self._dense[rows, cols]
        else:
            coo = self._sparse.tocoo()
            rows, cols, weights = coo.row, coo.col, coo.data
        yield from zip(
            (rows + 1).tolist(), (cols + 1).tolist(), weights.tolist()
        )

    def nonzero_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, weight)`` arrays (1-indexed) of communicating pairs."""
        if self._dense is not None:
            rows, cols = np.nonzero(self._dense)
            weights = self._dense[rows, cols]
        else:
            coo = self._sparse.tocoo()
            rows, cols, weights = coo.row, coo.col, coo.data
        return rows + 1, cols + 1, np.asarray(weights)

    def out_degrees(self) -> np.ndarray:
        """Per-node outgoing request counts (the paper's ``a_x``), 0-indexed."""
        if self._dense is not None:
            return self._dense.sum(axis=1)
        return np.asarray(self._sparse.sum(axis=1)).ravel()

    def in_degrees(self) -> np.ndarray:
        """Per-node incoming request counts (the paper's ``b_x``), 0-indexed."""
        if self._dense is not None:
            return self._dense.sum(axis=0)
        return np.asarray(self._sparse.sum(axis=0)).ravel()

    def density(self) -> float:
        """Fraction of ordered pairs that communicate at all."""
        if self._dense is not None:
            nnz = int(np.count_nonzero(self._dense))
        else:
            nnz = self._sparse.nnz
        return nnz / (self.n * (self.n - 1)) if self.n > 1 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dense" if self.is_dense else "sparse"
        return f"DemandMatrix(n={self.n}, total={self.total}, {kind})"
