"""Simulated datacenter traces — stand-ins for the paper's three datasets.

The paper evaluates on (i) a DOE mini-apps HPC trace [11], (ii) a ProjecToR
trace from Microsoft [14], and (iii) a Facebook datacenter trace [21].  The
raw datasets are not redistributable, so this module synthesizes traces with
the *complexity characteristics* those datasets are known for (cf. Avin et
al. [2], and the behaviour the paper's tables exhibit):

* **HPC** — strong spatial structure (3-D stencil neighbours + collective
  trees) and *high temporal locality* (iterative solvers repeat the same
  exchanges in bursts).  This is the regime where SplayNet-style structures
  beat every static tree (Table 1's green "Full Tree" row at k=2, Table 8's
  HPC row where plain SplayNet even edges out 3-SplayNet).
* **ProjecToR** — heavy spatial skew (a few stable elephant pairs over a
  mice background) with *interleaved* arrivals, i.e. low-to-medium temporal
  locality.  Static demand-aware trees do well; 3-SplayNet beats SplayNet
  (Table 8).
* **Facebook** — wide, many-to-many traffic with mild skew and a large
  working set: the lowest temporal locality of the three (Table 3, where the
  full tree overtakes k-ary SplayNet already at moderate k).

Each generator documents which knobs control the characteristic and is
validated by tests against :mod:`repro.workloads.stats` measurements.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.synthetic import _fresh_pairs, _zipf_weights
from repro.workloads.trace import Trace

__all__ = ["hpc_trace", "projector_trace", "facebook_trace", "grid_dimensions"]


def grid_dimensions(n: int) -> tuple[int, int, int]:
    """Near-cubic 3-D process-grid dimensions with ``a*b*c >= n``."""
    a = max(1, round(n ** (1 / 3)))
    while a > 1 and n % 1 >= 0 and a**3 > 8 * n:
        a -= 1
    b = max(1, round(math.sqrt(n / a)))
    c = math.ceil(n / (a * b))
    while a * b * c < n:
        c += 1
    return a, b, c


def _stencil_pairs(n: int) -> list[np.ndarray]:
    """Directed neighbour pair lists (one per grid dimension) for ``1..n``.

    Nodes are laid out row-major on the 3-D grid; only lattice points with
    linear index < n exist.  Each entry is an ``(p, 2)`` array of (u, v).
    """
    a, b, c = grid_dimensions(n)
    coords = np.arange(n)
    x = coords % a
    y = (coords // a) % b
    z = coords // (a * b)
    dims = []
    for axis, (coord, span, stride) in enumerate(
        ((x, a, 1), (y, b, a), (z, c, a * b))
    ):
        ok = (coord < span - 1) & (coords + stride < n)
        u = coords[ok] + 1
        v = coords[ok] + stride + 1
        if len(u):
            dims.append(np.stack([u, v], axis=1))
    if not dims:  # n too small for any neighbour in some degenerate layout
        dims.append(np.array([[1, 2]], dtype=np.int64))
    return dims


def _collective_pairs(n: int) -> np.ndarray:
    """Binomial-tree reduction pairs toward node 1 (an MPI_Allreduce shape)."""
    pairs = []
    stride = 1
    while stride < n:
        senders = np.arange(1 + stride, n + 1, 2 * stride)
        receivers = senders - stride
        pairs.append(np.stack([senders, receivers], axis=1))
        stride *= 2
    return np.concatenate(pairs) if pairs else np.array([[2, 1]])


def hpc_trace(
    n: int,
    m: int,
    seed: Optional[int] = None,
    *,
    mean_burst: float = 3.0,
    collective_every: int = 3,
    background: float = 0.1,
) -> Trace:
    """A DOE-mini-apps-style trace: stencil sweeps with bursty repetition.

    Phases alternate between directional stencil sweeps (each neighbour pair
    exchanged in a geometric burst, like a Jacobi/CG iteration's halo
    exchange) and a binomial-tree collective every ``collective_every``
    phases; a ``background`` fraction of uniform traffic models I/O and
    runtime noise.  ``mean_burst`` is the temporal-locality knob; the
    defaults are calibrated so the full-tree crossover of the paper's
    Table 1 lands at moderate k (see EXPERIMENTS.md).
    """
    if n < 2 or m < 1:
        raise WorkloadError("hpc_trace needs n >= 2 and m >= 1")
    if not 0.0 <= background < 1.0:
        raise WorkloadError("background fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    sweeps = _stencil_pairs(n)
    collective = _collective_pairs(n)
    chunks: list[np.ndarray] = []
    produced = 0
    phase = 0
    while produced < m:
        if collective_every > 0 and phase % collective_every == collective_every - 1:
            pat = collective
            bursts = np.ones(len(pat), dtype=np.int64)
        else:
            pat = sweeps[phase % len(sweeps)]
            bursts = rng.geometric(1.0 / mean_burst, size=len(pat))
        fwd = np.repeat(pat, bursts, axis=0)
        # Alternate request direction within a burst (ping-pong exchange).
        flip = rng.random(len(fwd)) < 0.5
        fwd = np.where(flip[:, None], fwd[:, ::-1], fwd)
        chunks.append(fwd)
        produced += len(fwd)
        phase += 1
    allreq = np.concatenate(chunks)[:m]
    src = allreq[:, 0]
    dst = allreq[:, 1]
    if background > 0:
        noise_src = rng.integers(1, n + 1, size=m, dtype=np.int64)
        offset = rng.integers(1, n, size=m, dtype=np.int64)
        noise_dst = 1 + (noise_src - 1 + offset) % n
        mask = rng.random(m) < background
        src = np.where(mask, noise_src, src)
        dst = np.where(mask, noise_dst, dst)
    return Trace(
        n,
        src,
        dst,
        name=f"hpc(n={n})",
        meta={
            "seed": seed,
            "mean_burst": mean_burst,
            "background": background,
            "grid": grid_dimensions(n),
        },
    )


def projector_trace(
    n: int,
    m: int,
    seed: Optional[int] = None,
    *,
    elephant_count: Optional[int] = None,
    elephant_share: float = 0.7,
    elephant_alpha: float = 1.1,
) -> Trace:
    """A ProjecToR-style trace: stable elephants over a mice background.

    ``elephant_count`` stable node pairs carry ``elephant_share`` of all
    requests, drawn i.i.d. by a Zipf law over the elephants — heavy skew,
    stable over time, but *interleaved*, so the repeat probability stays
    low.  The remaining traffic is uniform mice.
    """
    if n < 4 or m < 1:
        raise WorkloadError("projector_trace needs n >= 4 and m >= 1")
    rng = np.random.default_rng(seed)
    count = elephant_count if elephant_count is not None else max(4, n // 8)
    count = min(count, n * (n - 1) // 2)
    # Elephant endpoints cluster on a skewed subset of "busy" racks.
    busy = rng.permutation(n)[: max(3, n // 3)] + 1
    pairs = set()
    while len(pairs) < count:
        u, v = rng.choice(busy, size=2, replace=False)
        pairs.add((int(u), int(v)))
    elephants = np.array(sorted(pairs), dtype=np.int64)
    weights = _zipf_weights(len(elephants), elephant_alpha)
    weights = weights[rng.permutation(len(weights))]

    is_elephant = rng.random(m) < elephant_share
    chosen = rng.choice(len(elephants), size=m, p=weights)
    src_e, dst_e = elephants[chosen, 0], elephants[chosen, 1]
    src_m, dst_m = _fresh_pairs(n, m, rng)
    src = np.where(is_elephant, src_e, src_m)
    dst = np.where(is_elephant, dst_e, dst_m)
    return Trace(
        n,
        src,
        dst,
        name=f"projector(n={n})",
        meta={
            "seed": seed,
            "elephants": len(elephants),
            "elephant_share": elephant_share,
        },
    )


def facebook_trace(
    n: int,
    m: int,
    seed: Optional[int] = None,
    *,
    source_alpha: float = 0.9,
    partner_alpha: float = 1.0,
    partners_per_source: Optional[int] = None,
) -> Trace:
    """A Facebook-datacenter-style trace: wide many-to-many with mild skew.

    Sources follow a mild Zipf; each source spreads over a large partner set
    with its own mild Zipf.  The working set is huge and requests rarely
    repeat back-to-back — the lowest-locality regime of the three datasets.
    """
    if n < 4 or m < 1:
        raise WorkloadError("facebook_trace needs n >= 4 and m >= 1")
    rng = np.random.default_rng(seed)
    per_source = partners_per_source or max(8, n // 4)
    per_source = min(per_source, n - 1)

    src_weights = _zipf_weights(n, source_alpha)
    src_perm = rng.permutation(n) + 1
    src = src_perm[rng.choice(n, size=m, p=src_weights)]

    # Every source uses the same *rank* distribution over partners but its
    # own random partner ordering, derived cheaply from one global
    # permutation with a per-source offset (keeps generation O(m + n)).
    partner_weights = _zipf_weights(per_source, partner_alpha)
    global_perm = rng.permutation(n) + 1
    offsets = rng.integers(0, n, size=n + 1)
    rank = rng.choice(per_source, size=m, p=partner_weights)
    dst = global_perm[(offsets[src] + rank) % n]
    clash = dst == src
    while np.any(clash):
        fix = int(clash.sum())
        rank = rng.choice(per_source, size=fix, p=partner_weights)
        dst[clash] = global_perm[(offsets[src[clash]] + rank + 1) % n]
        clash = dst == src
    return Trace(
        n,
        src,
        dst,
        name=f"facebook(n={n})",
        meta={"seed": seed, "partners_per_source": per_source},
    )
