"""workloads subpackage — see module docstrings."""
