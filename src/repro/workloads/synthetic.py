"""Synthetic workload generators (Section 5 "Setup and data").

The paper's synthetic inputs are (i) the uniform workload and (ii) traces
parameterized by the *temporal complexity parameter* — the probability of
repeating the previous request, following the trace-complexity methodology
of Avin et al. [2].  We add the standard auxiliary generators (Zipf, hotspot,
bursty, permutation, sequential) used by the extended experiments and tests.

All generators are vectorized, seeded, and return :class:`Trace` objects.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Trace

__all__ = [
    "uniform_trace",
    "temporal_trace",
    "zipf_trace",
    "hotspot_trace",
    "bursty_trace",
    "permutation_trace",
    "sequential_trace",
    "bit_reversal_trace",
    "stride_trace",
]


def _require(n: int, m: int) -> None:
    if n < 2:
        raise WorkloadError(f"need at least two nodes for traffic, got n={n}")
    if m < 1:
        raise WorkloadError(f"need at least one request, got m={m}")


def _fresh_pairs(
    n: int, m: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``m`` ordered pairs uniform over ``{(u, v) : u != v}``."""
    src = rng.integers(1, n + 1, size=m, dtype=np.int64)
    offset = rng.integers(1, n, size=m, dtype=np.int64)
    dst = 1 + (src - 1 + offset) % n
    return src, dst


def uniform_trace(n: int, m: int, seed: Optional[int] = None) -> Trace:
    """Each request drawn uniformly at random over ordered pairs."""
    _require(n, m)
    rng = np.random.default_rng(seed)
    src, dst = _fresh_pairs(n, m, rng)
    return Trace(n, src, dst, name=f"uniform(n={n})", meta={"seed": seed})


def temporal_trace(n: int, m: int, p: float, seed: Optional[int] = None) -> Trace:
    """The paper's synthetic trace with temporal complexity parameter ``p``.

    With probability ``p`` the previous request is repeated verbatim;
    otherwise a fresh uniform pair is drawn (the first request is always
    fresh).  ``p ∈ {0.25, 0.5, 0.75, 0.9}`` reproduces Tables 4-7.
    """
    _require(n, m)
    if not 0.0 <= p < 1.0:
        raise WorkloadError(f"temporal parameter must be in [0, 1), got {p}")
    rng = np.random.default_rng(seed)
    src, dst = _fresh_pairs(n, m, rng)
    repeat = rng.random(m) < p
    repeat[0] = False
    # Index of the most recent fresh request at or before each position.
    idx = np.arange(m)
    last_fresh = np.maximum.accumulate(np.where(repeat, 0, idx))
    return Trace(
        n,
        src[last_fresh],
        dst[last_fresh],
        name=f"temporal(p={p:g})",
        meta={"seed": seed, "p": p},
    )


def _zipf_weights(count: int, alpha: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def zipf_trace(
    n: int,
    m: int,
    alpha: float = 1.2,
    seed: Optional[int] = None,
) -> Trace:
    """Endpoints drawn independently from (independently permuted) Zipf laws.

    Produces spatial skew with essentially no temporal locality — the regime
    where static demand-aware trees shine.
    """
    _require(n, m)
    rng = np.random.default_rng(seed)
    w = _zipf_weights(n, alpha)
    perm_src = rng.permutation(n) + 1
    perm_dst = rng.permutation(n) + 1
    src = perm_src[rng.choice(n, size=m, p=w)]
    dst = perm_dst[rng.choice(n, size=m, p=w)]
    clash = src == dst
    while np.any(clash):
        dst[clash] = perm_dst[rng.choice(n, size=int(clash.sum()), p=w)]
        clash = src == dst
    return Trace(
        n, src, dst, name=f"zipf(a={alpha:g})", meta={"seed": seed, "alpha": alpha}
    )


def hotspot_trace(
    n: int,
    m: int,
    hot_fraction: float = 0.1,
    hot_prob: float = 0.8,
    seed: Optional[int] = None,
) -> Trace:
    """A small hot set of nodes attracts most of the traffic."""
    _require(n, m)
    if not 0 < hot_fraction <= 1:
        raise WorkloadError("hot_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    hot_count = max(1, int(round(hot_fraction * n)))
    hot = rng.choice(n, size=hot_count, replace=False) + 1
    src, dst = _fresh_pairs(n, m, rng)
    to_hot = rng.random(m) < hot_prob
    dst = np.where(to_hot, hot[rng.integers(0, hot_count, size=m)], dst)
    clash = src == dst
    while np.any(clash):
        src[clash] = rng.integers(1, n + 1, size=int(clash.sum()))
        clash = src == dst
    return Trace(
        n,
        src,
        dst,
        name=f"hotspot({hot_count} hot)",
        meta={"seed": seed, "hot_fraction": hot_fraction, "hot_prob": hot_prob},
    )


def bursty_trace(
    n: int,
    m: int,
    mean_burst: float = 8.0,
    seed: Optional[int] = None,
) -> Trace:
    """Uniform pair choice, each repeated for a geometric burst.

    Equivalent locality to :func:`temporal_trace` with
    ``p = 1 - 1/mean_burst`` but with exactly-contiguous bursts; used by the
    ablation experiments.
    """
    _require(n, m)
    if mean_burst < 1:
        raise WorkloadError("mean_burst must be >= 1")
    rng = np.random.default_rng(seed)
    bursts = rng.geometric(1.0 / mean_burst, size=m)  # at most m bursts needed
    reps = np.cumsum(bursts)
    count = int(np.searchsorted(reps, m) + 1)
    src, dst = _fresh_pairs(n, count, rng)
    src = np.repeat(src, bursts[:count])[:m]
    dst = np.repeat(dst, bursts[:count])[:m]
    return Trace(
        n,
        src,
        dst,
        name=f"bursty(mean={mean_burst:g})",
        meta={"seed": seed, "mean_burst": mean_burst},
    )


def permutation_trace(n: int, m: int, seed: Optional[int] = None) -> Trace:
    """A fixed random perfect matching, replayed round-robin.

    The classic all-pairs-disjoint demand: a demand-aware tree can serve
    every request at distance 1 in the limit.
    """
    _require(n, m)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n) + 1
    half = n // 2
    pair_src = perm[:half]
    pair_dst = perm[half : 2 * half]
    idx = np.arange(m) % half
    return Trace(
        n, pair_src[idx], pair_dst[idx], name="permutation", meta={"seed": seed}
    )


def sequential_trace(n: int, m: int) -> Trace:
    """The deterministic scan ``(1,2), (2,3), …`` — a test workload."""
    _require(n, m)
    idx = np.arange(m, dtype=np.int64) % (n - 1)
    return Trace(n, idx + 1, idx + 2, name="sequential", meta={})


def bit_reversal_trace(bits: int, m: int) -> Trace:
    """Root accesses in bit-reversal order — the classic BST hard sequence.

    ``n = 2^bits`` nodes; request ``t`` goes from node 1 to the bit-reversal
    of ``t mod n``.  Bit-reversal permutations maximize the interleave lower
    bound, so no (binary) search tree — static or dynamic — serves them in
    ``o(log n)`` amortized; a stress input for the adversarial benchmarks.
    """
    if bits < 1 or bits > 20:
        raise WorkloadError("bits must be in [1, 20]")
    if m < 1:
        raise WorkloadError("need at least one request")
    n = 1 << bits
    values = np.arange(n, dtype=np.int64)
    reversed_bits = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        reversed_bits |= ((values >> b) & 1) << (bits - 1 - b)
    idx = np.arange(m, dtype=np.int64) % n
    dst = reversed_bits[idx] + 1
    src = np.ones(m, dtype=np.int64)
    clash = dst == 1
    dst[clash] = 2  # bit-reversal of 0 is 0; redirect self-requests
    return Trace(n, src, dst, name=f"bit-reversal({bits}b)", meta={"bits": bits})


def stride_trace(n: int, m: int, stride: int) -> Trace:
    """Fixed-stride communication ``(i, i + stride mod n)``, scanned.

    Strides that are coprime with ``n`` visit every pair class; power-of-two
    strides on power-of-two rings produce the disjoint "butterfly" stages
    used in collective algorithms.
    """
    _require(n, m)
    if not 1 <= stride < n:
        raise WorkloadError(f"stride must be in [1, n), got {stride}")
    idx = np.arange(m, dtype=np.int64) % n
    src = idx + 1
    dst = (idx + stride) % n + 1
    return Trace(n, src, dst, name=f"stride({stride})", meta={"stride": stride})
