"""Trace persistence: CSV (interoperable) and NPZ (fast) round-trips."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Trace

__all__ = ["save_trace_csv", "load_trace_csv", "save_trace_npz", "load_trace_npz"]

PathLike = Union[str, Path]


def save_trace_csv(trace: Trace, path: PathLike) -> None:
    """Write a trace as ``source,target`` rows with a commented header."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        fh.write(f"# trace name={trace.name!r} n={trace.n} m={trace.m}\n")
        writer = csv.writer(fh)
        writer.writerow(["source", "target"])
        for u, v in trace.pairs():
            writer.writerow([u, v])


def load_trace_csv(path: PathLike, *, n: int | None = None, name: str = "") -> Trace:
    """Read a ``source,target`` CSV (header row optional, ``#`` comments ok).

    ``n`` defaults to the largest identifier seen.
    """
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    with path.open() as fh:
        for row in csv.reader(fh):
            if not row or row[0].lstrip().startswith("#"):
                continue
            if row[0].strip().lower() in ("source", "src", "u"):
                continue
            if len(row) < 2:
                raise WorkloadError(f"malformed trace row {row!r} in {path}")
            sources.append(int(row[0]))
            targets.append(int(row[1]))
    if not sources:
        raise WorkloadError(f"no requests found in {path}")
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if n is None:
        n = int(max(src.max(), dst.max()))
    return Trace(n, src, dst, name=name or path.stem, meta={"path": str(path)})


def save_trace_npz(trace: Trace, path: PathLike) -> None:
    """Write a trace to a compressed NPZ archive (with metadata)."""
    np.savez_compressed(
        Path(path),
        sources=trace.sources,
        targets=trace.targets,
        n=np.int64(trace.n),
        name=np.str_(trace.name),
        meta=np.str_(json.dumps(trace.meta, default=str)),
    )


def load_trace_npz(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"])) if "meta" in data else {}
        return Trace(
            int(data["n"]),
            data["sources"],
            data["targets"],
            name=str(data["name"]) if "name" in data else "",
            meta=meta,
        )
