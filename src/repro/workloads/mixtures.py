"""Mixture and phase-structured workload generators.

Real datacenter traffic is rarely one stationary process: it mixes flow
classes (elephants over mice), switches regimes over time (training epochs,
shuffle phases), and modulates locality (on/off bursts).  These generators
compose the primitives in :mod:`repro.workloads.synthetic` into such
structured traces; the lazy-rebuild and complexity-map experiments use them
to probe the regimes between the paper's eight canonical workloads.

All generators are seeded and deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.synthetic import _fresh_pairs, _require, _zipf_weights
from repro.workloads.trace import Trace

__all__ = [
    "elephant_mice_trace",
    "markov_modulated_trace",
    "phased_trace",
    "shuffle_phase_trace",
    "interleave_traces",
]


def elephant_mice_trace(
    n: int,
    m: int,
    *,
    elephants: int = 4,
    elephant_share: float = 0.7,
    seed: Optional[int] = None,
) -> Trace:
    """A few persistent heavy pairs over a uniform mice background.

    ``elephants`` fixed ordered pairs carry ``elephant_share`` of the
    requests; the rest is uniform.  The ProjecToR-style regime: spatially
    skewed, temporally mixed — static demand-aware trees place the
    elephants adjacently and win.
    """
    _require(n, m)
    if elephants < 1:
        raise WorkloadError(f"need at least one elephant pair, got {elephants}")
    if not 0.0 < elephant_share < 1.0:
        raise WorkloadError("elephant_share must be in (0, 1)")
    if elephants > n * (n - 1):
        raise WorkloadError("more elephant pairs than ordered pairs exist")
    rng = np.random.default_rng(seed)
    pair_ids = rng.choice(n * (n - 1), size=elephants, replace=False)
    e_src = pair_ids // (n - 1) + 1
    offset = pair_ids % (n - 1) + 1
    e_dst = (e_src - 1 + offset) % n + 1

    src, dst = _fresh_pairs(n, m, rng)
    is_elephant = rng.random(m) < elephant_share
    which = rng.integers(0, elephants, size=m)
    src = np.where(is_elephant, e_src[which], src)
    dst = np.where(is_elephant, e_dst[which], dst)
    return Trace(
        n,
        src,
        dst,
        name=f"elephant-mice({elephants}@{elephant_share:g})",
        meta={"seed": seed, "elephants": elephants, "share": elephant_share},
    )


def markov_modulated_trace(
    n: int,
    m: int,
    *,
    p_local: float = 0.9,
    stay_local: float = 0.95,
    stay_mixing: float = 0.95,
    seed: Optional[int] = None,
) -> Trace:
    """A two-state Markov-modulated process: LOCAL and MIXING regimes.

    In the LOCAL state the previous request repeats with probability
    ``p_local`` (bursty service); in MIXING every request is fresh uniform.
    The hidden state evolves as a two-state Markov chain with the given
    self-transition probabilities, modelling traffic whose locality itself
    drifts over time — the case the paper's fixed-``p`` synthetic traces
    cannot express and the motivation for partially-reactive SANs [13].
    """
    _require(n, m)
    for name, value in (
        ("p_local", p_local),
        ("stay_local", stay_local),
        ("stay_mixing", stay_mixing),
    ):
        if not 0.0 <= value <= 1.0:
            raise WorkloadError(f"{name} must be in [0, 1], got {value}")
    rng = np.random.default_rng(seed)
    fresh_src, fresh_dst = _fresh_pairs(n, m, rng)
    coins_state = rng.random(m)
    coins_repeat = rng.random(m)
    src = np.empty(m, dtype=np.int64)
    dst = np.empty(m, dtype=np.int64)
    local = True
    src[0], dst[0] = fresh_src[0], fresh_dst[0]
    for t in range(1, m):
        stay = stay_local if local else stay_mixing
        if coins_state[t] >= stay:
            local = not local
        if local and coins_repeat[t] < p_local:
            src[t], dst[t] = src[t - 1], dst[t - 1]
        else:
            src[t], dst[t] = fresh_src[t], fresh_dst[t]
    return Trace(
        n,
        src,
        dst,
        name=f"markov(p={p_local:g})",
        meta={
            "seed": seed,
            "p_local": p_local,
            "stay_local": stay_local,
            "stay_mixing": stay_mixing,
        },
    )


def phased_trace(phases: Sequence[Trace], *, name: str = "phased") -> Trace:
    """Concatenate traces over the same node set into one phase-structured
    trace (epoch-like workloads: compute phase, then shuffle phase, ...)."""
    if not phases:
        raise WorkloadError("need at least one phase")
    n = phases[0].n
    for phase in phases:
        if phase.n != n:
            raise WorkloadError(
                f"phases must share the node count; got {phase.n} != {n}"
            )
    src = np.concatenate([phase.sources for phase in phases])
    dst = np.concatenate([phase.targets for phase in phases])
    return Trace(n, src, dst, name=name, meta={"phases": len(phases)})


def shuffle_phase_trace(
    n: int,
    m: int,
    *,
    workers: Optional[int] = None,
    rounds: int = 4,
    seed: Optional[int] = None,
) -> Trace:
    """An all-to-all shuffle among a worker subset, in rotating rounds.

    Models the MapReduce/collective shuffle: in each round every worker
    sends to a round-dependent partner (a rotation of the worker set), so
    demand is a sequence of disjoint perfect matchings — the workload class
    where reconfigurable topologies earn their keep.
    """
    _require(n, m)
    if rounds < 1:
        raise WorkloadError(f"rounds must be >= 1, got {rounds}")
    rng = np.random.default_rng(seed)
    count = workers if workers is not None else n
    if not 2 <= count <= n:
        raise WorkloadError(f"workers must be in [2, n], got {count}")
    members = np.sort(rng.choice(n, size=count, replace=False)) + 1
    src_list = []
    dst_list = []
    produced = 0
    round_id = 0
    while produced < m:
        shift = round_id % (count - 1) + 1
        s = members
        d = members[(np.arange(count) + shift) % count]
        take = min(count, m - produced)
        src_list.append(s[:take])
        dst_list.append(d[:take])
        produced += take
        round_id = (round_id + 1) % rounds
    return Trace(
        n,
        np.concatenate(src_list),
        np.concatenate(dst_list),
        name=f"shuffle({count}w/{rounds}r)",
        meta={"seed": seed, "workers": count, "rounds": rounds},
    )


def interleave_traces(a: Trace, b: Trace, *, period: int = 1, name: str = "interleaved") -> Trace:
    """Alternate blocks of ``period`` requests from two traces.

    Both inputs must share ``n``; the result has ``len(a) + len(b)``
    requests with ``a``'s block first.  Used to mix e.g. an elephant flow
    into a locality trace at a controlled time granularity.
    """
    if a.n != b.n:
        raise WorkloadError(f"node counts differ: {a.n} != {b.n}")
    if period < 1:
        raise WorkloadError(f"period must be >= 1, got {period}")
    total = a.m + b.m
    src = np.empty(total, dtype=np.int64)
    dst = np.empty(total, dtype=np.int64)
    ai = bi = out = 0
    take_a = True
    while out < total:
        if take_a and ai < a.m:
            take = min(period, a.m - ai)
            src[out : out + take] = a.sources[ai : ai + take]
            dst[out : out + take] = a.targets[ai : ai + take]
            ai += take
            out += take
        elif not take_a and bi < b.m:
            take = min(period, b.m - bi)
            src[out : out + take] = b.sources[bi : bi + take]
            dst[out : out + take] = b.targets[bi : bi + take]
            bi += take
            out += take
        take_a = not take_a
        if ai >= a.m and bi >= b.m:
            break
    return Trace(a.n, src, dst, name=name, meta={"period": period})
