"""The communication-trace container.

A :class:`Trace` is the paper's request sequence ``σ = (σ_1, …, σ_m)`` with
``σ_t = (u, v)``: two parallel NumPy arrays of endpoint identifiers in
``1..n``.  Traces are immutable value objects; generators build them, the
simulator consumes them, and :mod:`repro.workloads.stats` characterizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import WorkloadError

__all__ = ["Trace"]


@dataclass(frozen=True)
class Trace:
    """A sequence of communication requests over nodes ``1..n``.

    Attributes
    ----------
    n:
        Number of network nodes.
    sources, targets:
        Parallel ``int64`` arrays with the request endpoints; entries lie in
        ``1..n`` and ``sources[t] != targets[t]`` for every ``t``.
    name:
        Human-readable label used in experiment reports.
    meta:
        Free-form generator parameters (seed, locality parameter, …).
    """

    n: int
    sources: np.ndarray
    targets: np.ndarray
    name: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.sources, dtype=np.int64)
        dst = np.ascontiguousarray(self.targets, dtype=np.int64)
        object.__setattr__(self, "sources", src)
        object.__setattr__(self, "targets", dst)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise WorkloadError("sources/targets must be 1-D arrays of equal length")
        if self.n < 1:
            raise WorkloadError(f"need at least one node, got n={self.n}")
        if len(src) > 0:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 1 or hi > self.n:
                raise WorkloadError(
                    f"endpoint identifiers must lie in 1..{self.n}; saw [{lo}, {hi}]"
                )
            if bool(np.any(src == dst)):
                t = int(np.argmax(src == dst))
                raise WorkloadError(f"self-loop request at position {t}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sources)

    @property
    def m(self) -> int:
        """Number of requests (the paper's ``m``)."""
        return len(self.sources)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate requests as Python ``(u, v)`` int pairs (fast path)."""
        return zip(self.sources.tolist(), self.targets.tolist())

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return self.pairs()

    def head(self, m: int) -> "Trace":
        """The first ``m`` requests."""
        return Trace(
            self.n,
            self.sources[:m].copy(),
            self.targets[:m].copy(),
            name=self.name,
            meta=dict(self.meta),
        )

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces over the same node set."""
        if other.n != self.n:
            raise WorkloadError(
                f"cannot concatenate traces over {self.n} and {other.n} nodes"
            )
        return Trace(
            self.n,
            np.concatenate([self.sources, other.sources]),
            np.concatenate([self.targets, other.targets]),
            name=self.name or other.name,
            meta={**other.meta, **self.meta},
        )

    def shuffled(self, seed: Optional[int] = None) -> "Trace":
        """A random permutation of the requests.

        Shuffling preserves the demand matrix (spatial structure) while
        destroying temporal locality — the standard control experiment from
        Avin et al.'s trace-complexity methodology [2].
        """
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.sources))
        return Trace(
            self.n,
            self.sources[order],
            self.targets[order],
            name=f"{self.name}+shuffled" if self.name else "shuffled",
            meta=dict(self.meta),
        )

    def remapped_dense(self) -> "Trace":
        """Re-label the *active* nodes to ``1..n'`` (drop silent nodes).

        Real traces often touch a sparse subset of a large identifier space;
        tree networks want contiguous identifiers.
        """
        active = np.union1d(np.unique(self.sources), np.unique(self.targets))
        lookup = np.zeros(int(active.max()) + 1, dtype=np.int64)
        lookup[active] = np.arange(1, len(active) + 1)
        return Trace(
            len(active),
            lookup[self.sources],
            lookup[self.targets],
            name=self.name,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"Trace(n={self.n}, m={self.m}{label})"
