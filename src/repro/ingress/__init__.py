"""Async socket ingress gateway in front of the serve farm.

The serve farm (:mod:`repro.serving.farm`) is an in-process object: one
Python process owns the worker pipes, and only that process can serve.
This package puts a network front door on it —

* :mod:`repro.ingress.protocol` — a tiny length-prefixed binary wire
  protocol (versioned handshake, serve/metrics/ping ops; v2 adds
  retry-after hints on sheds and a per-shard health/breaker trailer on
  METRICS);
* :mod:`repro.ingress.server` — :class:`IngressServer`, an asyncio
  server that accepts many concurrent connections, coalesces requests
  into per-shard micro-batches (amortising the farm's pipe round trips),
  applies backpressure via bounded per-shard queues, load-sheds with
  explicit ``OVERLOAD`` responses under admission/deadline pressure,
  sheds *immediately* via per-shard circuit breakers
  (:class:`CircuitBreaker`) while a shard is sick, and drains gracefully
  on SIGTERM;
* :mod:`repro.ingress.client` — a blocking :class:`IngressClient` with
  reconnect-and-retry under :class:`~repro.reliability.retry.RetryPolicy`
  (plus optional honoring of the server's retry-after hint on overload)
  and an :class:`AsyncIngressClient` that multiplexes concurrent
  requests over one connection.

Start a server from the command line with ``repro serve --shards N
--port P``; measure the socket path against the in-process farm with
``repro bench-ingress``; storm it with ``repro chaos``.
"""

from repro.ingress.breaker import BreakerConfig, CircuitBreaker
from repro.ingress.client import (
    AsyncIngressClient,
    IngressClient,
    default_retry_policy,
)
from repro.ingress.server import IngressServer

__all__ = [
    "AsyncIngressClient",
    "BreakerConfig",
    "CircuitBreaker",
    "IngressClient",
    "IngressServer",
    "default_retry_policy",
]
