"""Wire protocol of the ingress gateway: length-prefixed binary frames.

The gateway speaks a deliberately tiny binary protocol — ``struct``-packed,
no serialization library — so a client in any language (or a 20-line
script) can drive a serve farm over a socket:

* every frame is ``!I`` (payload byte length, big-endian u32) followed by
  the payload; the length prefix is the only framing, so frames survive
  arbitrary TCP segmentation;
* the first frame each way is a **handshake**: magic ``b"RKSN"`` + the
  protocol version (u16).  The server echoes its own handshake plus its
  shard count; a magic or version mismatch is a loud
  :class:`~repro.errors.IngressProtocolError` on both sides, never a
  silently misparsed stream;
* requests carry a client-chosen **request id** (u32) echoed verbatim in
  the response, so one connection can pipeline many requests and match
  answers out of order;
* request ops: ``PING`` (liveness), ``SERVE`` (one keyed request),
  ``SERVE_BATCH`` (one key's request batch), ``METRICS`` (aggregate farm
  counters plus a per-shard health/breaker trailer).  Responses are
  ``OK``, ``ERROR`` (message text) or ``OVERLOAD`` (explicit load-shed —
  admission control, a tripped circuit breaker or an expired deadline;
  the request was not served).  ``ERROR``/``OVERLOAD`` bodies lead with
  a **retry-after hint** (f64 seconds, 0 = none): how long the server
  suggests waiting before resubmitting (e.g. a breaker's remaining open
  window);
* serve requests carry a **deadline budget** (f64 seconds, 0 = none):
  the server sheds the request with ``OVERLOAD`` instead of serving it
  late when it has queued past its budget.

Integers are unsigned big-endian throughout; keys are UTF-8 text (u16
length prefix); node ids are u32; cost totals are u64 (they are sums of
per-request costs and outgrow u32 on long streams).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import IngressProtocolError

__all__ = [
    "FRAME_HEADER_SIZE",
    "HANDSHAKE_MAGIC",
    "PROTOCOL_VERSION",
    "OP_PING",
    "OP_SERVE",
    "OP_SERVE_BATCH",
    "OP_METRICS",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_OVERLOAD",
    "MAX_FRAME_BYTES",
    "Request",
    "Response",
    "decode_frame_length",
    "encode_frame",
    "split_frames",
    "encode_handshake",
    "decode_handshake",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
]

#: Both sides send this before anything else; anything other than an
#: exact match is not this protocol.
HANDSHAKE_MAGIC = b"RKSN"

#: Bumped on any wire-incompatible change; the handshake rejects
#: mismatches explicitly instead of misparsing frames.
#: v2: retry-after hint on ERROR/OVERLOAD, per-shard health/breaker
#: trailer (and served/errors counters) on METRICS.
PROTOCOL_VERSION = 2

OP_PING = 1
OP_SERVE = 2
OP_SERVE_BATCH = 3
OP_METRICS = 4
_OPS = (OP_PING, OP_SERVE, OP_SERVE_BATCH, OP_METRICS)

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_OVERLOAD = 2
_STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_OVERLOAD)

#: Upper bound on one frame's payload, enforced by both decoders: a
#: corrupt length prefix must fail fast, not allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("!I")
_HANDSHAKE = struct.Struct("!4sHH")  # magic, version, shards (0 = client)
_REQ_HEAD = struct.Struct("!IBd")  # request id, opcode, deadline seconds
_RESP_HEAD = struct.Struct("!IB")  # request id, status
_KEY_LEN = struct.Struct("!H")
_PAIR = struct.Struct("!II")
_BATCH_LEN = struct.Struct("!I")
_SERVE_TOTALS = struct.Struct("!QQQQ")  # m, routing, rotations, links
_METRICS_BODY = struct.Struct("!QQQQQQQQdd")
# requests, routing, rotations, links, admitted, served, overloaded,
# errors, p50, p99 — followed by one _SHARD_TRAILER per shard
_SHARD_TRAILER = struct.Struct("!IBBII")
# pid, health code, breaker code, breaker opens, recoveries
_RETRY_AFTER = struct.Struct("!d")
_MSG_LEN = struct.Struct("!I")

#: Health states on the wire (order matches escalation severity).
_HEALTH_CODES = {"healthy": 0, "suspect": 1, "down": 2, "recovering": 3}
_HEALTH_NAMES = {code: name for name, code in _HEALTH_CODES.items()}
#: Circuit-breaker states on the wire.
_BREAKER_CODES = {"closed": 0, "open": 1, "half_open": 2}
_BREAKER_NAMES = {code: name for name, code in _BREAKER_CODES.items()}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
FRAME_HEADER_SIZE = _LEN.size


def decode_frame_length(head: bytes) -> int:
    """Decode a frame's length prefix, enforcing the payload cap."""
    if len(head) != _LEN.size:
        raise IngressProtocolError(
            f"frame header is {len(head)} bytes, expected {_LEN.size}"
        )
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME_BYTES:
        raise IngressProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            " (corrupt or desynced stream)"
        )
    return length


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length — the complete wire form."""
    if len(payload) > MAX_FRAME_BYTES:
        raise IngressProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN.pack(len(payload)) + payload


def split_frames(buffer: bytes) -> tuple[list[bytes], bytes]:
    """Split a byte buffer into complete frame payloads + the remainder.

    The incremental decoder both endpoints share: feed it everything read
    so far, get back every complete payload and the unconsumed tail
    (which may hold a partial frame).  A length prefix past
    :data:`MAX_FRAME_BYTES` raises — a desynced or corrupt stream must
    not look like a frame that merely has not finished arriving.
    """
    frames: list[bytes] = []
    offset = 0
    total = len(buffer)
    while total - offset >= _LEN.size:
        (length,) = _LEN.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise IngressProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte"
                " cap (corrupt or desynced stream)"
            )
        if total - offset - _LEN.size < length:
            break
        start = offset + _LEN.size
        frames.append(bytes(buffer[start : start + length]))
        offset = start + length
    return frames, bytes(buffer[offset:])


# ----------------------------------------------------------------------
# handshake
# ----------------------------------------------------------------------
def encode_handshake(*, shards: int = 0) -> bytes:
    """The handshake frame (client sends ``shards=0``; server its count)."""
    return encode_frame(
        _HANDSHAKE.pack(HANDSHAKE_MAGIC, PROTOCOL_VERSION, shards)
    )


def decode_handshake(payload: bytes) -> int:
    """Validate a handshake payload; returns the peer's shard count."""
    if len(payload) != _HANDSHAKE.size:
        raise IngressProtocolError(
            f"handshake frame is {len(payload)} bytes,"
            f" expected {_HANDSHAKE.size}"
        )
    magic, version, shards = _HANDSHAKE.unpack(payload)
    if magic != HANDSHAKE_MAGIC:
        raise IngressProtocolError(
            f"bad handshake magic {magic!r} (not an ingress endpoint)"
        )
    if version != PROTOCOL_VERSION:
        raise IngressProtocolError(
            f"protocol version mismatch: peer speaks {version},"
            f" this side speaks {PROTOCOL_VERSION}"
        )
    return shards


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """One decoded client request frame."""

    op: int
    request_id: int
    key: str = ""
    sources: tuple[int, ...] = ()
    targets: tuple[int, ...] = ()
    #: Seconds the client allows this request to spend queued server-side
    #: before it would rather be load-shed; 0.0 = no deadline.
    deadline: float = 0.0


@dataclass(frozen=True)
class Response:
    """One decoded server response frame."""

    request_id: int
    status: int
    #: SERVE / SERVE_BATCH totals (m, routing, rotations, links).
    totals: Optional[tuple[int, int, int, int]] = None
    #: METRICS body (see :func:`encode_response`).
    metrics: Optional[dict] = None
    #: ERROR / OVERLOAD explanation.
    message: str = ""
    #: Server's suggested resubmission delay in seconds (ERROR/OVERLOAD
    #: only; 0.0 = no hint).
    retry_after: float = 0.0


def _pack_key(key: str) -> bytes:
    data = key.encode("utf-8")
    if len(data) > 0xFFFF:
        raise IngressProtocolError(
            f"session key of {len(data)} UTF-8 bytes exceeds the 65535-byte"
            " key cap"
        )
    return _KEY_LEN.pack(len(data)) + data


def _unpack_key(payload: bytes, offset: int) -> tuple[str, int]:
    if len(payload) - offset < _KEY_LEN.size:
        raise IngressProtocolError("frame ends inside a key length")
    (length,) = _KEY_LEN.unpack_from(payload, offset)
    offset += _KEY_LEN.size
    if len(payload) - offset < length:
        raise IngressProtocolError("frame ends inside a key")
    return payload[offset : offset + length].decode("utf-8"), offset + length


def _pack_text(text: str) -> bytes:
    data = text.encode("utf-8")[: 0xFFFF_FFFF]
    return _MSG_LEN.pack(len(data)) + data


def _unpack_text(payload: bytes, offset: int) -> tuple[str, int]:
    if len(payload) - offset < _MSG_LEN.size:
        raise IngressProtocolError("frame ends inside a message length")
    (length,) = _MSG_LEN.unpack_from(payload, offset)
    offset += _MSG_LEN.size
    if len(payload) - offset < length:
        raise IngressProtocolError("frame ends inside a message")
    return (
        payload[offset : offset + length].decode("utf-8", "replace"),
        offset + length,
    )


def encode_request(
    op: int,
    request_id: int,
    *,
    key: str = "",
    sources: Sequence[int] = (),
    targets: Sequence[int] = (),
    deadline: float = 0.0,
) -> bytes:
    """Encode one request as a complete frame (length prefix included)."""
    if op not in _OPS:
        raise IngressProtocolError(f"unknown request opcode {op}")
    head = _REQ_HEAD.pack(request_id & 0xFFFF_FFFF, op, max(0.0, deadline))
    if op in (OP_PING, OP_METRICS):
        return encode_frame(head)
    if len(sources) != len(targets):
        raise IngressProtocolError(
            "serve sources and targets must be equal length"
        )
    parts = [head, _pack_key(key)]
    if op == OP_SERVE:
        if len(sources) != 1:
            raise IngressProtocolError("SERVE carries exactly one request")
        parts.append(_PAIR.pack(int(sources[0]), int(targets[0])))
    else:
        parts.append(_BATCH_LEN.pack(len(sources)))
        parts.extend(
            _PAIR.pack(int(u), int(v)) for u, v in zip(sources, targets)
        )
    return encode_frame(b"".join(parts))


def decode_request(payload: bytes) -> Request:
    """Decode one request payload (no length prefix)."""
    if len(payload) < _REQ_HEAD.size:
        raise IngressProtocolError(
            f"request frame of {len(payload)} bytes is shorter than the"
            f" {_REQ_HEAD.size}-byte header"
        )
    request_id, op, deadline = _REQ_HEAD.unpack_from(payload, 0)
    if op not in _OPS:
        raise IngressProtocolError(f"unknown request opcode {op}")
    offset = _REQ_HEAD.size
    if op in (OP_PING, OP_METRICS):
        return Request(op=op, request_id=request_id, deadline=deadline)
    key, offset = _unpack_key(payload, offset)
    if op == OP_SERVE:
        if len(payload) - offset != _PAIR.size:
            raise IngressProtocolError("SERVE frame has a malformed pair")
        u, v = _PAIR.unpack_from(payload, offset)
        return Request(
            op=op,
            request_id=request_id,
            key=key,
            sources=(u,),
            targets=(v,),
            deadline=deadline,
        )
    if len(payload) - offset < _BATCH_LEN.size:
        raise IngressProtocolError("frame ends inside a batch length")
    (m,) = _BATCH_LEN.unpack_from(payload, offset)
    offset += _BATCH_LEN.size
    if len(payload) - offset != m * _PAIR.size:
        raise IngressProtocolError(
            f"SERVE_BATCH declares {m} pairs but carries"
            f" {(len(payload) - offset) // _PAIR.size}"
        )
    sources = []
    targets = []
    for _ in range(m):
        u, v = _PAIR.unpack_from(payload, offset)
        offset += _PAIR.size
        sources.append(u)
        targets.append(v)
    return Request(
        op=op,
        request_id=request_id,
        key=key,
        sources=tuple(sources),
        targets=tuple(targets),
        deadline=deadline,
    )


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def encode_response(
    request_id: int,
    status: int,
    *,
    totals: Optional[tuple[int, int, int, int]] = None,
    metrics: Optional[dict] = None,
    message: str = "",
    retry_after: float = 0.0,
) -> bytes:
    """Encode one response as a complete frame (length prefix included)."""
    if status not in _STATUSES:
        raise IngressProtocolError(f"unknown response status {status}")
    head = _RESP_HEAD.pack(request_id & 0xFFFF_FFFF, status)
    if status != STATUS_OK:
        return encode_frame(
            head
            + _RETRY_AFTER.pack(max(0.0, retry_after))
            + _pack_text(message)
        )
    if metrics is not None:
        body = _METRICS_BODY.pack(
            metrics.get("requests", 0),
            metrics.get("total_routing", 0),
            metrics.get("total_rotations", 0),
            metrics.get("total_links_changed", 0),
            metrics.get("admitted", 0),
            metrics.get("served", 0),
            metrics.get("overloaded", 0),
            metrics.get("errors", 0),
            metrics.get("latency_p50_seconds", 0.0),
            metrics.get("latency_p99_seconds", 0.0),
        )
        trailer = b"".join(
            _SHARD_TRAILER.pack(
                int(entry.get("pid") or 0) & 0xFFFF_FFFF,
                _HEALTH_CODES.get(entry.get("health", "healthy"), 0),
                _BREAKER_CODES.get(entry.get("breaker", "closed"), 0),
                int(entry.get("breaker_opens", 0)) & 0xFFFF_FFFF,
                int(entry.get("recoveries", 0)) & 0xFFFF_FFFF,
            )
            for entry in metrics.get("shards", ())
        )
        return encode_frame(head + body + trailer)
    if totals is not None:
        return encode_frame(head + _SERVE_TOTALS.pack(*totals))
    return encode_frame(head)  # PING: bare OK


def decode_response(payload: bytes) -> Response:
    """Decode one response payload (no length prefix).

    Body shape is inferred from length: bare OK (ping), serve totals, or
    the metrics block — the three OK bodies have distinct fixed sizes.
    """
    if len(payload) < _RESP_HEAD.size:
        raise IngressProtocolError(
            f"response frame of {len(payload)} bytes is shorter than the"
            f" {_RESP_HEAD.size}-byte header"
        )
    request_id, status = _RESP_HEAD.unpack_from(payload, 0)
    if status not in _STATUSES:
        raise IngressProtocolError(f"unknown response status {status}")
    body = payload[_RESP_HEAD.size :]
    if status != STATUS_OK:
        if len(body) < _RETRY_AFTER.size:
            raise IngressProtocolError(
                "frame ends inside a retry-after hint"
            )
        (retry_after,) = _RETRY_AFTER.unpack_from(body, 0)
        message, _ = _unpack_text(
            payload, _RESP_HEAD.size + _RETRY_AFTER.size
        )
        return Response(
            request_id=request_id,
            status=status,
            message=message,
            retry_after=max(0.0, retry_after),
        )
    if not body:
        return Response(request_id=request_id, status=status)
    if len(body) == _SERVE_TOTALS.size:
        return Response(
            request_id=request_id,
            status=status,
            totals=_SERVE_TOTALS.unpack(body),
        )
    extra = len(body) - _METRICS_BODY.size
    if extra >= 0 and extra % _SHARD_TRAILER.size == 0:
        (
            requests,
            routing,
            rotations,
            links,
            admitted,
            served,
            overloaded,
            errors,
            p50,
            p99,
        ) = _METRICS_BODY.unpack_from(body, 0)
        shards = []
        for offset in range(
            _METRICS_BODY.size, len(body), _SHARD_TRAILER.size
        ):
            pid, health, breaker, opens, recoveries = (
                _SHARD_TRAILER.unpack_from(body, offset)
            )
            shards.append(
                {
                    "shard": len(shards),
                    "pid": pid,
                    "health": _HEALTH_NAMES.get(health, "healthy"),
                    "breaker": _BREAKER_NAMES.get(breaker, "closed"),
                    "breaker_opens": opens,
                    "recoveries": recoveries,
                }
            )
        return Response(
            request_id=request_id,
            status=status,
            metrics={
                "requests": requests,
                "total_routing": routing,
                "total_rotations": rotations,
                "total_links_changed": links,
                "admitted": admitted,
                "served": served,
                "overloaded": overloaded,
                "errors": errors,
                "latency_p50_seconds": p50,
                "latency_p99_seconds": p99,
                "shards": shards,
            },
        )
    raise IngressProtocolError(
        f"OK response body of {len(body)} bytes matches no known shape"
    )
