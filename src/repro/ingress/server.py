"""The async ingress gateway: a serve farm behind a TCP/UNIX socket.

:class:`IngressServer` is the first layer of this stack that looks like a
real inference gateway.  An asyncio accept loop feeds per-shard
**micro-batching** dispatchers in front of a
:class:`~repro.serving.farm.ServeFarm`; the interesting machinery is what
sits between socket and farm:

* **micro-batching** — requests for one shard arriving within
  ``batch_window`` seconds (up to ``batch_max`` of them) coalesce into a
  single worker round trip (:meth:`ServeFarm.serve_grouped`), amortizing
  the Pipe latency that dominates request-at-a-time dispatch; each
  client request still gets its own exact per-batch answer;
* **backpressure** — every shard has a bounded queue (``queue_depth``).
  A connection whose requests target a full queue is simply *not read*
  until the queue drains (the reader coroutine suspends on ``put``), so
  overload propagates to the client's TCP window instead of growing an
  unbounded server-side buffer;
* **admission control** — at most ``max_inflight`` admitted-but-unanswered
  requests; past that, and for any request whose deadline budget expires
  while it queues, the server answers an explicit ``OVERLOAD`` frame.
  Requests are never silently dropped: every admitted request is either
  served or answered with ``OVERLOAD``/``ERROR``;
* **circuit breakers** — one :class:`~repro.ingress.breaker.CircuitBreaker`
  per shard: consecutive dispatch failures or deadline misses trip it
  open and requests for that shard are shed *immediately* with
  ``OVERLOAD`` (carrying a retry-after hint of the remaining open
  window) instead of queueing doomed work while the farm respawns the
  worker; after ``reset_timeout`` a bounded probe budget tests the
  shard before traffic fully resumes.  Breaker sheds happen before
  admission, so ``admitted == served + overloaded + errors`` holds for
  the post-admission population exactly as before;
* **graceful drain** — on SIGTERM (see :meth:`install_signal_handlers`)
  the server stops accepting, answers everything already queued, closes
  the farm and wakes :meth:`serve_forever` — a clean exit, not a dropped
  stream.

Two fault points wire the gateway into :mod:`repro.reliability.faults`:
``ingress.accept`` (fired per accepted connection — ``error`` drops the
connection before the handshake) and ``ingress.dispatch`` (fired per
shard dispatch — ``error`` answers the whole micro-batch with ``ERROR``;
``kill`` hard-exits the server process mid-flight, the scenario a client
must survive by reconnect-and-retry).
"""

from __future__ import annotations

import asyncio
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ExperimentError, FaultInjected, IngressProtocolError
from repro.ingress import protocol
from repro.ingress.breaker import BreakerConfig, CircuitBreaker
from repro.reliability.faults import fire_fault, kill_process
from repro.serving.farm import ServeFarm

__all__ = [
    "ACCEPT_FAULT_POINT",
    "DISPATCH_FAULT_POINT",
    "IngressServer",
]

#: Fired once per accepted connection, before the handshake.
ACCEPT_FAULT_POINT = "ingress.accept"

#: Fired once per shard micro-batch, before the farm round trip.
DISPATCH_FAULT_POINT = "ingress.dispatch"

#: Sentinel pushed through a shard queue to stop its dispatcher.
_STOP = object()


@dataclass(eq=False)
class _Connection:
    """Per-connection write side: serialized writes, shared by dispatchers."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False


@dataclass
class _Pending:
    """One admitted serve request waiting in a shard queue."""

    conn: _Connection
    request: protocol.Request
    #: Event-loop clock time at which the request becomes sheddable
    #: (``None`` = no deadline).
    expires_at: Optional[float]


class IngressServer:
    """Serve a :class:`~repro.serving.ServeFarm` over TCP or UNIX sockets.

    >>> farm = ServeFarm("kary-splaynet", n=256, k=4, shards=2)
    >>> server = IngressServer(farm, port=0)          # doctest: +SKIP
    >>> asyncio.run(server.serve_forever())           # doctest: +SKIP

    Construction takes an already-built farm (the server owns it and
    closes it on drain unless ``close_farm=False``).  ``port=0`` binds an
    ephemeral TCP port (the bound address is :attr:`address` after
    :meth:`start`); ``path=`` serves a UNIX socket instead.
    """

    def __init__(
        self,
        farm: ServeFarm,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        batch_window: float = 0.002,
        batch_max: int = 256,
        queue_depth: int = 1024,
        max_inflight: int = 8192,
        default_deadline: Optional[float] = None,
        close_farm: bool = True,
        breaker: Optional[BreakerConfig] = None,
    ) -> None:
        if batch_window < 0:
            raise ExperimentError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if batch_max < 1:
            raise ExperimentError(f"batch_max must be >= 1, got {batch_max}")
        if queue_depth < 1:
            raise ExperimentError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if max_inflight < 1:
            raise ExperimentError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if default_deadline is not None and default_deadline <= 0:
            raise ExperimentError(
                f"default_deadline must be > 0, got {default_deadline}"
            )
        if path is None and not 0 <= port <= 65535:
            raise ExperimentError(
                f"port must be in 0..65535 (0 = ephemeral), got {port}"
            )
        self.farm = farm
        self.host = host
        self.port = port
        self.path = path
        self.batch_window = batch_window
        self.batch_max = batch_max
        self.queue_depth = queue_depth
        self.max_inflight = max_inflight
        self.default_deadline = default_deadline
        self.close_farm = close_farm
        self.breaker_config = breaker or BreakerConfig()
        #: Per-shard circuit breakers (created in :meth:`start`; touched
        #: only from the event-loop thread).
        self.breakers: list[CircuitBreaker] = []
        #: Ingress-level counters (event-loop thread only).
        self.admitted = 0
        self.served = 0
        self.overloaded = 0
        self.errors = 0
        #: Requests shed by an open breaker (subset of ``overloaded``;
        #: like admission-control sheds, they are never admitted).
        self.breaker_shed = 0
        self.rejected_connections = 0
        self.inflight = 0
        self.address: Optional[Any] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._queues: list[asyncio.Queue] = []
        self._executors: list[ThreadPoolExecutor] = []
        self._dispatchers: list[asyncio.Task] = []
        self._connections: set[_Connection] = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the per-shard dispatchers."""
        if self._server is not None:
            raise ExperimentError("ingress server already started")
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        shards = self.farm.shards
        self.breakers = [
            CircuitBreaker(self.breaker_config) for _ in range(shards)
        ]
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in range(shards)
        ]
        # One single-thread executor per shard keeps each farm pipe
        # driven by exactly one thread at a time (the thread-safety
        # contract of ServeFarm.serve_grouped) while distinct shards
        # serve concurrently.
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"ingress-shard-{shard}"
            )
            for shard in range(shards)
        ]
        self._dispatchers = [
            loop.create_task(self._dispatch_loop(shard))
            for shard in range(shards)
        ]
        if self.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.path
            )
            self.address = self.path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
            self.port = sockname[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (call after :meth:`start`)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    async def serve_forever(self) -> None:
        """Start (if needed) and block until a drain completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush queues, close the farm.

        Idempotent.  Every request admitted before the drain is answered
        (served, or ``OVERLOAD`` when its deadline lapsed); requests
        arriving on live connections afterwards get an explicit
        ``OVERLOAD`` "draining" response until the sockets close.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # The STOP sentinel queues *behind* everything already admitted,
        # so each dispatcher finishes its backlog first.
        for queue in self._queues:
            await queue.put(_STOP)
        for task in self._dispatchers:
            await task
        for conn in list(self._connections):
            await _close_connection(conn)
        for executor in self._executors:
            executor.shutdown(wait=True)
        if self.close_farm:
            self.farm.close()
        self._stopped.set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or writer.get_extra_info(
            "sockname"
        )
        try:
            fault = fire_fault(ACCEPT_FAULT_POINT, context=f"peer={peer}")
            if fault is not None and fault.mode == "kill":
                kill_process(fault)
        except FaultInjected:
            self.rejected_connections += 1
            writer.close()
            return
        conn = _Connection(writer=writer)
        self._connections.add(conn)
        try:
            payload = await self._read_frame(reader)
            if payload is None:
                return
            protocol.decode_handshake(payload)
            async with conn.lock:
                writer.write(protocol.encode_handshake(shards=self.farm.shards))
                await writer.drain()
            while True:
                payload = await self._read_frame(reader)
                if payload is None:
                    return
                await self._handle_request(
                    conn, protocol.decode_request(payload)
                )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            IngressProtocolError,
        ):
            # Protocol violations and transport errors end the connection;
            # anything request-scoped was already answered in-line.
            pass
        finally:
            self._connections.discard(conn)
            await _close_connection(conn)

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Optional[bytes]:
        """One length-prefixed payload, or ``None`` on a clean EOF."""
        try:
            head = await reader.readexactly(protocol.FRAME_HEADER_SIZE)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = protocol.decode_frame_length(head)
        try:
            return await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None

    async def _handle_request(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        if request.op == protocol.OP_PING:
            await self._send(
                conn,
                protocol.encode_response(
                    request.request_id, protocol.STATUS_OK
                ),
            )
            return
        if request.op == protocol.OP_METRICS:
            await self._send(
                conn,
                protocol.encode_response(
                    request.request_id,
                    protocol.STATUS_OK,
                    metrics=self._metrics_snapshot(),
                ),
            )
            return
        # SERVE / SERVE_BATCH.
        if self._draining:
            await self._overload(
                conn, request.request_id, "server is draining"
            )
            return
        if not request.sources:
            await self._send(
                conn,
                protocol.encode_response(
                    request.request_id,
                    protocol.STATUS_OK,
                    totals=(0, 0, 0, 0),
                ),
            )
            return
        if self.inflight >= self.max_inflight:
            await self._overload(
                conn,
                request.request_id,
                f"admission control: {self.inflight} requests in flight"
                f" (cap {self.max_inflight})",
            )
            return
        shard = self.farm.router.shard_of(request.key)
        breaker = self.breakers[shard]
        # Checked after the inflight cap so an allowed half-open probe is
        # always actually queued (its outcome balances the probe budget).
        if not breaker.allow():
            # Shed before admission: queueing at a sick shard converts
            # requests into slow failures; tell the client when to come
            # back instead.
            self.breaker_shed += 1
            await self._overload(
                conn,
                request.request_id,
                f"circuit breaker open for shard {shard}",
                retry_after=breaker.retry_after(),
            )
            return
        deadline = request.deadline or 0.0
        if deadline <= 0.0 and self.default_deadline is not None:
            deadline = self.default_deadline
        expires_at = (
            asyncio.get_running_loop().time() + deadline
            if deadline > 0.0
            else None
        )
        self.inflight += 1
        self.admitted += 1
        # Bounded queue: when the shard is saturated this put() suspends,
        # and with it the connection's read loop — backpressure.
        await self._queues[shard].put(
            _Pending(conn=conn, request=request, expires_at=expires_at)
        )

    async def _overload(
        self,
        conn: _Connection,
        request_id: int,
        message: str,
        *,
        retry_after: float = 0.0,
    ) -> None:
        self.overloaded += 1
        await self._send(
            conn,
            protocol.encode_response(
                request_id,
                protocol.STATUS_OVERLOAD,
                message=message,
                retry_after=retry_after,
            ),
        )

    async def _send(self, conn: _Connection, data: bytes) -> None:
        if conn.closed:
            return
        try:
            async with conn.lock:
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, RuntimeError):
            conn.closed = True

    def _metrics_snapshot(self) -> dict:
        farm_metrics = self.farm.metrics
        shards = self.farm.shards
        # Farm-shaped stubs (tests) may lack the health/supervision
        # surface; degrade to healthy/zero rather than demanding it.
        pids = getattr(self.farm, "shard_pids", lambda: [None] * shards)()
        states = getattr(
            self.farm, "health_states", lambda: ["healthy"] * shards
        )()
        recoveries = getattr(
            self.farm, "shard_recoveries", [0] * shards
        )
        shard_rows = []
        for shard in range(shards):
            breaker = (
                self.breakers[shard]
                if shard < len(self.breakers)
                else CircuitBreaker(self.breaker_config)
            )
            shard_rows.append(
                {
                    "shard": shard,
                    "pid": pids[shard] or 0,
                    "health": states[shard],
                    "breaker": breaker.state,
                    "breaker_opens": breaker.opens,
                    "recoveries": recoveries[shard],
                }
            )
        return {
            **farm_metrics.to_dict(),
            "admitted": self.admitted,
            "served": self.served,
            "overloaded": self.overloaded,
            "errors": self.errors,
            "latency_p50_seconds": farm_metrics.latency_p50,
            "latency_p99_seconds": farm_metrics.latency_p99,
            "shards": shard_rows,
        }

    # -- per-shard micro-batching dispatch -----------------------------
    async def _dispatch_loop(self, shard: int) -> None:
        """Coalesce one shard's queue into micro-batches and serve them."""
        loop = asyncio.get_running_loop()
        queue = self._queues[shard]
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is _STOP:
                return
            batch = [item]
            window_ends = loop.time() + self.batch_window
            while len(batch) < self.batch_max:
                remaining = window_ends - loop.time()
                if remaining <= 0 and queue.empty():
                    break
                try:
                    nxt = (
                        queue.get_nowait()
                        if remaining <= 0
                        else await asyncio.wait_for(queue.get(), remaining)
                    )
                except (asyncio.TimeoutError, asyncio.QueueEmpty):
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            await self._dispatch_batch(shard, batch)
        # Drain sentinel consumed mid-window: everything already answered.

    async def _dispatch_batch(
        self, shard: int, batch: list[_Pending]
    ) -> None:
        loop = asyncio.get_running_loop()
        breaker = self.breakers[shard]
        now = loop.time()
        live: list[_Pending] = []
        for item in batch:
            if item.expires_at is not None and now > item.expires_at:
                self.inflight -= 1
                # A deadline blown in the queue is the shard being slow:
                # it counts against the breaker like a failure.
                breaker.record_failure()
                await self._overload(
                    item.conn,
                    item.request.request_id,
                    "deadline expired while queued",
                )
            else:
                live.append(item)
        if not live:
            return
        try:
            fault = fire_fault(
                DISPATCH_FAULT_POINT, context=f"shard={shard}"
            )
            if fault is not None and fault.mode == "kill":
                kill_process(fault)
            entries = [
                (
                    item.request.key,
                    list(item.request.sources),
                    list(item.request.targets),
                )
                for item in live
            ]
            results = await loop.run_in_executor(
                self._executors[shard],
                self.farm.serve_grouped,
                shard,
                entries,
            )
        except Exception as exc:  # noqa: BLE001 - answered per request
            for item in live:
                self.inflight -= 1
                self.errors += 1
                breaker.record_failure()
                await self._send(
                    item.conn,
                    protocol.encode_response(
                        item.request.request_id,
                        protocol.STATUS_ERROR,
                        message=f"{type(exc).__name__}: {exc}",
                        retry_after=breaker.retry_after(),
                    ),
                )
            return
        # Invariant (no silent drops): every admitted request lands in
        # exactly one of served / overloaded / errors.
        for item, result in zip(live, results):
            self.inflight -= 1
            self.served += 1
            breaker.record_success()
            await self._send(
                item.conn,
                protocol.encode_response(
                    item.request.request_id,
                    protocol.STATUS_OK,
                    totals=(
                        result.m,
                        result.total_routing,
                        result.total_rotations,
                        result.total_links_changed,
                    ),
                ),
            )


async def _close_connection(conn: _Connection) -> None:
    if conn.closed:
        return
    conn.closed = True
    try:
        conn.writer.close()
        await conn.writer.wait_closed()
    except (ConnectionError, RuntimeError):
        pass
