"""Per-shard circuit breakers for the ingress gateway.

When a shard is sick — its dispatches erroring or blowing deadlines —
queueing more requests at it just converts them into slow failures.  The
gateway instead runs one :class:`CircuitBreaker` per shard, the classic
three-state machine:

* **closed** — requests flow; consecutive failures are counted, success
  resets the count;
* **open** — tripped after ``failure_threshold`` consecutive failures:
  requests for the shard are shed immediately with ``OVERLOAD`` (plus a
  retry-after hint of the remaining open window) instead of queueing
  doomed work.  After ``reset_timeout`` seconds the breaker half-opens;
* **half_open** — up to ``probe_budget`` probe requests are let through
  to test the shard; any failure re-opens (a fresh full window), while
  ``probe_budget`` consecutive successes close the breaker.

The machine is deliberately pure state + arithmetic over an injectable
clock: no threads, no timers, no I/O — which is what lets the hypothesis
property suite drive it through arbitrary success/failure/timeout
sequences and assert the transition invariants exhaustively.  It is not
itself thread safe; the gateway touches each shard's breaker from the
event loop plus that shard's single dispatcher, guarded there.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Every state the machine can be in (anything else is a bug).
BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold, cool-down window, and half-open probe budget."""

    #: Consecutive failures (errors or deadline misses) that trip the
    #: breaker open.
    failure_threshold: int = 5
    #: Seconds the breaker stays open before allowing probes.
    reset_timeout: float = 1.0
    #: Concurrent probe admissions while half-open; the same number of
    #: consecutive probe successes closes the breaker.
    probe_budget: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ExperimentError(
                "breaker failure_threshold must be >= 1,"
                f" got {self.failure_threshold}"
            )
        if self.reset_timeout <= 0:
            raise ExperimentError(
                f"breaker reset_timeout must be > 0, got {self.reset_timeout}"
            )
        if self.probe_budget < 1:
            raise ExperimentError(
                f"breaker probe_budget must be >= 1, got {self.probe_budget}"
            )


class CircuitBreaker:
    """closed → open → half-open → closed, over an injectable clock."""

    def __init__(
        self,
        config: "BreakerConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self.state = CLOSED
        #: Consecutive failures while closed.
        self.failures = 0
        #: Times the breaker tripped open (monotone counter).
        self.opens = 0
        #: Probes admitted but not yet resolved while half-open.
        self.probes_inflight = 0
        #: Consecutive probe successes while half-open.
        self.probe_successes = 0
        self._opened_at = 0.0

    # -- admission -----------------------------------------------------
    def allow(self) -> bool:
        """May one request pass right now?  (May half-open the breaker.)

        While open, flips to half-open once ``reset_timeout`` has
        elapsed; while half-open, admits at most ``probe_budget``
        unresolved probes.  Closed always admits.
        """
        if self.state == OPEN:
            if self.clock() - self._opened_at >= self.config.reset_timeout:
                self.state = HALF_OPEN
                self.probes_inflight = 0
                self.probe_successes = 0
            else:
                return False
        if self.state == HALF_OPEN:
            if self.probes_inflight >= self.config.probe_budget:
                return False
            self.probes_inflight += 1
            return True
        return True

    def retry_after(self) -> float:
        """Seconds until the next admission chance (0.0 unless open)."""
        if self.state != OPEN:
            return 0.0
        remaining = (
            self.config.reset_timeout - (self.clock() - self._opened_at)
        )
        return max(0.0, remaining)

    # -- outcomes ------------------------------------------------------
    def record_success(self) -> None:
        """One admitted request served fine."""
        if self.state == HALF_OPEN:
            self.probes_inflight = max(0, self.probes_inflight - 1)
            self.probe_successes += 1
            if self.probe_successes >= self.config.probe_budget:
                self._close()
        elif self.state == CLOSED:
            self.failures = 0
        # Late ack while OPEN (outcome of a pre-trip request): ignored —
        # only the timed half-open probe may rehabilitate the shard.

    def record_failure(self) -> None:
        """One admitted request errored or missed its deadline."""
        if self.state == HALF_OPEN:
            self.probes_inflight = max(0, self.probes_inflight - 1)
            self._trip()
        elif self.state == CLOSED:
            self.failures += 1
            if self.failures >= self.config.failure_threshold:
                self._trip()
        # Late failure while OPEN: already shedding, nothing to escalate.

    # -- views ---------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "opens": self.opens,
            "retry_after": self.retry_after(),
        }

    # -- internals -----------------------------------------------------
    def _trip(self) -> None:
        self.state = OPEN
        self.opens += 1
        self.failures = 0
        self.probe_successes = 0
        self._opened_at = self.clock()

    def _close(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.probes_inflight = 0
        self.probe_successes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, failures={self.failures},"
            f" opens={self.opens})"
        )
