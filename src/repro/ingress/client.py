"""Clients for the ingress gateway: blocking and asyncio variants.

:class:`IngressClient` is the simple one — a blocking socket, one request
in flight, reconnect-and-retry on connection failure under a
:class:`~repro.reliability.retry.RetryPolicy` (deterministic backoff, the
repository's one retry implementation).  :class:`AsyncIngressClient`
multiplexes many concurrent requests over a single connection by request
id — the shape that makes server-side micro-batching visible, since many
requests must be *in flight* for the gateway to coalesce them.

Failure taxonomy (both clients):

* :class:`~repro.errors.IngressConnectionError` — the connection refused,
  reset, or closed mid-reply.  Transient and **retryable**: the blocking
  client retries it automatically under its policy; the async client
  fails the affected calls and reconnects on the next one.  A request
  that died between send and reply *may have been served* — retrying is
  at-least-once delivery, exactly like re-sending past any real gateway;
* :class:`~repro.errors.IngressOverload` — the server explicitly shed
  the request (admission control, an open circuit breaker, or an
  expired deadline).  Not retried by default; with
  ``overload_retries=N`` the blocking client honors the server's
  retry-after hint — it sleeps the hinted delay (capped) and resubmits,
  up to ``N`` times, but only when a hint is present (breaker sheds);
  hint-less sheds like "draining" still surface immediately;
* :class:`~repro.errors.IngressProtocolError` — framing/version breakage.
  Never retried; it means the endpoints disagree about the protocol.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any, Iterable, Optional

from repro.errors import (
    IngressConnectionError,
    IngressError,
    IngressOverload,
)
from repro.ingress import protocol
from repro.net.session import LatencyStats
from repro.network.protocols import BatchServeResult
from repro.reliability.retry import RetryPolicy, call_with_retries

__all__ = ["AsyncIngressClient", "IngressClient", "default_retry_policy"]


def default_retry_policy() -> RetryPolicy:
    """Reconnect-and-retry on connection failure only (3 tries total)."""
    return RetryPolicy(retries=2, retry_on=(IngressConnectionError,))


def _totals_result(totals: tuple[int, int, int, int]) -> BatchServeResult:
    m, routing, rotations, links = totals
    return BatchServeResult(m, routing, rotations, links, None, None)


def _raise_for_status(response: protocol.Response) -> protocol.Response:
    if response.status == protocol.STATUS_OVERLOAD:
        raise IngressOverload(
            response.message, retry_after=response.retry_after
        )
    if response.status == protocol.STATUS_ERROR:
        raise IngressError(f"server error: {response.message}")
    return response


class IngressClient:
    """Blocking gateway client: one request at a time, auto-reconnect.

    >>> client = IngressClient(port=4217)             # doctest: +SKIP
    >>> client.serve("tenant-7", 3, 901)              # doctest: +SKIP
    >>> client.serve_batch("tenant-7", [1, 2], [8, 9])  # doctest: +SKIP
    >>> client.metrics()["requests"]                  # doctest: +SKIP

    ``path=`` connects over a UNIX socket instead of TCP.  The connection
    opens lazily on first use; a failed round trip closes it, and the
    retry policy (default: :func:`default_retry_policy`) reconnects and
    re-sends — only for :class:`~repro.errors.IngressConnectionError`,
    never for overload or server errors.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        *,
        path: Optional[str] = None,
        deadline: float = 0.0,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        overload_retries: int = 0,
        max_retry_after: float = 5.0,
    ) -> None:
        if (port is None) == (path is None):
            raise IngressError(
                "pass exactly one of port= (TCP) or path= (UNIX socket)"
            )
        if overload_retries < 0:
            raise IngressError(
                f"overload_retries must be >= 0, got {overload_retries}"
            )
        if max_retry_after <= 0:
            raise IngressError(
                f"max_retry_after must be > 0, got {max_retry_after}"
            )
        self.host = host
        self.port = port
        self.path = path
        self.deadline = deadline
        self.timeout = timeout
        self.retry = default_retry_policy() if retry is None else retry
        self.overload_retries = overload_retries
        self.max_retry_after = max_retry_after
        self.server_shards: Optional[int] = None
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._next_id = 0

    # -- connection management -----------------------------------------
    def __enter__(self) -> "IngressClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer = b""

    def connect(self) -> None:
        """Open the socket and run the handshake (no-op when connected)."""
        if self._sock is not None:
            return
        try:
            if self.path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as exc:
            raise IngressConnectionError(
                f"cannot connect to ingress at {self._where()}: {exc}"
            ) from exc
        self._sock = sock
        self._buffer = b""
        try:
            self._send_bytes(protocol.encode_handshake())
            self.server_shards = protocol.decode_handshake(
                self._recv_frame()
            )
        except IngressError:
            self.close()
            raise

    def _where(self) -> str:
        return self.path if self.path is not None else f"{self.host}:{self.port}"

    def _send_bytes(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            self.close()
            raise IngressConnectionError(
                f"ingress connection lost during send: {exc}"
            ) from exc

    def _recv_frame(self) -> bytes:
        while True:
            frames, self._buffer = protocol.split_frames(self._buffer)
            if frames:
                # One request in flight at a time: at most one frame can
                # be pending, so the remainder buffer stays tiny.
                self._buffer = b"".join(
                    protocol.encode_frame(extra) for extra in frames[1:]
                ) + self._buffer
                return frames[0]
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                self.close()
                raise IngressConnectionError(
                    f"ingress connection lost during receive: {exc}"
                ) from exc
            if not chunk:
                self.close()
                raise IngressConnectionError(
                    "ingress connection closed by server"
                )
            self._buffer += chunk

    def _roundtrip(self, build_frame) -> protocol.Response:
        """One request/response exchange under the retry policy.

        Connection failures retry under ``self.retry``.  OVERLOAD
        responses carrying a retry-after hint additionally resubmit up
        to ``overload_retries`` times, sleeping the hinted delay
        (capped at ``max_retry_after``) between attempts — the polite
        reaction to a circuit breaker's "come back in X seconds".
        """

        def attempt() -> protocol.Response:
            self.connect()
            self._next_id = (self._next_id + 1) & 0xFFFF_FFFF
            request_id = self._next_id
            self._send_bytes(build_frame(request_id))
            response = protocol.decode_response(self._recv_frame())
            if response.request_id != request_id:
                self.close()
                raise IngressConnectionError(
                    f"response id {response.request_id} does not match"
                    f" request id {request_id} (desynced connection)"
                )
            return response

        overload_budget = self.overload_retries
        while True:
            try:
                return _raise_for_status(
                    call_with_retries(attempt, self.retry)
                )
            except IngressOverload as exc:
                if overload_budget <= 0 or exc.retry_after <= 0.0:
                    raise
                overload_budget -= 1
                time.sleep(min(exc.retry_after, self.max_retry_after))

    # -- operations ----------------------------------------------------
    def ping(self) -> bool:
        """Round-trip liveness check (handshake included on first use)."""
        self._roundtrip(
            lambda rid: protocol.encode_request(protocol.OP_PING, rid)
        )
        return True

    def serve(
        self, key: str, u: int, v: int, *, deadline: Optional[float] = None
    ) -> BatchServeResult:
        """Serve one keyed request; returns its exact cost totals."""
        return self.serve_batch(key, [u], [v], deadline=deadline)

    def serve_batch(
        self,
        key: str,
        sources,
        targets,
        *,
        deadline: Optional[float] = None,
    ) -> BatchServeResult:
        """Serve one key's request batch; returns the batch totals."""
        budget = self.deadline if deadline is None else deadline
        response = self._roundtrip(
            lambda rid: protocol.encode_request(
                protocol.OP_SERVE_BATCH,
                rid,
                key=key,
                sources=list(sources),
                targets=list(targets),
                deadline=budget,
            )
        )
        return _totals_result(response.totals)

    def metrics(self) -> dict:
        """The server's aggregate metrics snapshot (see the protocol)."""
        response = self._roundtrip(
            lambda rid: protocol.encode_request(protocol.OP_METRICS, rid)
        )
        return dict(response.metrics)


class AsyncIngressClient:
    """Asyncio gateway client: many requests multiplexed per connection.

    Every call coroutine registers a future keyed by request id, writes
    its frame, and awaits its own response while a single reader task
    resolves futures as frames arrive — so ``asyncio.gather`` over many
    :meth:`serve` calls keeps the server's micro-batcher fed.  A dropped
    connection fails every pending call with
    :class:`~repro.errors.IngressConnectionError`; the next call
    reconnects.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        *,
        path: Optional[str] = None,
        deadline: float = 0.0,
    ) -> None:
        if (port is None) == (path is None):
            raise IngressError(
                "pass exactly one of port= (TCP) or path= (UNIX socket)"
            )
        self.host = host
        self.port = port
        self.path = path
        self.deadline = deadline
        self.server_shards: Optional[int] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0

    async def __aenter__(self) -> "AsyncIngressClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        if self._writer is not None:
            return
        try:
            if self.path is not None:
                reader, writer = await asyncio.open_unix_connection(self.path)
            else:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
        except OSError as exc:
            raise IngressConnectionError(
                f"cannot connect to ingress: {exc}"
            ) from exc
        self._reader, self._writer = reader, writer
        writer.write(protocol.encode_handshake())
        await writer.drain()
        try:
            head = await reader.readexactly(protocol.FRAME_HEADER_SIZE)
            payload = await reader.readexactly(
                protocol.decode_frame_length(head)
            )
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            await self.close()
            raise IngressConnectionError(
                f"connection closed during handshake: {exc}"
            ) from exc
        self.server_shards = protocol.decode_handshake(payload)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        self._fail_pending("connection closed")

    def _fail_pending(self, reason: str) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    IngressConnectionError(
                        f"ingress connection lost with request in flight:"
                        f" {reason}"
                    )
                )

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while True:
                head = await reader.readexactly(protocol.FRAME_HEADER_SIZE)
                payload = await reader.readexactly(
                    protocol.decode_frame_length(head)
                )
                response = protocol.decode_response(payload)
                future = self._pending.pop(response.request_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ) as exc:
            self._writer = None
            self._fail_pending(str(exc) or "EOF")
        except asyncio.CancelledError:
            raise

    async def _call(self, build_frame) -> protocol.Response:
        await self.connect()
        self._next_id = (self._next_id + 1) & 0xFFFF_FFFF
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(build_frame(request_id))
                await self._writer.drain()
        except (ConnectionError, RuntimeError, AttributeError) as exc:
            self._pending.pop(request_id, None)
            await self.close()
            raise IngressConnectionError(
                f"ingress connection lost during send: {exc}"
            ) from exc
        return _raise_for_status(await future)

    # -- operations ----------------------------------------------------
    async def ping(self) -> bool:
        await self._call(
            lambda rid: protocol.encode_request(protocol.OP_PING, rid)
        )
        return True

    async def serve(
        self, key: str, u: int, v: int, *, deadline: Optional[float] = None
    ) -> BatchServeResult:
        return await self.serve_batch(key, [u], [v], deadline=deadline)

    async def serve_batch(
        self,
        key: str,
        sources,
        targets,
        *,
        deadline: Optional[float] = None,
    ) -> BatchServeResult:
        budget = self.deadline if deadline is None else deadline
        response = await self._call(
            lambda rid: protocol.encode_request(
                protocol.OP_SERVE_BATCH,
                rid,
                key=key,
                sources=list(sources),
                targets=list(targets),
                deadline=budget,
            )
        )
        return _totals_result(response.totals)

    async def metrics(self) -> dict:
        response = await self._call(
            lambda rid: protocol.encode_request(protocol.OP_METRICS, rid)
        )
        return dict(response.metrics)

    async def serve_stream(
        self,
        requests: Iterable[tuple[str, int, int]],
        *,
        concurrency: int = 64,
        retry: Optional[RetryPolicy] = None,
    ) -> tuple[BatchServeResult, LatencyStats]:
        """Drive a keyed stream with bounded concurrency; aggregate totals.

        Submits requests in order with at most ``concurrency`` in flight
        (per-key ordering is preserved: one connection, FIFO queues the
        whole way down).  Records client-observed per-request wall
        latency into a :class:`~repro.net.session.LatencyStats`.  With a
        ``retry`` policy, connection failures reconnect and re-send under
        deterministic backoff — the retryable-state contract tested by
        kill-the-server fault drills.
        """
        semaphore = asyncio.Semaphore(concurrency)
        latency = LatencyStats()
        totals = [0, 0, 0, 0]

        async def one(key: str, u: int, v: int) -> None:
            async with semaphore:
                t0 = time.perf_counter()
                if retry is None:
                    result = await self.serve(key, u, v)
                else:
                    result = await self._retry_async(
                        lambda: self.serve(key, u, v), retry
                    )
                latency.record(time.perf_counter() - t0)
                totals[0] += result.m
                totals[1] += result.total_routing
                totals[2] += result.total_rotations
                totals[3] += result.total_links_changed

        await asyncio.gather(*(one(*request) for request in requests))
        return (
            BatchServeResult(
                totals[0], totals[1], totals[2], totals[3], None, None
            ),
            latency,
        )

    async def _retry_async(self, attempt, policy: RetryPolicy):
        """``call_with_retries`` for coroutines (asyncio sleep between)."""
        tries = 0
        while True:
            try:
                return await attempt()
            except policy.retry_on:
                tries += 1
                if tries > policy.retries:
                    raise
                delay = policy.delay(tries)
                if delay > 0:
                    await asyncio.sleep(delay)
