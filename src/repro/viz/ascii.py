"""Centered 2-D ASCII rendering for rooted trees, plus tiny chart helpers.

The tree layout is the classic bottom-up block merge: each subtree renders
to a rectangular block of text with a known root column; a parent centers
itself over its children and draws connector lines.  Works for any fanout
and any label width, so one renderer serves binary SplayNets, k-ary
networks and multiway (Sherk) nodes alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "render_tree",
    "render_kary_network",
    "render_splay_tree",
    "render_multiway_tree",
    "bar_chart",
    "sparkline",
]


@dataclass
class _Block:
    """A rendered subtree: lines of equal width plus the root's column."""

    lines: list[str]
    width: int
    root_center: int


_GAP = 2  # blank columns between sibling blocks


def _leaf_block(label: str) -> _Block:
    return _Block([label], len(label), len(label) // 2)


def _merge_blocks(label: str, children: list[_Block]) -> _Block:
    if not children:
        return _leaf_block(label)
    # lay children side by side
    total_width = sum(c.width for c in children) + _GAP * (len(children) - 1)
    height = max(len(c.lines) for c in children)
    merged_lines: list[str] = []
    for row in range(height):
        parts = []
        for child in children:
            line = child.lines[row] if row < len(child.lines) else " " * child.width
            parts.append(line)
        merged_lines.append((" " * _GAP).join(parts))
    # children root columns in merged coordinates
    centers: list[int] = []
    offset = 0
    for child in children:
        centers.append(offset + child.root_center)
        offset += child.width + _GAP
    anchor = (centers[0] + centers[-1]) // 2

    label_start = anchor - len(label) // 2
    width = max(total_width, label_start + len(label))
    if label_start < 0:
        shift = -label_start
        merged_lines = [" " * shift + line for line in merged_lines]
        centers = [c + shift for c in centers]
        anchor += shift
        label_start = 0
        width += shift
    label_line = (
        " " * label_start + label + " " * (width - label_start - len(label))
    )

    # connector row: '|' for an only child, otherwise a rail with '+'
    connector = [" "] * width
    if len(children) == 1:
        connector[centers[0]] = "|"
    else:
        lo, hi = centers[0], centers[-1]
        for col in range(lo, hi + 1):
            connector[col] = "-"
        for c in centers:
            connector[c] = "+"
        connector[anchor] = "+"
    connector_line = "".join(connector)

    lines = [label_line, connector_line] + [
        line.ljust(width) for line in merged_lines
    ]
    return _Block([line.ljust(width) for line in lines], width, anchor)


def render_tree(
    root,
    children: Callable[[object], Iterable],
    label: Callable[[object], str],
    *,
    max_nodes: int = 500,
) -> str:
    """Render any rooted tree as centered ASCII art.

    Parameters
    ----------
    root:
        Root node object.
    children:
        Callable returning an iterable of child node objects.
    label:
        Callable turning a node into its display string.
    max_nodes:
        Safety bound: rendering is refused beyond this size.
    """
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        if count > max_nodes:
            raise ReproError(
                f"tree exceeds max_nodes={max_nodes}; render a subtree instead"
            )
        stack.extend(children(node))

    def build(node) -> _Block:
        kids = [build(child) for child in children(node)]
        return _merge_blocks(label(node), kids)

    block = build(root)
    return "\n".join(line.rstrip() for line in block.lines)


# ----------------------------------------------------------------------
# adapters for the repository's structures
# ----------------------------------------------------------------------
def render_kary_network(tree, *, show_routing: bool = False, max_nodes: int = 200) -> str:
    """ASCII art for a :class:`~repro.core.tree.KAryTreeNetwork`.

    With ``show_routing`` each node shows its routing array — handy when
    eyeballing rotation behaviour.
    """

    def label(node) -> str:
        if show_routing:
            routing = ",".join(f"{v:g}" for v in node.routing)
            return f"[{node.nid}|{routing}]"
        return f"({node.nid})"

    return render_tree(
        tree.root, lambda nd: list(nd.child_iter()), label, max_nodes=max_nodes
    )


def render_splay_tree(tree, *, max_nodes: int = 200) -> str:
    """ASCII art for a :class:`~repro.datastructures.splay_tree.SplayTree`
    or any object with ``root`` nodes carrying ``key``/``left``/``right``."""
    if tree.root is None:
        return "(empty)"

    def kids(node):
        return [c for c in (node.left, node.right) if c is not None]

    return render_tree(
        tree.root, kids, lambda nd: f"({nd.key})", max_nodes=max_nodes
    )


def render_multiway_tree(tree, *, max_nodes: int = 200) -> str:
    """ASCII art for a Sherk-style multiway tree (keys shown per node)."""
    if tree.root is None:
        return "(empty)"

    def kids(node):
        return [c for c in node.children if c is not None]

    def label(node) -> str:
        return "[" + " ".join(str(key) for key in node.keys) + "]"

    return render_tree(tree.root, kids, label, max_nodes=max_nodes)


# ----------------------------------------------------------------------
# chart helpers
# ----------------------------------------------------------------------
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline (empty input → empty string)."""
    data = list(values)
    if not data:
        return ""
    lo, hi = min(data), max(data)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(data)
    span = hi - lo
    out = []
    for v in data:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 40,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """A horizontal bar chart; bars scale to the max value.

    ``baseline`` draws a ``|`` marker at that value on every row (used to
    show e.g. the 2-ary SplayNet anchor across a k sweep).
    """
    if not items:
        return "(no data)"
    if width < 4:
        raise ReproError(f"width must be >= 4, got {width}")
    top = max(value for _, value in items)
    if top <= 0:
        top = 1.0
    label_width = max(len(name) for name, _ in items)
    lines = []
    for name, value in items:
        filled = int(round(value / top * width))
        bar = "#" * filled
        if baseline is not None and 0 <= baseline <= top:
            col = int(round(baseline / top * width))
            bar = bar.ljust(max(col + 1, len(bar)))
            if col < len(bar):
                bar = bar[:col] + "|" + bar[col + 1 :]
        lines.append(f"{name.ljust(label_width)}  {bar}  {value:g}{unit}")
    return "\n".join(lines)
