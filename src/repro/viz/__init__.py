"""Text-first visualization substrate (no plotting dependency).

Everything in the repository renders to plain text so results are viewable
in CI logs and terminals:

* :mod:`repro.viz.ascii` — a 2-D centered ASCII layout for any rooted tree
  (networks, BSTs, multiway trees), plus horizontal bar charts and
  sparklines for benchmark series.
* :mod:`repro.viz.dot` — Graphviz DOT export for trees and before/after
  rotation pairs (render externally with ``dot -Tsvg``).
* :mod:`repro.viz.figures` — regenerates the paper's *schematic* figures
  (1–8: node layout, rotation states, centroid topology, (k+1)-SplayNet
  structure) from live data structures, so the diagrams in the paper can be
  compared against what the implementation actually builds.
"""

from repro.viz.ascii import (
    bar_chart,
    render_tree,
    render_kary_network,
    render_splay_tree,
    sparkline,
)
from repro.viz.dot import rotation_pair_dot, tree_to_dot
from repro.viz.heatmap import render_demand_heatmap
from repro.viz.series import convergence_panel, render_series
from repro.viz.figures import (
    figure1_node_layout,
    figure2_centroid_tree,
    figure3_semi_splay_states,
    figure5_k_splay_states,
    figure7_centroid_splaynet,
    render_all_figures,
)

__all__ = [
    "render_tree",
    "render_kary_network",
    "render_splay_tree",
    "bar_chart",
    "sparkline",
    "tree_to_dot",
    "rotation_pair_dot",
    "render_series",
    "convergence_panel",
    "render_demand_heatmap",
    "figure1_node_layout",
    "figure2_centroid_tree",
    "figure3_semi_splay_states",
    "figure5_k_splay_states",
    "figure7_centroid_splaynet",
    "render_all_figures",
]
