"""Text rendering of per-request simulation series (convergence views).

A :class:`~repro.network.simulator.SimulationResult` recorded with
``record_series=True`` carries per-request routing costs; these helpers
compress the series into terminal-friendly convergence summaries — the
text analogue of the warm-up plots SAN papers show.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.network.metrics import rolling_mean, summarize_series
from repro.network.simulator import SimulationResult
from repro.viz.ascii import sparkline

__all__ = ["render_series", "convergence_panel"]


def render_series(result: SimulationResult, *, buckets: int = 60, window: int = 200) -> str:
    """One-line-per-metric text view of a recorded run.

    The routing series is bucket-averaged to ``buckets`` cells and drawn as
    a sparkline; the summary line reports warm-up length and steady-state
    mean (via :func:`~repro.network.metrics.summarize_series`).
    """
    if result.routing_series is None:
        raise ReproError(
            "result has no recorded series; run the simulator with"
            " record_series=True"
        )
    series = np.asarray(result.routing_series, dtype=np.float64)
    if len(series) == 0:
        raise ReproError("empty series")
    buckets = max(1, min(buckets, len(series)))
    chunks = np.array_split(series, buckets)
    means = [float(chunk.mean()) for chunk in chunks]
    summary = summarize_series(result, window=min(window, max(1, len(series) // 2)))
    lines = [
        f"{result.name or 'run'}: m={result.m}, average"
        f" {result.average_routing:.3f} hops/request",
        sparkline(means),
        f"warm-up ≈ {summary.warmup} requests; p50 {summary.p50:.0f},"
        f" p90 {summary.p90:.0f}, p99 {summary.p99:.0f}",
    ]
    return "\n".join(lines)


def convergence_panel(
    results: dict[str, SimulationResult], *, buckets: int = 50, window: int = 200
) -> str:
    """Aligned sparkline panel comparing several recorded runs."""
    if not results:
        return "(no runs)"
    label_width = max(len(name) for name in results)
    lines = []
    for name, result in results.items():
        if result.routing_series is None:
            raise ReproError(f"run {name!r} has no recorded series")
        series = np.asarray(result.routing_series, dtype=np.float64)
        cells = max(1, min(buckets, len(series)))
        means = [float(chunk.mean()) for chunk in np.array_split(series, cells)]
        smooth = rolling_mean(series, min(window, len(series)))
        tail = float(smooth[-1]) if len(smooth) else float("nan")
        lines.append(
            f"{name.ljust(label_width)}  {sparkline(means)}  tail {tail:.2f}"
        )
    return "\n".join(lines)
