"""ASCII demand-matrix heatmaps.

A terminal view of who talks to whom: rows are sources, columns are
destinations, shade encodes request volume on a log scale.  Large matrices
are down-sampled into cell blocks so any ``n`` fits a terminal width —
the text analogue of the demand heatmaps in datacenter-traffic papers
(e.g. the Facebook study [21] this paper draws workloads from).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.workloads.demand import DemandMatrix

__all__ = ["render_demand_heatmap"]

_SHADES = " .:-=+*#%@"


def _bucket(matrix: np.ndarray, cells: int) -> np.ndarray:
    """Sum-pool an ``n×n`` matrix into at most ``cells×cells`` blocks."""
    n = matrix.shape[0]
    if n <= cells:
        return matrix.astype(np.float64)
    edges = np.linspace(0, n, cells + 1).astype(int)
    out = np.empty((cells, cells), dtype=np.float64)
    for i in range(cells):
        for j in range(cells):
            block = matrix[edges[i] : edges[i + 1], edges[j] : edges[j + 1]]
            out[i, j] = float(block.sum())
    return out


def render_demand_heatmap(
    demand: DemandMatrix,
    *,
    cells: int = 48,
    log_scale: bool = True,
    legend: bool = True,
) -> str:
    """Render a demand matrix as an ASCII heatmap.

    Parameters
    ----------
    demand:
        The matrix to draw (sources on rows, destinations on columns).
    cells:
        Maximum heatmap side length; larger matrices are sum-pooled.
    log_scale:
        Shade by ``log1p(volume)`` (default) so elephants do not wash out
        the mice; pass False for linear shading.
    legend:
        Append the scale legend and totals line.
    """
    if cells < 2:
        raise ReproError(f"cells must be >= 2, got {cells}")
    dense = demand.dense().astype(np.float64)
    pooled = _bucket(dense, cells)
    values = np.log1p(pooled) if log_scale else pooled
    top = float(values.max())
    lines = []
    side = pooled.shape[0]
    for i in range(side):
        row_chars = []
        for j in range(side):
            if top <= 0:
                row_chars.append(_SHADES[0])
                continue
            level = int(values[i, j] / top * (len(_SHADES) - 1))
            row_chars.append(_SHADES[level])
        lines.append("".join(row_chars))
    if legend:
        n = demand.n
        pooledness = (
            "" if side == n else f" (pooled {n}×{n} → {side}×{side})"
        )
        scale = "log" if log_scale else "linear"
        lines.append(
            f"demand heatmap{pooledness}: {scale} shade"
            f" '{_SHADES.strip()}', total {demand.total} requests,"
            f" density {demand.density():.3f}"
        )
    return "\n".join(lines)
