"""Graphviz DOT export for trees and rotation before/after pairs.

Pure string generation — no graphviz dependency; pipe the output through
``dot -Tsvg`` (or paste into an online renderer) to get figures matching
the paper's diagrams.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

__all__ = ["tree_to_dot", "rotation_pair_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def tree_to_dot(
    root,
    children: Callable[[object], Iterable],
    label: Callable[[object], str],
    *,
    name: str = "tree",
    highlight: Optional[set] = None,
    node_id: Optional[Callable[[object], str]] = None,
) -> str:
    """Serialize a rooted tree as a DOT digraph.

    ``highlight`` is a set of *labels* drawn filled (used to mark the nodes
    a rotation touched); ``node_id`` overrides the DOT node identity
    (defaults to the label, which must then be unique).
    """
    ident = node_id or label
    lines = [f"digraph {name} {{", "  node [shape=circle];"]
    highlight = highlight or set()
    stack = [root]
    seen: list = []
    while stack:
        node = stack.pop()
        seen.append(node)
        text = _escape(label(node))
        attrs = f'label="{text}"'
        if label(node) in highlight:
            attrs += ', style=filled, fillcolor="lightblue"'
        lines.append(f'  "{_escape(ident(node))}" [{attrs}];')
        for child in children(node):
            stack.append(child)
            lines.append(
                f'  "{_escape(ident(node))}" -> "{_escape(ident(child))}";'
            )
    lines.append("}")
    return "\n".join(lines)


def rotation_pair_dot(
    before_root,
    after_root,
    children: Callable[[object], Iterable],
    label: Callable[[object], str],
    *,
    touched: Optional[set] = None,
) -> str:
    """Two clusters (before/after a rotation) in one DOT graph.

    Node identities are prefixed per cluster so the same identifier can
    appear in both snapshots.
    """
    touched = touched or set()
    parts = ["digraph rotation {", "  node [shape=circle];"]
    for tag, root in (("before", before_root), ("after", after_root)):
        parts.append(f"  subgraph cluster_{tag} {{")
        parts.append(f'    label="{tag}";')
        stack = [root]
        while stack:
            node = stack.pop()
            text = _escape(label(node))
            attrs = f'label="{text}"'
            if label(node) in touched:
                attrs += ', style=filled, fillcolor="lightblue"'
            parts.append(f'    "{tag}_{_escape(label(node))}" [{attrs}];')
            for child in children(node):
                stack.append(child)
                parts.append(
                    f'    "{tag}_{_escape(label(node))}" -> '
                    f'"{tag}_{_escape(label(child))}";'
                )
        parts.append("  }")
    parts.append("}")
    return "\n".join(parts)
