"""Regenerate the paper's schematic figures from live data structures.

The paper's Figures 1–8 are diagrams, not measurements; this module renders
each from the *actual implementation* so the diagrams can be diffed against
reality:

========  =========================================================
Figure 1  a node's key + routing array layout (Definition 1)
Figure 2  the centroid (k+1)-degree tree (also Appendix Figure 9)
Figure 3  the k-semi-splay initial state and its result
Figure 4  a chain state before k-splay
Figure 5  k-splay case 1 (zig-zag analogue), before/after
Figure 6  k-splay case 2 (zig-zig analogue), before/after
Figure 7  the 3-SplayNet structure (k = 2 centroid heuristic)
Figure 8  the (k+1)-SplayNet structure (general k)
========  =========================================================

Each function returns a text block; :func:`render_all_figures` produces the
full gallery (used by ``examples/rotation_gallery.py`` and a smoke bench).
"""

from __future__ import annotations

import random

from repro.core.builders import build_path_tree, build_random_tree
from repro.core.centroid import build_centroid_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.rotations import k_semi_splay, k_splay
from repro.core.tree import KAryTreeNetwork
from repro.errors import ReproError
from repro.net.registry import build_network
from repro.viz.ascii import render_kary_network

__all__ = [
    "figure1_node_layout",
    "figure2_centroid_tree",
    "figure3_semi_splay_states",
    "figure4_chain_state",
    "figure5_k_splay_states",
    "figure6_k_splay_close_states",
    "figure7_centroid_splaynet",
    "figure8_kplus1_splaynet",
    "render_all_figures",
]


def figure1_node_layout(k: int = 5, nid: int = 7) -> str:
    """Figure 1: one node's identifier and routing array."""
    if k < 2:
        raise ReproError(f"k must be >= 2, got {k}")
    cells = [f" r{i} " for i in range(1, k)]
    inner = "|".join(cells)
    border = "+" + "-" * len(inner) + "+"
    return "\n".join(
        [
            f"key (node id): {nid}",
            border,
            "|" + inner + "|",
            border,
            f"routing array: k-1 = {k - 1} separators defining {k} child slots",
        ]
    )


def figure2_centroid_tree(n: int = 40, k: int = 2) -> str:
    """Figure 2/9: the centroid tree, rendered from the real construction."""
    tree = build_centroid_tree(n, k)
    art = render_kary_network(tree, max_nodes=max(200, n + 1))
    head = (
        f"centroid k-ary search tree, n={n}, k={k} "
        f"(root has the centroid below it; k+1 = {k + 1} balanced blocks)"
    )
    return head + "\n" + art


def _fresh_chain(n: int, k: int) -> KAryTreeNetwork:
    """A path-shaped network: every node has exactly one child."""
    return build_path_tree(n, k)


def figure3_semi_splay_states(k: int = 4) -> str:
    """Figure 3: the X-parent / Y-child state and the k-semi-splay result."""
    tree = _fresh_chain(8, k)
    child = tree.node(tree.root_id)
    # walk one step down to get the paper's X (parent) / Y (child) pair
    first_child = next(iter(child.child_iter()))
    before = render_kary_network(tree, show_routing=True)
    outcome = k_semi_splay(first_child)
    if outcome.new_top.parent is None:
        tree.replace_root(outcome.new_top)
    tree.refresh_ranges()
    tree.validate()
    after = render_kary_network(tree, show_routing=True)
    return (
        f"k-semi-splay (k={k}): child Y={first_child.nid} promoted above its"
        " parent\n\nBEFORE:\n" + before + "\n\nAFTER:\n" + after
    )


def figure4_chain_state(k: int = 3) -> str:
    """Figure 4: the X–Y–Z chain that k-splay acts on."""
    tree = _fresh_chain(6, k)
    x = tree.root
    y = next(iter(x.child_iter()))
    z = next(iter(y.child_iter()))
    art = render_kary_network(tree, show_routing=True)
    return (
        f"state before k-splay (k={k}): grandparent X={x.nid}, parent"
        f" Y={y.nid}, node Z={z.nid}\n" + art
    )


def _find_case_instance(k: int, want_distant: bool, seed: int = 0) -> tuple[KAryTreeNetwork, int]:
    """Search random trees for a grandchild whose k-splay hits the wanted case.

    Case selection mirrors :func:`repro.core.rotations.k_splay`: case 1
    (distant) iff the grandparent/parent identifiers are separated by more
    than ``k-1`` merged routing elements.
    """
    from bisect import bisect_left

    rng = random.Random(seed)
    for attempt in range(500):
        n = rng.randint(10, 24)
        tree = build_random_tree(n, k, seed=rng.randint(0, 10**6))
        for node in list(tree.root.iter_subtree()):
            y = node.parent
            if y is None or y.parent is None:
                continue
            x = y.parent
            merged = sorted(x.routing + y.routing + node.routing)
            pos_x = bisect_left(merged, x.nid)
            pos_y = bisect_left(merged, y.nid)
            distant = abs(pos_x - pos_y) > k - 1
            if distant == want_distant:
                return tree, node.nid
    raise ReproError(
        f"no k-splay case {'1' if want_distant else '2'} instance found for k={k}"
    )


def _splay_figure(k: int, want_distant: bool, title: str) -> str:
    tree, nid = _find_case_instance(k, want_distant)
    before = render_kary_network(tree)
    node = tree.node(nid)
    outcome = k_splay(node)
    if outcome.new_top.parent is None:
        tree.replace_root(outcome.new_top)
    tree.refresh_ranges()
    tree.validate()
    after = render_kary_network(tree)
    return (
        f"{title} (k={k}): node Z={nid} promoted above parent and"
        " grandparent\n\nBEFORE:\n" + before + "\n\nAFTER:\n" + after
    )


def figure5_k_splay_states(k: int = 3) -> str:
    """Figure 5: k-splay case 1 (X, Y distant — the zig-zag analogue)."""
    return _splay_figure(k, True, "k-splay case 1")


def figure6_k_splay_close_states(k: int = 3) -> str:
    """Figure 6: k-splay case 2 (X, Y close — the zig-zig analogue)."""
    return _splay_figure(k, False, "k-splay case 2")


def _centroid_layout_text(net: CentroidSplayNet, title: str) -> str:
    lines = [title]
    lines.append(f"  fixed centroid c1 = {net.c1}, c2 = {net.c2}")
    for i, (block, subnet) in enumerate(zip(net._blocks, net.subnets)):
        attach = "c1" if block.attach == 1 else "c2"
        lines.append(
            f"  block {i} under {attach}: {subnet.n} nodes"
            f" [{block.lo}..{block.hi}], k-ary SplayNet"
        )
    return "\n".join(lines)


def figure7_centroid_splaynet(n: int = 30) -> str:
    """Figure 7: the 3-SplayNet structure (k = 2)."""
    net = build_network("centroid-splaynet", n=n, k=2)
    return _centroid_layout_text(
        net, f"3-SplayNet, n={n}: c1 above c2; 2k-1 = 3 SplayNet blocks"
    )


def figure8_kplus1_splaynet(n: int = 50, k: int = 3) -> str:
    """Figure 8: the general (k+1)-SplayNet structure."""
    net = build_network("centroid-splaynet", n=n, k=k)
    return _centroid_layout_text(
        net,
        f"(k+1)-SplayNet, n={n}, k={k}: c1 has k-1 small blocks, c2 has k"
        f" blocks of (n-2)/(k+1) nodes",
    )


def render_all_figures() -> dict[str, str]:
    """Every schematic figure, keyed ``figure1`` .. ``figure8``."""
    return {
        "figure1": figure1_node_layout(),
        "figure2": figure2_centroid_tree(),
        "figure3": figure3_semi_splay_states(),
        "figure4": figure4_chain_state(),
        "figure5": figure5_k_splay_states(),
        "figure6": figure6_k_splay_close_states(),
        "figure7": figure7_centroid_splaynet(),
        "figure8": figure8_kplus1_splaynet(),
    }
