"""Shard health supervision: heartbeats, deadlines, state machine.

Workers in a :class:`~repro.serving.farm.ServeFarm` emit periodic
heartbeats on a dedicated pipe (separate from the command pipe, so
liveness never interleaves with serve acknowledgements).  The farm's
supervisor thread feeds those beats into a :class:`HealthMonitor`, which
runs one small state machine per shard:

``healthy → suspect → down → recovering → healthy``

* **healthy** — beats arriving within ``suspect_after`` of the last one;
* **suspect** — the heartbeat deadline slipped but not past
  ``down_after``; dispatch continues (a busy GIL can starve a beat
  without the worker being dead);
* **down** — beats missed past ``down_after``, or the heartbeat pipe hit
  EOF (the worker process died — EOF is immediate, well before any
  deadline); the supervisor proactively respawns *before* a dispatch has
  to fail;
* **recovering** — a respawn (restore + journal replay) is in flight.

The monitor is deliberately passive: it owns no threads and no pipes.
``record_beat`` / ``mark`` / ``observe`` are called by the farm, which
makes the state machine trivially testable with a fake clock, and every
transition lands in :attr:`HealthMonitor.events` for post-mortems and
the chaos harness's time-to-detect measurements.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ExperimentError

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "DOWN",
    "RECOVERING",
    "HealthConfig",
    "HealthMonitor",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"
RECOVERING = "recovering"

#: All states a shard can be in, in escalation order.
HEALTH_STATES = (HEALTHY, SUSPECT, DOWN, RECOVERING)


@dataclass(frozen=True)
class HealthConfig:
    """Heartbeat cadence and the missed-beat escalation deadlines.

    The defaults are deliberately conservative (a loaded CI box pausing
    a worker for a second must not trigger a spurious respawn); tests
    and the chaos harness shrink them for fast detection.
    """

    #: Worker-side heartbeat period, seconds.
    interval: float = 0.5
    #: Silence after which a shard turns ``suspect``.
    suspect_after: float = 2.0
    #: Silence after which a shard is declared ``down`` and proactively
    #: respawned.  Pipe EOF (worker death) short-circuits this deadline.
    down_after: float = 5.0
    #: Master switch: ``False`` runs the farm without heartbeat threads
    #: or a supervisor (the pre-supervision behaviour).
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ExperimentError(
                f"heartbeat interval must be > 0, got {self.interval}"
            )
        if self.suspect_after <= self.interval:
            raise ExperimentError(
                "suspect_after must exceed the heartbeat interval"
                f" ({self.suspect_after} <= {self.interval})"
            )
        if self.down_after <= self.suspect_after:
            raise ExperimentError(
                "down_after must exceed suspect_after"
                f" ({self.down_after} <= {self.suspect_after})"
            )


class HealthMonitor:
    """Per-shard heartbeat bookkeeping and the health state machine.

    Thread safe: the supervisor thread records beats and observes
    deadlines while dispatch threads read states and the farm marks
    recovery transitions.
    """

    def __init__(
        self,
        shards: int,
        config: Optional[HealthConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {shards}")
        self.config = config or HealthConfig()
        self.clock = clock
        self.shards = shards
        self._lock = threading.Lock()
        now = self.clock()
        self._states = [HEALTHY] * shards
        self._last_beat = [now] * shards
        self._beats = [0] * shards
        #: Every transition: ``(monotonic_time, shard, old, new)``.
        self.events: list[tuple[float, int, str, str]] = []

    # -- inputs --------------------------------------------------------
    def record_beat(self, shard: int) -> str:
        """Fold one heartbeat in; returns the state *before* the beat.

        A beat while ``suspect`` heals the shard back to ``healthy``;
        beats during ``down``/``recovering`` are recorded (they advance
        the deadline for the replacement worker) but do not change
        state — only :meth:`mark` ends a recovery.
        """
        with self._lock:
            self._beats[shard] += 1
            self._last_beat[shard] = self.clock()
            state = self._states[shard]
            if state == SUSPECT:
                self._transition(shard, HEALTHY)
            return state

    def mark(self, shard: int, state: str) -> None:
        """Explicit transition (``recovering`` on respawn start, etc.)."""
        if state not in HEALTH_STATES:
            raise ExperimentError(f"unknown health state {state!r}")
        if not 0 <= shard < self.shards:
            raise ExperimentError(
                f"shard must be in 0..{self.shards - 1}, got {shard}"
            )
        with self._lock:
            self._last_beat[shard] = self.clock()
            if self._states[shard] != state:
                self._transition(shard, state)

    def observe(self) -> list[int]:
        """Apply the missed-beat deadlines; returns shards newly ``down``.

        Escalates ``healthy → suspect → down`` from heartbeat silence.
        Shards already ``down`` or ``recovering`` are left to the farm's
        respawn path.
        """
        now = self.clock()
        newly_down: list[int] = []
        with self._lock:
            for shard in range(self.shards):
                state = self._states[shard]
                if state in (DOWN, RECOVERING):
                    continue
                silence = now - self._last_beat[shard]
                if silence >= self.config.down_after:
                    self._transition(shard, DOWN)
                    newly_down.append(shard)
                elif silence >= self.config.suspect_after:
                    if state == HEALTHY:
                        self._transition(shard, SUSPECT)
        return newly_down

    # -- views ---------------------------------------------------------
    def state_of(self, shard: int) -> str:
        with self._lock:
            return self._states[shard]

    def states(self) -> list[str]:
        with self._lock:
            return list(self._states)

    def beats(self, shard: int) -> int:
        with self._lock:
            return self._beats[shard]

    def all_healthy(self) -> bool:
        with self._lock:
            return all(state == HEALTHY for state in self._states)

    def snapshot(self) -> dict[str, Any]:
        """One dict per shard: state, beat count, seconds of silence."""
        now = self.clock()
        with self._lock:
            return {
                "states": list(self._states),
                "beats": list(self._beats),
                "silence": [now - t for t in self._last_beat],
            }

    # -- internals -----------------------------------------------------
    def _transition(self, shard: int, new: str) -> None:
        # Caller holds self._lock.
        old = self._states[shard]
        self._states[shard] = new
        self.events.append((self.clock(), shard, old, new))
