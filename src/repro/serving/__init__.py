"""Sharded online serving: hash-routed worker farm over resident trees.

The :mod:`repro.net` session API serves one network in one process; this
package scales it out.  A :class:`ServeFarm` hash-partitions session keys
across worker processes (:class:`ShardRouter`), each worker owning its
shard's sessions — resident native trees where the compiled kernel is
available, the flat engine otherwise — with batched dispatch, aggregate
incremental metrics, and journal-replay recovery of killed workers.

Self-healing rides on top (:mod:`repro.serving.health`): workers
heartbeat on a dedicated pipe, a supervisor thread tracks per-shard
:class:`HealthConfig`-driven state (healthy / suspect / down /
recovering) and proactively respawns a dead shard before any dispatch
fails; ``checkpoint_every=N`` bounds replay by warm-standby snapshots.
"""

from repro.serving.farm import FARM_FAULT_POINT, FarmMetrics, ServeFarm
from repro.serving.health import (
    DOWN,
    HEALTHY,
    RECOVERING,
    SUSPECT,
    HealthConfig,
    HealthMonitor,
)
from repro.serving.router import ShardRouter, shard_for_key

__all__ = [
    "FARM_FAULT_POINT",
    "FarmMetrics",
    "ServeFarm",
    "ShardRouter",
    "shard_for_key",
    "HealthConfig",
    "HealthMonitor",
    "HEALTHY",
    "SUSPECT",
    "DOWN",
    "RECOVERING",
]
