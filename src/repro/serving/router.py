"""Deterministic routing of session keys to serve-farm shards.

The farm partitions its keyspace by stable hash — CRC-32 of the key's
UTF-8 text, *not* Python's per-process randomized ``hash()`` — so the
same key lands on the same shard in every process, every run, and every
respawned worker (the replay-based recovery of
:class:`~repro.serving.farm.ServeFarm` depends on exactly this).
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable

from repro.errors import ExperimentError

__all__ = ["ShardRouter", "shard_for_key"]


def shard_for_key(key: Any, shards: int) -> int:
    """The shard index in ``[0, shards)`` owning ``key`` (stable hash)."""
    if shards < 1:
        raise ExperimentError(f"shards must be >= 1, got {shards}")
    data = key if isinstance(key, bytes) else str(key).encode("utf-8")
    return zlib.crc32(data) % shards


class ShardRouter:
    """Hash-partitions session keys (and request windows) across shards."""

    __slots__ = ("shards",)

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, key: Any) -> int:
        return shard_for_key(key, self.shards)

    def split(
        self, requests: Iterable[tuple[Any, int, int]]
    ) -> dict[int, list[tuple[Any, list[int], list[int]]]]:
        """Group a ``(key, u, v)`` window into per-shard key batches.

        Returns ``{shard: [(key, sources, targets), ...]}``.  Within a
        window all requests of one key collapse into a single batch in
        arrival order — keys are independent sessions, so cross-key
        reordering inside a window cannot change any per-key outcome,
        while the batching maximizes each worker's kernel batch size.
        """
        by_key: dict[Any, tuple[list[int], list[int]]] = {}
        for key, u, v in requests:
            entry = by_key.get(key)
            if entry is None:
                entry = ([], [])
                by_key[key] = entry
            entry[0].append(int(u))
            entry[1].append(int(v))
        grouped: dict[int, list[tuple[Any, list[int], list[int]]]] = {}
        for key, (sources, targets) in by_key.items():
            grouped.setdefault(self.shard_of(key), []).append(
                (key, sources, targets)
            )
        return grouped
