"""The sharded serve farm: resident native trees across worker processes.

:class:`ServeFarm` scales the single-process serving stack *out*: session
keys are hash-partitioned (:mod:`repro.serving.router`) across worker
processes, each worker owning one shard's sessions — resident
:class:`~repro.core.native.NativeTree` handles behind the
:func:`~repro.net.session.open_session` API (degrading per worker to the
flat engine when the kernel is unavailable, e.g. ``REPRO_NATIVE=0``).
The parent dispatches batched request windows to all owning shards before
collecting any acknowledgement, so shards serve concurrently; aggregate
metrics (cost totals plus a mergeable latency histogram) accumulate
incrementally from the acks.

Fault tolerance follows the PR 6 pool-hardening playbook:

* every worker batch passes a ``farm.serve`` injection point
  (:func:`~repro.reliability.faults.fire_fault`), so the reliability
  suite can kill a worker deterministically mid-campaign;
* a dead worker (broken pipe on send or EOF on receive) is respawned and
  its state rebuilt by **journal replay**: the parent keeps every
  acknowledged batch per shard and replays them — the serve discipline is
  deterministic, so the rebuilt trees are cell-for-cell identical — then
  re-sends the in-flight batch.  Replay acks are dropped, so nothing is
  double counted.  Kill-style faults need a ledger-backed
  :class:`~repro.reliability.faults.FaultPlan` (exactly as with
  ``pool.task``) so the respawned worker does not re-fire the kill;
* the respawn budget (``max_respawns``) turns a crash loop into a loud
  :class:`~repro.errors.ReliabilityError` instead of a hang.

The journal makes recovery exact at the cost of O(total requests) parent
memory; campaigns that outgrow it should checkpoint per session
(``open_session(checkpoint_every=...)`` inside the worker) and truncate —
the benchmark and test campaigns here stay well inside it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ExperimentError, ReliabilityError
from repro.net.session import DEFAULT_CHUNK, LatencyStats
from repro.net.spec import NetworkSpec
from repro.network.protocols import BatchServeResult
from repro.serving.router import ShardRouter

__all__ = ["FarmMetrics", "ServeFarm"]

#: Injection point fired in a worker before serving each dispatched
#: window (see repro.reliability.faults for the catalogue).
FARM_FAULT_POINT = "farm.serve"


@dataclass
class FarmMetrics:
    """Aggregate incremental metrics of a whole farm (all shards)."""

    requests: int = 0
    total_routing: int = 0
    total_rotations: int = 0
    total_links_changed: int = 0
    windows: int = 0
    #: Summed worker-side serve CPU seconds per shard.  ``max`` over
    #: shards is the farm's critical path — the farm's aggregate capacity
    #: (``requests / max``) scales with shard count even when the host
    #: has fewer cores than shards, where wall clock (and worker wall
    #: time, inflated by timesharing) cannot show it.
    busy_seconds: dict[int, float] = field(default_factory=dict, repr=False)
    latency: LatencyStats = field(default_factory=LatencyStats, repr=False)

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.requests if self.requests else 0.0

    @property
    def latency_p50(self) -> float:
        return self.latency.p50

    @property
    def latency_p99(self) -> float:
        return self.latency.p99

    @property
    def critical_path_seconds(self) -> float:
        """The busiest shard's total serve time (0.0 before any batch)."""
        return max(self.busy_seconds.values(), default=0.0)

    def record_batch(
        self,
        shard: int,
        m: int,
        routing: int,
        rotations: int,
        links: int,
        elapsed: float,
        cpu: float,
    ) -> None:
        self.requests += m
        self.total_routing += routing
        self.total_rotations += rotations
        self.total_links_changed += links
        self.windows += 1
        self.busy_seconds[shard] = self.busy_seconds.get(shard, 0.0) + cpu
        if m:
            self.latency.record(elapsed / m, m)

    def to_dict(self) -> dict[str, Any]:
        # Cost fields are deterministic; latency is reported separately
        # (same split as SessionMetrics.to_dict).
        return {
            "requests": self.requests,
            "total_routing": self.total_routing,
            "total_rotations": self.total_rotations,
            "total_links_changed": self.total_links_changed,
        }


def _worker_main(conn, spec_data: dict, shard_index: int) -> None:
    """One shard's serve loop: sessions owned here, commands via pipe.

    Messages in: ``("serve", batches, replay)`` with ``batches`` a list of
    ``(key, sources, targets)``; ``("status",)``; ``("metrics",)``;
    ``("close",)``.  Every reply is a tuple whose first element is
    ``"ok"`` or ``"error"``; serve acks carry per-batch detail totals
    (one ``(m, routing, rotations, links)`` 4-tuple per dispatched batch,
    in order — the ingress gateway answers each coalesced client request
    from exactly its own entry), the wall and CPU time spent serving
    (wall feeds the latency histogram, CPU the contention-immune
    per-shard busy accounting), and the echoed ``replay`` flag.
    """
    # Imports inside the worker: with the spawn start method this module
    # is re-imported fresh, and the kernel loads (or degrades to flat)
    # per process.
    from repro.net.session import open_session
    from repro.reliability.faults import fire_fault, kill_process

    sessions: dict[Any, Any] = {}
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "serve":
                _, batches, replay = message
                try:
                    fault = fire_fault(
                        FARM_FAULT_POINT, context=f"shard={shard_index}"
                    )
                    if fault is not None and fault.mode == "kill":
                        kill_process(fault)
                    started = time.perf_counter()
                    cpu_started = time.process_time()
                    details = []
                    for key, sources, targets in batches:
                        session = sessions.get(key)
                        if session is None:
                            session = open_session(spec_data)
                            sessions[key] = session
                        batch = session.serve_stream(sources, targets)
                        details.append(
                            (
                                batch.m,
                                batch.total_routing,
                                batch.total_rotations,
                                batch.total_links_changed,
                            )
                        )
                    cpu = time.process_time() - cpu_started
                    elapsed = time.perf_counter() - started
                    conn.send(("ok", details, elapsed, cpu, replay))
                except Exception as exc:  # noqa: BLE001 - relayed to parent
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
            elif command == "status":
                from repro.core.engine import native_available

                conn.send(
                    (
                        "ok",
                        {
                            "shard": shard_index,
                            "pid": os.getpid(),
                            "native_available": native_available(),
                            "sessions": {
                                key: getattr(
                                    session.network, "engine", "object"
                                )
                                for key, session in sessions.items()
                            },
                        },
                    )
                )
            elif command == "metrics":
                conn.send(
                    (
                        "ok",
                        {
                            key: session.metrics.to_dict()
                            for key, session in sessions.items()
                        },
                    )
                )
            elif command == "close":
                conn.send(("ok",))
                return
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown farm command {command!r}"))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent gone
        return


def _farm_context():
    """Start method for farm workers: fork where supported, else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ServeFarm:
    """A shard-routed farm of serving workers (one process per shard).

    >>> farm = ServeFarm("kary-splaynet", n=64, k=4, shards=2)
    >>> farm.serve("user-7", 3, 60)          # doctest: +SKIP
    >>> farm.serve_stream(stream)            # (key, u, v) iterable
    >>> farm.metrics.latency_p99             # aggregate, incremental
    >>> farm.close()

    Constructor arguments besides the farm knobs are exactly
    :func:`~repro.net.session.open_session`'s spec inputs — a
    :class:`~repro.net.spec.NetworkSpec`, a mapping, or an algorithm name
    plus keyword arguments.  One session is opened lazily per key in the
    owning worker.  Use as a context manager to guarantee teardown.
    """

    def __init__(
        self,
        spec: Union[NetworkSpec, Mapping[str, Any], str, None] = None,
        *,
        shards: int = 2,
        window: int = DEFAULT_CHUNK,
        max_respawns: int = 2,
        **kwargs: Any,
    ) -> None:
        if shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {shards}")
        if window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        if max_respawns < 0:
            raise ExperimentError(
                f"max_respawns must be >= 0, got {max_respawns}"
            )
        from repro.net.registry import coerce_network_spec

        self.spec = coerce_network_spec(spec, **kwargs)
        if self.spec.engine is None:
            # Workers own resident native trees unless the spec pins an
            # engine; resolution happens per worker process, so a farm
            # degrades to the flat engine wherever the kernel is
            # unavailable (REPRO_NATIVE=0, no C toolchain).
            self.spec = self.spec.replace(engine="native")
        self._spec_data = self.spec.to_dict()
        self.shards = shards
        self.window = window
        self.max_respawns = max_respawns
        self.respawns = 0
        self.router = ShardRouter(shards)
        self.metrics = FarmMetrics()
        self._journal: list[list[list[tuple[Any, list[int], list[int]]]]] = [
            [] for _ in range(shards)
        ]
        self._ctx = _farm_context()
        self._procs: list[Optional[Any]] = [None] * shards
        self._conns: list[Optional[Any]] = [None] * shards
        self._closed = False
        # Shared-state guard for per-shard concurrent dispatch (see
        # serve_grouped): aggregate metrics and the respawn budget are
        # the only cross-shard state touched on the dispatch path.
        self._metrics_lock = threading.Lock()
        try:
            for shard in range(shards):
                self._start_worker(shard)
        except BaseException:
            # A later worker failing to spawn must not leak the earlier
            # ones: close the partial farm before re-raising.
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ServeFarm":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def _start_worker(self, shard: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._spec_data, shard),
            daemon=True,
            name=f"repro-serve-shard-{shard}",
        )
        proc.start()
        child_conn.close()
        self._procs[shard] = proc
        self._conns[shard] = parent_conn

    def close(self) -> None:
        """Shut every worker down and join it (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in range(self.shards):
            conn = self._conns[shard]
            if conn is None:
                continue
            try:
                conn.send(("close",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            self._conns[shard] = None
        for shard in range(self.shards):
            proc = self._procs[shard]
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
                self._procs[shard] = None

    def _check_open(self) -> None:
        if self._closed:
            raise ExperimentError("serve farm is closed")

    # -- fault recovery ------------------------------------------------
    def _respawn(self, shard: int) -> None:
        """Replace a dead worker and rebuild its state by journal replay."""
        with self._metrics_lock:
            self.respawns += 1
            spent = self.respawns
        if spent > self.max_respawns:
            raise ReliabilityError(
                f"serve farm gave up after {self.max_respawns} respawn(s):"
                f" shard {shard} keeps dying"
            )
        old_conn = self._conns[shard]
        if old_conn is not None:
            old_conn.close()
        old_proc = self._procs[shard]
        if old_proc is not None:
            old_proc.join(timeout=5.0)
            if old_proc.is_alive():  # pragma: no cover - defensive
                old_proc.terminate()
                old_proc.join(timeout=5.0)
        self._start_worker(shard)
        # Deterministic rebuild: replay every acknowledged batch in order.
        # Replay acks carry replay=True and are not re-aggregated; a
        # ledger-backed fault plan guarantees a fired kill stays fired.
        conn = self._conns[shard]
        for batches in self._journal[shard]:
            try:
                conn.send(("serve", batches, True))
                reply = conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                self._respawn(shard)  # budget-bounded recursion
                return
            if reply[0] == "error":
                raise ReliabilityError(
                    f"serve farm shard {shard} failed during journal"
                    f" replay: {reply[1]}"
                )

    # -- dispatch ------------------------------------------------------
    def _send_serve(self, shard: int, batches) -> None:
        try:
            self._conns[shard].send(("serve", batches, False))
        except (BrokenPipeError, OSError):
            self._respawn(shard)
            self._conns[shard].send(("serve", batches, False))

    def _await_ack(self, shard: int, batches):
        """Collect one non-replay serve ack, surviving a worker death."""
        while True:
            try:
                reply = self._conns[shard].recv()
            except (EOFError, OSError):
                self._respawn(shard)
                self._send_serve(shard, batches)
                continue
            if reply[0] == "error":
                raise ReliabilityError(
                    f"serve farm shard {shard} failed: {reply[1]}"
                )
            _, details, elapsed, cpu, replay = reply
            if replay:  # stale ack from a pre-respawn replay: drop
                continue
            return details, elapsed, cpu

    def _collect_shard(self, shard: int, batches):
        """Await one shard's ack and fold it into the aggregate state.

        Returns the per-batch detail list.  Journal appends are per-shard
        (disjoint between concurrent shard dispatches); the aggregate
        metrics update takes the shared lock.
        """
        details, elapsed, cpu = self._await_ack(shard, batches)
        m = sum(d[0] for d in details)
        routing = sum(d[1] for d in details)
        rotations = sum(d[2] for d in details)
        links = sum(d[3] for d in details)
        with self._metrics_lock:
            self.metrics.record_batch(
                shard, m, routing, rotations, links, elapsed, cpu
            )
        self._journal[shard].append(batches)
        return details

    def _dispatch(
        self, grouped: Mapping[int, list[tuple[Any, list[int], list[int]]]]
    ) -> tuple[int, int, int, int]:
        """Send one window to all owning shards, then collect the acks.

        All sends complete before the first receive, so shards serve the
        window concurrently; acknowledged batches enter the journal.
        """
        for shard, batches in grouped.items():
            self._send_serve(shard, batches)
        totals = [0, 0, 0, 0]
        for shard, batches in grouped.items():
            for m, routing, rotations, links in self._collect_shard(
                shard, batches
            ):
                totals[0] += m
                totals[1] += routing
                totals[2] += rotations
                totals[3] += links
        return tuple(totals)  # type: ignore[return-value]

    def serve_grouped(
        self,
        shard: int,
        batches: Sequence[tuple[Any, list[int], list[int]]],
    ) -> list[BatchServeResult]:
        """Dispatch pre-grouped key batches to one shard, detail per batch.

        ``batches`` is a list of ``(key, sources, targets)`` entries, every
        key owned by ``shard`` (validated) — the ingress gateway's dispatch
        primitive: one worker round trip serves the whole coalesced list,
        and the returned :class:`BatchServeResult` per entry carries that
        entry's exact totals, so each client request gets its own answer.

        Thread safety: concurrent calls for *distinct* shards are safe
        (each shard's pipe and journal are touched by one caller at a
        time; the aggregate metrics and respawn budget are lock-guarded).
        Concurrent calls for the same shard are not.
        """
        self._check_open()
        batches = [
            (key, [int(u) for u in sources], [int(v) for v in targets])
            for key, sources, targets in batches
        ]
        for key, sources, targets in batches:
            if len(sources) != len(targets):
                raise ExperimentError(
                    "serve_grouped sources and targets must be equal length"
                )
            if self.router.shard_of(key) != shard:
                raise ExperimentError(
                    f"key {key!r} routes to shard"
                    f" {self.router.shard_of(key)}, not {shard}"
                )
        if not batches:
            return []
        self._send_serve(shard, batches)
        details = self._collect_shard(shard, batches)
        return [
            BatchServeResult(m, routing, rotations, links, None, None)
            for m, routing, rotations, links in details
        ]

    # -- serving -------------------------------------------------------
    def serve(self, key: Any, u: int, v: int) -> None:
        """Serve one request for ``key`` on its owning shard (round trip)."""
        self.serve_batch(key, [u], [v])

    def serve_batch(self, key: Any, sources, targets) -> BatchServeResult:
        """Serve one key's request batch on its owning shard."""
        self._check_open()
        sources = [int(u) for u in sources]
        targets = [int(v) for v in targets]
        if len(sources) != len(targets):
            raise ExperimentError(
                "serve_batch sources and targets must be equal length"
            )
        shard = self.router.shard_of(key)
        m, routing, rotations, links = self._dispatch(
            {shard: [(key, sources, targets)]}
        )
        return BatchServeResult(m, routing, rotations, links, None, None)

    def serve_stream(
        self,
        requests: Iterable[tuple[Any, int, int]],
        *,
        window: Optional[int] = None,
    ) -> BatchServeResult:
        """Serve a keyed request stream, ``window`` requests per round.

        ``requests`` is any iterable of ``(key, u, v)``.  Each window is
        hash-split across the owning shards and dispatched to all of them
        before any acknowledgement is awaited — the farm's concurrent hot
        path.  Returns the accumulated totals for this stream;
        :attr:`metrics` advances by the same amounts.
        """
        self._check_open()
        if window is None:
            window = self.window
        elif window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        iterator = iter(requests)
        totals = [0, 0, 0, 0]
        while True:
            block = list(islice(iterator, window))
            if not block:
                break
            m, routing, rotations, links = self._dispatch(
                self.router.split(block)
            )
            totals[0] += m
            totals[1] += routing
            totals[2] += rotations
            totals[3] += links
        return BatchServeResult(
            totals[0], totals[1], totals[2], totals[3], None, None
        )

    # -- introspection -------------------------------------------------
    def _query(self, shard: int, command: str):
        self._check_open()
        conn = self._conns[shard]
        conn.send((command,))
        reply = conn.recv()
        if reply[0] == "error":
            raise ReliabilityError(
                f"serve farm shard {shard} failed {command}: {reply[1]}"
            )
        return reply[1]

    def status(self) -> list[dict[str, Any]]:
        """Per-shard liveness report: pid, kernel availability, engines."""
        return [self._query(shard, "status") for shard in range(self.shards)]

    def session_metrics(self) -> dict[Any, dict[str, Any]]:
        """Authoritative per-key metrics, collected from the workers.

        Deterministic cost dicts (:meth:`SessionMetrics.to_dict`) — the
        cell-for-cell comparison surface of the reliability suite.
        """
        merged: dict[Any, dict[str, Any]] = {}
        for shard in range(self.shards):
            merged.update(self._query(shard, "metrics"))
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServeFarm(shards={self.shards},"
            f" requests={self.metrics.requests},"
            f" respawns={self.respawns}, closed={self._closed})"
        )
