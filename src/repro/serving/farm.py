"""The sharded serve farm: resident native trees across worker processes.

:class:`ServeFarm` scales the single-process serving stack *out*: session
keys are hash-partitioned (:mod:`repro.serving.router`) across worker
processes, each worker owning one shard's sessions — resident
:class:`~repro.core.native.NativeTree` handles behind the
:func:`~repro.net.session.open_session` API (degrading per worker to the
flat engine when the kernel is unavailable, e.g. ``REPRO_NATIVE=0``).
The parent dispatches batched request windows to all owning shards before
collecting any acknowledgement, so shards serve concurrently; aggregate
metrics (cost totals plus a mergeable latency histogram) accumulate
incrementally from the acks.

Fault tolerance follows the PR 6 pool-hardening playbook:

* every worker batch passes a ``farm.serve`` injection point
  (:func:`~repro.reliability.faults.fire_fault`), so the reliability
  suite can kill a worker deterministically mid-campaign;
* a dead worker (broken pipe on send or EOF on receive) is respawned and
  its state rebuilt by **journal replay**: the parent keeps every
  acknowledged batch per shard per key and replays them — the serve
  discipline is deterministic, so the rebuilt trees are cell-for-cell
  identical — then re-sends the in-flight batch.  Replay acks are
  dropped, so nothing is double counted.  Kill-style faults need a
  ledger-backed :class:`~repro.reliability.faults.FaultPlan` (exactly as
  with ``pool.task``) so the respawned worker does not re-fire the kill;
* the respawn budget (``max_respawns``) turns a crash loop into a loud
  :class:`~repro.errors.ReliabilityError` instead of a hang.

Two layers on top of reactive replay (the self-healing subsystem):

* **health supervision** (:mod:`repro.serving.health`): every worker runs
  a heartbeat thread on a dedicated pipe; a supervisor thread in the
  parent feeds a :class:`~repro.serving.health.HealthMonitor` and
  *proactively* respawns a shard on heartbeat-pipe EOF (instant — the
  worker died) or on a missed-beat deadline, before any dispatch has to
  fail.  Per-shard locks make the proactive and reactive paths mutually
  exclusive, and an epoch counter makes respawn idempotent when both
  notice the same death.
* **warm standby** (``checkpoint_every=N``): workers cut engine-
  transferable :class:`~repro.net.session.SessionSnapshot` checkpoints
  at batch boundaries every ``N`` requests per key and ship them in the
  serve ack; the parent prunes the journal prefix each snapshot covers,
  so a replacement worker restores from the latest snapshots and replays
  **at most ~N requests per key** instead of the whole history.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ExperimentError, ReliabilityError
from repro.net.session import DEFAULT_CHUNK, LatencyStats
from repro.net.spec import NetworkSpec
from repro.network.protocols import BatchServeResult
from repro.serving.health import (
    DOWN,
    HEALTHY,
    RECOVERING,
    HealthConfig,
    HealthMonitor,
)
from repro.serving.router import ShardRouter

__all__ = ["FarmMetrics", "ServeFarm"]

#: Injection point fired in a worker before serving each dispatched
#: window (see repro.reliability.faults for the catalogue).
FARM_FAULT_POINT = "farm.serve"


@dataclass
class FarmMetrics:
    """Aggregate incremental metrics of a whole farm (all shards)."""

    requests: int = 0
    total_routing: int = 0
    total_rotations: int = 0
    total_links_changed: int = 0
    windows: int = 0
    #: Summed worker-side serve CPU seconds per shard.  ``max`` over
    #: shards is the farm's critical path — the farm's aggregate capacity
    #: (``requests / max``) scales with shard count even when the host
    #: has fewer cores than shards, where wall clock (and worker wall
    #: time, inflated by timesharing) cannot show it.
    busy_seconds: dict[int, float] = field(default_factory=dict, repr=False)
    latency: LatencyStats = field(default_factory=LatencyStats, repr=False)

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.requests if self.requests else 0.0

    @property
    def latency_p50(self) -> float:
        return self.latency.p50

    @property
    def latency_p99(self) -> float:
        return self.latency.p99

    @property
    def critical_path_seconds(self) -> float:
        """The busiest shard's total serve time (0.0 before any batch)."""
        return max(self.busy_seconds.values(), default=0.0)

    def record_batch(
        self,
        shard: int,
        m: int,
        routing: int,
        rotations: int,
        links: int,
        elapsed: float,
        cpu: float,
    ) -> None:
        self.requests += m
        self.total_routing += routing
        self.total_rotations += rotations
        self.total_links_changed += links
        self.windows += 1
        self.busy_seconds[shard] = self.busy_seconds.get(shard, 0.0) + cpu
        if m:
            self.latency.record(elapsed / m, m)

    def to_dict(self) -> dict[str, Any]:
        # Cost fields are deterministic; latency is reported separately
        # (same split as SessionMetrics.to_dict).
        return {
            "requests": self.requests,
            "total_routing": self.total_routing,
            "total_rotations": self.total_rotations,
            "total_links_changed": self.total_links_changed,
        }


def _heartbeat_loop(hb_conn, interval: float, stop) -> None:
    """Worker-side liveness thread: one beat per ``interval`` seconds."""
    seq = 0
    while True:
        try:
            hb_conn.send(("beat", seq))
        except (BrokenPipeError, OSError):  # parent gone
            return
        seq += 1
        if stop.wait(interval):
            return


def _worker_main(
    conn,
    hb_conn,
    spec_data: dict,
    shard_index: int,
    hb_interval: float,
    checkpoint_every: Optional[int],
) -> None:
    """One shard's serve loop: sessions owned here, commands via pipe.

    Messages in: ``("serve", batches, replay)`` with ``batches`` a list of
    ``(key, sources, targets)``; ``("restore", [(key, snapshot,
    covered)])``; ``("status",)``; ``("metrics",)``; ``("close",)``.
    Every reply is a tuple whose first element is ``"ok"`` or ``"error"``;
    serve acks carry per-batch detail totals (one ``(m, routing,
    rotations, links)`` 4-tuple per dispatched batch, in order — the
    ingress gateway answers each coalesced client request from exactly
    its own entry), the wall and CPU time spent serving (wall feeds the
    latency histogram, CPU the contention-immune per-shard busy
    accounting), the echoed ``replay`` flag, and any warm-standby
    snapshots cut this window (``[(key, SessionSnapshot, covered)]``
    with ``covered`` the key's total served requests at the cut — always
    a batch boundary, so the parent can prune its journal exactly).

    Liveness is out of band: when ``hb_interval > 0`` a daemon thread
    beats on ``hb_conn`` so a stuck or dead worker is visible to the
    supervisor without touching the command pipe.
    """
    # Imports inside the worker: with the spawn start method this module
    # is re-imported fresh, and the kernel loads (or degrades to flat)
    # per process.
    from repro.net.session import open_session
    from repro.reliability.faults import fire_fault, kill_process

    stop_beat = threading.Event()
    if hb_conn is not None and hb_interval > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(hb_conn, hb_interval, stop_beat),
            daemon=True,
            name=f"repro-heartbeat-{shard_index}",
        ).start()

    sessions: dict[Any, Any] = {}
    served_total: dict[Any, int] = {}
    since_snapshot: dict[Any, int] = {}
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "serve":
                _, batches, replay = message
                try:
                    fault = fire_fault(
                        FARM_FAULT_POINT, context=f"shard={shard_index}"
                    )
                    if fault is not None and fault.mode == "kill":
                        kill_process(fault)
                    started = time.perf_counter()
                    cpu_started = time.process_time()
                    details = []
                    snapshots = []
                    for key, sources, targets in batches:
                        session = sessions.get(key)
                        if session is None:
                            session = open_session(spec_data)
                            sessions[key] = session
                        batch = session.serve_stream(sources, targets)
                        details.append(
                            (
                                batch.m,
                                batch.total_routing,
                                batch.total_rotations,
                                batch.total_links_changed,
                            )
                        )
                        if checkpoint_every:
                            total = served_total.get(key, 0) + batch.m
                            served_total[key] = total
                            since = since_snapshot.get(key, 0) + batch.m
                            if since >= checkpoint_every:
                                try:
                                    snapshots.append(
                                        (key, session.snapshot(), total)
                                    )
                                    since = 0
                                except ExperimentError:
                                    # Engine without snapshot support:
                                    # degrade to replay-only recovery.
                                    pass
                            since_snapshot[key] = since
                    cpu = time.process_time() - cpu_started
                    elapsed = time.perf_counter() - started
                    conn.send(
                        ("ok", details, elapsed, cpu, replay, snapshots)
                    )
                except Exception as exc:  # noqa: BLE001 - relayed to parent
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
            elif command == "restore":
                _, restores = message
                try:
                    for key, snapshot, covered in restores:
                        session = open_session(spec_data)
                        session.restore(snapshot)
                        sessions[key] = session
                        served_total[key] = covered
                        since_snapshot[key] = 0
                    conn.send(("ok", len(restores)))
                except Exception as exc:  # noqa: BLE001 - relayed
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
            elif command == "status":
                from repro.core.engine import native_available

                conn.send(
                    (
                        "ok",
                        {
                            "shard": shard_index,
                            "pid": os.getpid(),
                            "native_available": native_available(),
                            "sessions": {
                                key: getattr(
                                    session.network, "engine", "object"
                                )
                                for key, session in sessions.items()
                            },
                        },
                    )
                )
            elif command == "metrics":
                conn.send(
                    (
                        "ok",
                        {
                            key: session.metrics.to_dict()
                            for key, session in sessions.items()
                        },
                    )
                )
            elif command == "close":
                stop_beat.set()
                conn.send(("ok",))
                return
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown farm command {command!r}"))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent gone
        return


def _farm_context():
    """Start method for farm workers: fork where supported, else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ServeFarm:
    """A shard-routed farm of serving workers (one process per shard).

    >>> farm = ServeFarm("kary-splaynet", n=64, k=4, shards=2)
    >>> farm.serve("user-7", 3, 60)          # doctest: +SKIP
    >>> farm.serve_stream(stream)            # (key, u, v) iterable
    >>> farm.metrics.latency_p99             # aggregate, incremental
    >>> farm.health.states()                 # per-shard health
    >>> farm.close()

    Constructor arguments besides the farm knobs are exactly
    :func:`~repro.net.session.open_session`'s spec inputs — a
    :class:`~repro.net.spec.NetworkSpec`, a mapping, or an algorithm name
    plus keyword arguments.  One session is opened lazily per key in the
    owning worker.  Use as a context manager to guarantee teardown.

    ``health`` configures heartbeat supervision (default on with
    conservative deadlines; ``HealthConfig(enabled=False)`` restores the
    unsupervised farm).  ``checkpoint_every=N`` turns on warm-standby
    recovery: replay after a respawn is bounded by the checkpoint
    cadence instead of the full journal.
    """

    def __init__(
        self,
        spec: Union[NetworkSpec, Mapping[str, Any], str, None] = None,
        *,
        shards: int = 2,
        window: int = DEFAULT_CHUNK,
        max_respawns: int = 2,
        health: Optional[HealthConfig] = None,
        checkpoint_every: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        if shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {shards}")
        if window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        if max_respawns < 0:
            raise ExperimentError(
                f"max_respawns must be >= 0, got {max_respawns}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ExperimentError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        from repro.net.registry import coerce_network_spec

        self.spec = coerce_network_spec(spec, **kwargs)
        if self.spec.engine is None:
            # Workers own resident native trees unless the spec pins an
            # engine; resolution happens per worker process, so a farm
            # degrades to the flat engine wherever the kernel is
            # unavailable (REPRO_NATIVE=0, no C toolchain).
            self.spec = self.spec.replace(engine="native")
        self._spec_data = self.spec.to_dict()
        self.shards = shards
        self.window = window
        self.max_respawns = max_respawns
        self.checkpoint_every = checkpoint_every
        self.respawns = 0
        self.replayed_requests = 0
        self.recoveries = {"proactive": 0, "reactive": 0}
        self.shard_recoveries = [0] * shards
        self.router = ShardRouter(shards)
        self.metrics = FarmMetrics()
        self.health_config = health or HealthConfig()
        self.health: Optional[HealthMonitor] = (
            HealthMonitor(shards, self.health_config)
            if self.health_config.enabled
            else None
        )
        #: Per shard: ``{key: [(sources, targets), ...]}`` — every
        #: acknowledged batch not yet covered by a snapshot, in serve
        #: order (order across keys is immaterial: sessions are
        #: independent per key).
        self._journal: list[dict[Any, list[tuple[list[int], list[int]]]]] = [
            {} for _ in range(shards)
        ]
        #: Per shard: requests covered by the stored snapshot per key.
        self._journal_base: list[dict[Any, int]] = [{} for _ in range(shards)]
        self._snapshots: list[dict[Any, Any]] = [{} for _ in range(shards)]
        self._ctx = _farm_context()
        self._procs: list[Optional[Any]] = [None] * shards
        self._conns: list[Optional[Any]] = [None] * shards
        self._hb_conns: list[Optional[Any]] = [None] * shards
        self._hb_graveyard: list[Any] = []
        self._closed = False
        # Per-shard reentrant locks serialize everything that touches a
        # shard's pipe + journal (dispatch, introspection, respawn), so
        # the supervisor's proactive respawn and the dispatch path's
        # reactive respawn are mutually exclusive.  Epochs make respawn
        # idempotent when both notice the same death.
        self._locks = [threading.RLock() for _ in range(shards)]
        self._epochs = [0] * shards
        # Shared-state guard for per-shard concurrent dispatch (see
        # serve_grouped): aggregate metrics and the respawn budget are
        # the only cross-shard state touched on the dispatch path.
        self._metrics_lock = threading.Lock()
        self._supervisor: Optional[threading.Thread] = None
        self._stop_supervisor = threading.Event()
        try:
            for shard in range(shards):
                self._start_worker(shard)
        except BaseException:
            # A later worker failing to spawn must not leak the earlier
            # ones: close the partial farm before re-raising.
            self.close()
            raise
        if self.health is not None:
            self._supervisor = threading.Thread(
                target=self._supervise,
                daemon=True,
                name="repro-farm-supervisor",
            )
            self._supervisor.start()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ServeFarm":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def _start_worker(self, shard: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        hb_parent = hb_child = None
        hb_interval = 0.0
        if self.health is not None:
            # Dedicated one-way liveness pipe: worker writes, parent
            # reads.  EOF on it is the fastest possible death signal.
            hb_parent, hb_child = self._ctx.Pipe(duplex=False)
            hb_interval = self.health_config.interval
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                hb_child,
                self._spec_data,
                shard,
                hb_interval,
                self.checkpoint_every,
            ),
            daemon=True,
            name=f"repro-serve-shard-{shard}",
        )
        proc.start()
        child_conn.close()
        if hb_child is not None:
            hb_child.close()
        self._procs[shard] = proc
        self._conns[shard] = parent_conn
        self._hb_conns[shard] = hb_parent

    def close(self) -> None:
        """Shut every worker down and join it (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_supervisor.set()
        supervisor = self._supervisor
        if (
            supervisor is not None
            and supervisor is not threading.current_thread()
        ):
            supervisor.join(timeout=5.0)
        self._supervisor = None
        for shard in range(self.shards):
            conn = self._conns[shard]
            if conn is None:
                continue
            try:
                conn.send(("close",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            self._conns[shard] = None
        for shard in range(self.shards):
            hb = self._hb_conns[shard]
            if hb is not None:
                try:
                    hb.close()
                except OSError:  # pragma: no cover - already gone
                    pass
                self._hb_conns[shard] = None
        for hb in self._hb_graveyard:
            try:
                hb.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._hb_graveyard.clear()
        for shard in range(self.shards):
            proc = self._procs[shard]
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
                self._procs[shard] = None

    def _check_open(self) -> None:
        if self._closed:
            raise ExperimentError("serve farm is closed")

    # -- supervision ---------------------------------------------------
    def _supervise(self) -> None:
        """Supervisor thread: drain heartbeats, escalate missed deadlines.

        Detection is two-speed: heartbeat-pipe EOF (the worker process
        died) triggers an immediate proactive respawn, while silence on a
        live pipe escalates through ``suspect`` to ``down`` on the
        configured deadlines.  Both paths converge on
        :meth:`_proactive_respawn`, which is epoch-guarded against the
        dispatch path's reactive recovery.
        """
        from multiprocessing.connection import wait as _wait

        config = self.health_config
        timeout = min(config.interval, config.suspect_after / 2)
        while not self._stop_supervisor.is_set():
            current: dict[int, tuple[Any, int]] = {}
            targets: list[Any] = []
            for shard in range(self.shards):
                conn = self._hb_conns[shard]
                if conn is not None:
                    current[id(conn)] = (conn, shard)
                    targets.append(conn)
            graveyard = list(self._hb_graveyard)
            try:
                ready = _wait(targets + graveyard, timeout=timeout)
            except OSError:  # pragma: no cover - pipe replaced mid-wait
                continue
            for conn in ready:
                if self._stop_supervisor.is_set():
                    return
                entry = current.get(id(conn))
                if entry is None or conn is not self._hb_conns[entry[1]]:
                    # A pre-respawn pipe: drain it until EOF, then drop.
                    try:
                        conn.recv()
                    except (EOFError, OSError):
                        if conn in self._hb_graveyard:
                            self._hb_graveyard.remove(conn)
                        try:
                            conn.close()
                        except OSError:  # pragma: no cover
                            pass
                    continue
                shard = entry[1]
                try:
                    conn.recv()
                except (EOFError, OSError):
                    # The worker died: EOF beats any deadline.  Declare
                    # down and respawn before a dispatch can fail.
                    self.health.mark(shard, DOWN)
                    self._proactive_respawn(shard)
                else:
                    self.health.record_beat(shard)
            for shard in self.health.observe():
                self._proactive_respawn(shard)

    def _proactive_respawn(self, shard: int) -> None:
        """Supervisor-initiated recovery, idempotent against races."""
        epoch = self._epochs[shard]
        with self._locks[shard]:
            if self._closed or self._epochs[shard] != epoch:
                return  # the reactive path (or close) got there first
            try:
                self._respawn(shard, proactive=True)
            except ReliabilityError:
                # Budget exhausted: the shard stays down and the next
                # dispatch raises the loud give-up error.
                pass

    def shard_pids(self) -> list[Optional[int]]:
        """Current worker pid per shard (changes across respawns)."""
        return [
            proc.pid if proc is not None else None for proc in self._procs
        ]

    def health_states(self) -> list[str]:
        """Per-shard health (all ``healthy`` when supervision is off)."""
        if self.health is None:
            return [HEALTHY] * self.shards
        return self.health.states()

    # -- fault recovery ------------------------------------------------
    def _respawn(self, shard: int, *, proactive: bool = False) -> None:
        """Replace a dead worker; rebuild its state from snapshots + journal.

        Warm standby first: the replacement restores every key's latest
        shipped snapshot, then replays only the journal suffix past each
        snapshot — bounded by ``checkpoint_every`` requests per key.
        Without checkpoints this degrades to full journal replay.
        """
        with self._locks[shard]:
            with self._metrics_lock:
                self.respawns += 1
                spent = self.respawns
            if spent > self.max_respawns:
                if self.health is not None:
                    self.health.mark(shard, DOWN)
                raise ReliabilityError(
                    f"serve farm gave up after {self.max_respawns}"
                    f" respawn(s): shard {shard} keeps dying"
                )
            if self.health is not None:
                self.health.mark(shard, RECOVERING)
            old_conn = self._conns[shard]
            if old_conn is not None:
                old_conn.close()
            old_hb = self._hb_conns[shard]
            if old_hb is not None:
                # The supervisor may be mid-wait on this pipe: hand it
                # to the graveyard instead of closing under its feet.
                self._hb_conns[shard] = None
                self._hb_graveyard.append(old_hb)
            old_proc = self._procs[shard]
            if old_proc is not None:
                if old_proc.is_alive():
                    # Proactive deadline-based respawn: the old worker
                    # may be wedged rather than dead.
                    old_proc.terminate()
                old_proc.join(timeout=5.0)
                if old_proc.is_alive():  # pragma: no cover - defensive
                    old_proc.kill()
                    old_proc.join(timeout=5.0)
            self._start_worker(shard)
            self._epochs[shard] += 1
            # Deterministic rebuild: restore the latest snapshots, then
            # replay the journal suffix per key in order.  Replay acks
            # carry replay=True and are not re-aggregated; a ledger-
            # backed fault plan guarantees a fired kill stays fired.
            conn = self._conns[shard]
            try:
                restores = [
                    (key, snapshot, self._journal_base[shard][key])
                    for key, snapshot in self._snapshots[shard].items()
                ]
                if restores:
                    conn.send(("restore", restores))
                    reply = conn.recv()
                    if reply[0] == "error":
                        if self.health is not None:
                            self.health.mark(shard, DOWN)
                        raise ReliabilityError(
                            f"serve farm shard {shard} failed snapshot"
                            f" restore: {reply[1]}"
                        )
                for key, entries in self._journal[shard].items():
                    if not entries:
                        continue
                    batches = [
                        (key, sources, targets)
                        for sources, targets in entries
                    ]
                    conn.send(("serve", batches, True))
                    reply = conn.recv()
                    if reply[0] == "error":
                        if self.health is not None:
                            self.health.mark(shard, DOWN)
                        raise ReliabilityError(
                            f"serve farm shard {shard} failed during"
                            f" journal replay: {reply[1]}"
                        )
                    with self._metrics_lock:
                        self.replayed_requests += sum(
                            len(sources) for sources, _ in entries
                        )
            except (BrokenPipeError, EOFError, OSError):
                self._respawn(shard, proactive=proactive)
                return  # budget-bounded recursion finished the job
            with self._metrics_lock:
                self.recoveries[
                    "proactive" if proactive else "reactive"
                ] += 1
                self.shard_recoveries[shard] += 1
            if self.health is not None:
                self.health.mark(shard, HEALTHY)

    # -- dispatch ------------------------------------------------------
    def _send_serve(self, shard: int, batches) -> None:
        try:
            self._conns[shard].send(("serve", batches, False))
        except (BrokenPipeError, OSError):
            self._respawn(shard)
            self._conns[shard].send(("serve", batches, False))

    def _await_ack(self, shard: int, batches):
        """Collect one non-replay serve ack, surviving a worker death."""
        while True:
            try:
                reply = self._conns[shard].recv()
            except (EOFError, OSError):
                self._respawn(shard)
                self._send_serve(shard, batches)
                continue
            if reply[0] == "error":
                raise ReliabilityError(
                    f"serve farm shard {shard} failed: {reply[1]}"
                )
            _, details, elapsed, cpu, replay, snapshots = reply
            if replay:  # stale ack from a pre-respawn replay: drop
                continue
            return details, elapsed, cpu, snapshots

    def _record_journal(self, shard: int, batches, snapshots) -> None:
        """Append acknowledged batches; prune what snapshots now cover.

        Snapshots are cut at batch boundaries in the worker and the
        parent journals the same batches in the same order, so a
        snapshot covering ``covered`` requests always lands on a prefix
        of whole journal entries (checked, never assumed).
        """
        journal = self._journal[shard]
        for key, sources, targets in batches:
            journal.setdefault(key, []).append((sources, targets))
        for key, snapshot, covered in snapshots:
            base = self._journal_base[shard].get(key, 0)
            need = covered - base
            if need <= 0:
                continue
            entries = journal.get(key)
            if not entries:
                continue
            dropped = 0
            kept = 0
            while kept < len(entries) and dropped < need:
                nxt = len(entries[kept][0])
                if dropped + nxt > need:
                    break  # not a batch boundary: keep the old snapshot
                dropped += nxt
                kept += 1
            if dropped == need:
                del entries[:kept]
                self._journal_base[shard][key] = covered
                self._snapshots[shard][key] = snapshot

    def _collect_shard(self, shard: int, batches):
        """Await one shard's ack and fold it into the aggregate state.

        Returns the per-batch detail list.  Journal updates are per-shard
        (the caller holds the shard lock); the aggregate metrics update
        takes the shared lock.
        """
        details, elapsed, cpu, snapshots = self._await_ack(shard, batches)
        m = sum(d[0] for d in details)
        routing = sum(d[1] for d in details)
        rotations = sum(d[2] for d in details)
        links = sum(d[3] for d in details)
        with self._metrics_lock:
            self.metrics.record_batch(
                shard, m, routing, rotations, links, elapsed, cpu
            )
        self._record_journal(shard, batches, snapshots)
        return details

    def _dispatch(
        self, grouped: Mapping[int, list[tuple[Any, list[int], list[int]]]]
    ) -> tuple[int, int, int, int]:
        """Send one window to all owning shards, then collect the acks.

        All sends complete before the first receive, so shards serve the
        window concurrently; acknowledged batches enter the journal.
        Involved shard locks are taken in sorted order (the supervisor
        takes one at a time, so lock order cannot deadlock).
        """
        shards = sorted(grouped)
        for shard in shards:
            self._locks[shard].acquire()
        try:
            for shard in shards:
                self._send_serve(shard, grouped[shard])
            totals = [0, 0, 0, 0]
            for shard in shards:
                for m, routing, rotations, links in self._collect_shard(
                    shard, grouped[shard]
                ):
                    totals[0] += m
                    totals[1] += routing
                    totals[2] += rotations
                    totals[3] += links
        finally:
            for shard in reversed(shards):
                self._locks[shard].release()
        return tuple(totals)  # type: ignore[return-value]

    def serve_grouped(
        self,
        shard: int,
        batches: Sequence[tuple[Any, list[int], list[int]]],
    ) -> list[BatchServeResult]:
        """Dispatch pre-grouped key batches to one shard, detail per batch.

        ``batches`` is a list of ``(key, sources, targets)`` entries, every
        key owned by ``shard`` (validated) — the ingress gateway's dispatch
        primitive: one worker round trip serves the whole coalesced list,
        and the returned :class:`BatchServeResult` per entry carries that
        entry's exact totals, so each client request gets its own answer.

        Thread safety: concurrent calls for *distinct* shards are safe
        (each shard's pipe and journal are guarded by that shard's lock;
        the aggregate metrics and respawn budget are lock-guarded).
        Concurrent calls for the same shard serialize on the shard lock.
        """
        self._check_open()
        batches = [
            (key, [int(u) for u in sources], [int(v) for v in targets])
            for key, sources, targets in batches
        ]
        for key, sources, targets in batches:
            if len(sources) != len(targets):
                raise ExperimentError(
                    "serve_grouped sources and targets must be equal length"
                )
            if self.router.shard_of(key) != shard:
                raise ExperimentError(
                    f"key {key!r} routes to shard"
                    f" {self.router.shard_of(key)}, not {shard}"
                )
        if not batches:
            return []
        with self._locks[shard]:
            self._send_serve(shard, batches)
            details = self._collect_shard(shard, batches)
        return [
            BatchServeResult(m, routing, rotations, links, None, None)
            for m, routing, rotations, links in details
        ]

    # -- serving -------------------------------------------------------
    def serve(self, key: Any, u: int, v: int) -> None:
        """Serve one request for ``key`` on its owning shard (round trip)."""
        self.serve_batch(key, [u], [v])

    def serve_batch(self, key: Any, sources, targets) -> BatchServeResult:
        """Serve one key's request batch on its owning shard."""
        self._check_open()
        sources = [int(u) for u in sources]
        targets = [int(v) for v in targets]
        if len(sources) != len(targets):
            raise ExperimentError(
                "serve_batch sources and targets must be equal length"
            )
        shard = self.router.shard_of(key)
        m, routing, rotations, links = self._dispatch(
            {shard: [(key, sources, targets)]}
        )
        return BatchServeResult(m, routing, rotations, links, None, None)

    def serve_stream(
        self,
        requests: Iterable[tuple[Any, int, int]],
        *,
        window: Optional[int] = None,
    ) -> BatchServeResult:
        """Serve a keyed request stream, ``window`` requests per round.

        ``requests`` is any iterable of ``(key, u, v)``.  Each window is
        hash-split across the owning shards and dispatched to all of them
        before any acknowledgement is awaited — the farm's concurrent hot
        path.  Returns the accumulated totals for this stream;
        :attr:`metrics` advances by the same amounts.
        """
        self._check_open()
        if window is None:
            window = self.window
        elif window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        iterator = iter(requests)
        totals = [0, 0, 0, 0]
        while True:
            block = list(islice(iterator, window))
            if not block:
                break
            m, routing, rotations, links = self._dispatch(
                self.router.split(block)
            )
            totals[0] += m
            totals[1] += routing
            totals[2] += rotations
            totals[3] += links
        return BatchServeResult(
            totals[0], totals[1], totals[2], totals[3], None, None
        )

    # -- introspection -------------------------------------------------
    def _query(self, shard: int, command: str):
        self._check_open()
        with self._locks[shard]:
            conn = self._conns[shard]
            conn.send((command,))
            reply = conn.recv()
        if reply[0] == "error":
            raise ReliabilityError(
                f"serve farm shard {shard} failed {command}: {reply[1]}"
            )
        return reply[1]

    def status(self) -> list[dict[str, Any]]:
        """Per-shard liveness report: pid, kernel availability, engines."""
        return [self._query(shard, "status") for shard in range(self.shards)]

    def session_metrics(self) -> dict[Any, dict[str, Any]]:
        """Authoritative per-key metrics, collected from the workers.

        Deterministic cost dicts (:meth:`SessionMetrics.to_dict`) — the
        cell-for-cell comparison surface of the reliability suite.
        """
        merged: dict[Any, dict[str, Any]] = {}
        for shard in range(self.shards):
            merged.update(self._query(shard, "metrics"))
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServeFarm(shards={self.shards},"
            f" requests={self.metrics.requests},"
            f" respawns={self.respawns}, closed={self._closed})"
        )
